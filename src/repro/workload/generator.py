"""Workload generator: turns a :class:`WorkloadScenario` into a timed request stream.

This plays the role of the paper's Locust-based generator: it draws API requests from
the scenario's (possibly drifting) API mix at a rate given by the diurnal profile and
annotates each request with per-request payload scaling derived from the content
sampler (post sizes, media sizes, mention activity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..apps.model import Application
from .profiles import ApiMix, DiurnalProfile, WorkloadScenario
from .social_graph import ContentSampler, SocialGraph

__all__ = ["ApiRequest", "WorkloadGenerator", "default_scenario", "burst_scenario"]


@dataclass(frozen=True)
class ApiRequest:
    """One client request to a user-facing API."""

    time_ms: float
    api: str
    user: int = 0
    payload_scale: float = 1.0
    extra_work_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError("request time must be non-negative")
        if self.payload_scale <= 0:
            raise ValueError("payload_scale must be positive")


class WorkloadGenerator:
    """Generates a stream of :class:`ApiRequest` from a scenario."""

    def __init__(
        self,
        application: Application,
        scenario: WorkloadScenario,
        social_graph: Optional[SocialGraph] = None,
        content: Optional[ContentSampler] = None,
        seed: int = 17,
        tick_ms: float = 1_000.0,
    ) -> None:
        unknown = set(scenario.mix.apis) - set(application.api_names)
        if unknown:
            raise ValueError(f"scenario references unknown APIs: {sorted(unknown)}")
        if tick_ms <= 0:
            raise ValueError("tick_ms must be positive")
        self.application = application
        self.scenario = scenario
        self.social_graph = social_graph or SocialGraph(seed=seed)
        self.content = content or ContentSampler(seed=seed + 1)
        self.tick_ms = tick_ms
        self._rng = np.random.default_rng(seed)

    # -- generation --------------------------------------------------------------------
    def generate(self, duration_ms: float, start_ms: float = 0.0) -> List[ApiRequest]:
        """Generate all requests in ``[start_ms, start_ms + duration_ms)``."""
        if duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        return list(self.iter_requests(duration_ms, start_ms))

    def iter_requests(self, duration_ms: float, start_ms: float = 0.0) -> Iterator[ApiRequest]:
        """Yield requests tick by tick; Poisson arrivals within each tick."""
        ticks = int(np.ceil(duration_ms / self.tick_ms))
        for tick in range(ticks):
            tick_start = start_ms + tick * self.tick_ms
            tick_len = min(self.tick_ms, start_ms + duration_ms - tick_start)
            rate_rps = self.scenario.profile.rate_at(tick_start)
            expected = rate_rps * tick_len / 1_000.0
            count = int(self._rng.poisson(expected))
            if count == 0:
                continue
            offsets = np.sort(self._rng.uniform(0.0, tick_len, size=count))
            mix = self.scenario.mix_at(tick_start)
            probs = mix.probabilities()
            apis = list(probs)
            p = np.array([probs[a] for a in apis])
            chosen = self._rng.choice(len(apis), size=count, p=p)
            for offset, api_idx in zip(offsets, chosen):
                time_ms = tick_start + float(offset)
                api = apis[int(api_idx)]
                yield self._make_request(api, time_ms)

    def _make_request(self, api: str, time_ms: float) -> ApiRequest:
        user = self.social_graph.sample_user(self._rng)
        scale = self.scenario.payload_scale_at(api, time_ms)
        extra_work = self.scenario.extra_work_at(api, time_ms)
        # Content-driven per-request variation on top of the scenario-level scale.
        if api in ("/composePost",):
            scale *= 0.85 + 0.3 * self._rng.random()
        elif api in ("/uploadMedia", "/getMedia"):
            scale *= float(np.clip(self._rng.lognormal(0.0, 0.25), 0.5, 2.5))
        elif api in ("/homeTimeline", "/userTimeline"):
            # Popular users have longer timelines -> larger responses.
            followers = self.social_graph.follower_count(user)
            scale *= 0.8 + min(followers / (4.0 * self.social_graph.mean_followers()), 1.5)
        return ApiRequest(
            time_ms=time_ms,
            api=api,
            user=user,
            payload_scale=float(scale),
            extra_work_ms=float(extra_work),
        )

    # -- summaries -----------------------------------------------------------------------
    def expected_request_count(self, duration_ms: float) -> float:
        return self.scenario.profile.mean_rate() * duration_ms / 1_000.0


# ---------------------------------------------------------------------------
# Convenience scenarios
# ---------------------------------------------------------------------------

def default_scenario(
    application: Application,
    base_rps: float = 20.0,
    peak_rps: float = 45.0,
    duration_ms: float = 300_000.0,
    name: str = "steady-day",
) -> WorkloadScenario:
    """A one-day (compressed) scenario using the application's default API mix."""
    mix = ApiMix(application.api_weights())
    profile = DiurnalProfile(
        base_rps=base_rps,
        peak_rps=peak_rps,
        duration_ms=duration_ms,
    )
    return WorkloadScenario(mix=mix, profile=profile, name=name)


def burst_scenario(
    application: Application,
    burst_factor: float = 5.0,
    base_rps: float = 20.0,
    peak_rps: float = 45.0,
    duration_ms: float = 300_000.0,
) -> WorkloadScenario:
    """The paper's evaluation load: the same mix with ``burst_factor`` times more users."""
    scenario = default_scenario(
        application,
        base_rps=base_rps,
        peak_rps=peak_rps,
        duration_ms=duration_ms,
        name=f"burst-{burst_factor:g}x",
    )
    scenario.profile = scenario.profile.scaled(burst_factor)
    return scenario
