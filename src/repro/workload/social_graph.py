"""Synthetic social graph and content sampling.

The paper seeds its social network with a real-world Facebook graph [66] and media from
the INRIA Person dataset [35].  Neither dataset is available offline, so we substitute
synthetic equivalents that preserve the properties the system actually depends on:

* a heavy-tailed follower distribution (power-law graph via networkx), which drives the
  fan-out size of /composePost and the home-timeline response size;
* post lengths and media sizes drawn from log-normal distributions matching the scale
  of real posts (hundreds of bytes) and person photos (tens to hundreds of KB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

__all__ = ["SocialGraph", "ContentSampler"]


class SocialGraph:
    """A synthetic follower graph with heavy-tailed degree distribution."""

    def __init__(self, users: int = 500, attachment: int = 4, seed: int = 7) -> None:
        if users < 3:
            raise ValueError("a social graph needs at least 3 users")
        if attachment < 1:
            raise ValueError("attachment must be at least 1")
        self.users = users
        self._graph = nx.barabasi_albert_graph(users, min(attachment, users - 1), seed=seed)
        self._rng = np.random.default_rng(seed)
        degrees = np.array([d for _n, d in self._graph.degree()], dtype=float)
        self._popularity = degrees / degrees.sum()

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def follower_count(self, user: int) -> int:
        return int(self._graph.degree(user))

    def followers(self, user: int) -> List[int]:
        return list(self._graph.neighbors(user))

    def mean_followers(self) -> float:
        degrees = [d for _n, d in self._graph.degree()]
        return float(np.mean(degrees)) if degrees else 0.0

    def sample_user(self, rng: Optional[np.random.Generator] = None) -> int:
        """Sample a user, biased towards popular (high-degree) users."""
        rng = rng or self._rng
        return int(rng.choice(self.users, p=self._popularity))

    def sample_uniform_user(self, rng: Optional[np.random.Generator] = None) -> int:
        rng = rng or self._rng
        return int(rng.integers(0, self.users))

    def degree_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for _node, degree in self._graph.degree():
            hist[degree] = hist.get(degree, 0) + 1
        return hist


@dataclass
class ContentSampler:
    """Samples post text lengths and media sizes.

    ``post_bytes_mu``/``sigma`` parameterize a log-normal for post text (median around
    180 bytes), and ``media_bytes_mu``/``sigma`` one for photos (median around 60 KB,
    mimicking the INRIA person photos of various resolutions).
    """

    post_bytes_mu: float = 5.2
    post_bytes_sigma: float = 0.6
    media_bytes_mu: float = 11.0
    media_bytes_sigma: float = 0.5
    seed: int = 11

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def post_size_bytes(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = rng or self._rng
        return float(rng.lognormal(self.post_bytes_mu, self.post_bytes_sigma))

    def media_size_bytes(self, rng: Optional[np.random.Generator] = None) -> float:
        rng = rng or self._rng
        return float(rng.lognormal(self.media_bytes_mu, self.media_bytes_sigma))

    def mention_count(self, rng: Optional[np.random.Generator] = None, active: bool = False) -> int:
        """How many friends the author tags in a post (higher when behaviour is 'active')."""
        rng = rng or self._rng
        lam = 2.5 if active else 0.4
        return int(rng.poisson(lam))
