"""Workload shape descriptions: API mixes, diurnal profiles and behaviour changes.

The paper's Locust-based generator compresses one day of traffic into five minutes with
two peak hours (e.g. lunchtime and late evening), draws API requests from a realistic
mix, and varies day-to-day behaviour.  This module captures those shapes declaratively;
:mod:`repro.workload.generator` turns them into a concrete request stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["ApiMix", "DiurnalProfile", "BehaviorChange", "WorkloadScenario"]


@dataclass(frozen=True)
class ApiMix:
    """Relative request probabilities of the user-facing APIs."""

    weights: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("an API mix needs at least one API")
        if any(w < 0 for w in self.weights.values()):
            raise ValueError("API weights must be non-negative")
        if sum(self.weights.values()) <= 0:
            raise ValueError("API weights must not all be zero")

    @property
    def apis(self) -> List[str]:
        return list(self.weights)

    def probabilities(self) -> Dict[str, float]:
        total = sum(self.weights.values())
        return {api: w / total for api, w in self.weights.items()}

    def reweighted(self, overrides: Mapping[str, float]) -> "ApiMix":
        """A copy with some APIs' weights replaced (used to model composition drift)."""
        unknown = set(overrides) - set(self.weights)
        if unknown:
            raise KeyError(f"unknown APIs in override: {sorted(unknown)}")
        new_weights = dict(self.weights)
        new_weights.update(overrides)
        return ApiMix(new_weights)


@dataclass(frozen=True)
class DiurnalProfile:
    """Request-rate shape over one (compressed) day with two peaks.

    The rate at a point in the day is ``base_rps`` plus two Gaussian bumps centred at
    ``peak_hours`` (expressed in hours of a 24-hour day).  ``duration_ms`` is how long
    the compressed day lasts in simulation time (the paper compresses a day into five
    minutes).
    """

    base_rps: float = 20.0
    peak_rps: float = 60.0
    peak_hours: Sequence[float] = (12.5, 20.5)
    peak_width_hours: float = 1.6
    duration_ms: float = 300_000.0

    def __post_init__(self) -> None:
        if self.base_rps < 0 or self.peak_rps < 0:
            raise ValueError("rates must be non-negative")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.peak_width_hours <= 0:
            raise ValueError("peak_width_hours must be positive")

    def hour_of(self, time_ms: float) -> float:
        """Map simulation time into the hour-of-day of the compressed day."""
        frac = (time_ms % self.duration_ms) / self.duration_ms
        return frac * 24.0

    def rate_at(self, time_ms: float) -> float:
        """Requests per second at the given simulation time."""
        hour = self.hour_of(time_ms)
        rate = self.base_rps
        for peak in self.peak_hours:
            # Wrap-around distance on the 24-hour circle.
            dist = min(abs(hour - peak), 24.0 - abs(hour - peak))
            rate += self.peak_rps * math.exp(-0.5 * (dist / self.peak_width_hours) ** 2)
        return rate

    def scaled(self, factor: float) -> "DiurnalProfile":
        """A profile with all rates multiplied (e.g. the paper's 5x burst)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return DiurnalProfile(
            base_rps=self.base_rps * factor,
            peak_rps=self.peak_rps * factor,
            peak_hours=self.peak_hours,
            peak_width_hours=self.peak_width_hours,
            duration_ms=self.duration_ms,
        )

    def mean_rate(self, samples: int = 288) -> float:
        """Average request rate over the day (sampled)."""
        step = self.duration_ms / samples
        return sum(self.rate_at(i * step) for i in range(samples)) / samples


@dataclass(frozen=True)
class BehaviorChange:
    """A change in user behaviour starting at ``start_ms`` (internal/external drift).

    ``payload_scale`` multiplies the payload sizes of the affected APIs' invocations
    (internal drift: e.g. users start tagging friends, responses grow).  ``mix_override``
    changes the API composition (external drift).
    """

    start_ms: float
    apis: Sequence[str] = ()
    payload_scale: float = 1.0
    extra_work_ms: float = 0.0
    mix_override: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if self.start_ms < 0:
            raise ValueError("start_ms must be non-negative")
        if self.payload_scale <= 0:
            raise ValueError("payload_scale must be positive")
        if self.extra_work_ms < 0:
            raise ValueError("extra_work_ms must be non-negative")

    def applies_to(self, api: str, time_ms: float) -> bool:
        if time_ms < self.start_ms:
            return False
        return not self.apis or api in self.apis


@dataclass
class WorkloadScenario:
    """A complete workload description: mix + diurnal shape + optional behaviour changes."""

    mix: ApiMix
    profile: DiurnalProfile = field(default_factory=DiurnalProfile)
    changes: List[BehaviorChange] = field(default_factory=list)
    name: str = "default"

    def mix_at(self, time_ms: float) -> ApiMix:
        """Effective API mix at a point in time, after applying composition drifts."""
        mix = self.mix
        for change in self.changes:
            if change.mix_override is not None and time_ms >= change.start_ms:
                mix = mix.reweighted(change.mix_override)
        return mix

    def payload_scale_at(self, api: str, time_ms: float) -> float:
        """Combined payload scale of all active behaviour changes for one API."""
        scale = 1.0
        for change in self.changes:
            if change.payload_scale != 1.0 and change.applies_to(api, time_ms):
                scale *= change.payload_scale
        return scale

    def extra_work_at(self, api: str, time_ms: float) -> float:
        return sum(
            change.extra_work_ms
            for change in self.changes
            if change.extra_work_ms > 0 and change.applies_to(api, time_ms)
        )
