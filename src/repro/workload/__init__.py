"""Workload generation: API mixes, diurnal profiles, social graph and request streams."""

from .generator import ApiRequest, WorkloadGenerator, burst_scenario, default_scenario
from .profiles import ApiMix, BehaviorChange, DiurnalProfile, WorkloadScenario
from .social_graph import ContentSampler, SocialGraph

__all__ = [
    "ApiMix",
    "DiurnalProfile",
    "BehaviorChange",
    "WorkloadScenario",
    "SocialGraph",
    "ContentSampler",
    "ApiRequest",
    "WorkloadGenerator",
    "default_scenario",
    "burst_scenario",
]
