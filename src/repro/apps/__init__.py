"""Application topology models (the paper's evaluation applications)."""

from .model import (
    ApiEndpoint,
    Application,
    CallNode,
    CallSpec,
    Component,
    ExecutionMode,
    PayloadSpec,
    ResourceProfile,
)
from .hotel_reservation import build_hotel_reservation
from .social_network import SOCIAL_NETWORK_CRITICAL_APIS, build_social_network

__all__ = [
    "ApiEndpoint",
    "Application",
    "CallNode",
    "CallSpec",
    "Component",
    "ExecutionMode",
    "PayloadSpec",
    "ResourceProfile",
    "build_social_network",
    "build_hotel_reservation",
    "SOCIAL_NETWORK_CRITICAL_APIS",
]
