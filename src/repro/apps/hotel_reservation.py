"""The DeathStarBench-style hotel reservation application (Figure 10 of the paper).

18 components (12 stateless + 6 stateful MongoDB stores) offering 5 user-facing APIs:
``/home``, ``/hotels``, ``/recommendations``, ``/user`` and ``/reservation``.
"""

from __future__ import annotations

from typing import List

from .model import (
    ApiEndpoint,
    Application,
    CallNode,
    Component,
    ExecutionMode,
    PayloadSpec,
    ResourceProfile,
)

__all__ = ["build_hotel_reservation"]

_PAR = ExecutionMode.PARALLEL
_SEQ = ExecutionMode.SEQUENTIAL
_BG = ExecutionMode.BACKGROUND


def _components() -> List[Component]:
    """The 18 components of the hotel reservation system."""
    service = ResourceProfile(
        cpu_millicores_idle=28.0,
        cpu_millicores_per_rps=10.0,
        memory_mb_idle=80.0,
        memory_mb_per_rps=0.5,
    )
    frontend = ResourceProfile(
        cpu_millicores_idle=36.0,
        cpu_millicores_per_rps=7.0,
        memory_mb_idle=110.0,
        memory_mb_per_rps=0.3,
    )
    cache = ResourceProfile(
        cpu_millicores_idle=24.0,
        cpu_millicores_per_rps=3.0,
        memory_mb_idle=220.0,
        memory_mb_per_rps=1.0,
    )

    def mongo(storage_gb: float) -> ResourceProfile:
        return ResourceProfile(
            cpu_millicores_idle=45.0,
            cpu_millicores_per_rps=9.0,
            memory_mb_idle=448.0,
            memory_mb_per_rps=0.7,
            storage_gb=storage_gb,
        )

    stateless = [
        Component("FrontendService", resources=frontend),
        Component("SearchService", resources=service),
        Component("GeoService", resources=service),
        Component("RateService", resources=service),
        Component("RecommendService", resources=service),
        Component("ProfileService", resources=service),
        Component("ReservationService", resources=service),
        Component("UserService", resources=service),
        Component("ProfileMemcached", resources=cache),
        Component("RateMemcached", resources=cache),
        Component("ReservationMemcached", resources=cache),
        Component("GeoRedis", resources=cache),
    ]
    stateful = [
        Component("GeoMongoDB", stateful=True, resources=mongo(4.0)),
        Component("RateMongoDB", stateful=True, resources=mongo(6.0)),
        Component("RecommendMongoDB", stateful=True, resources=mongo(3.0)),
        Component("ProfileMongoDB", stateful=True, resources=mongo(14.0)),
        Component("ReserveMongoDB", stateful=True, resources=mongo(20.0)),
        Component("UserMongoDB", stateful=True, resources=mongo(9.0)),
    ]
    return stateless + stateful


def _geo_subtree() -> CallNode:
    geo_redis = CallNode(
        "GeoRedis", "NearbyCached", work_ms=0.5, payload=PayloadSpec(150.0, 640.0)
    )
    geo_mongo = CallNode(
        "GeoMongoDB", "NearbyQuery", work_ms=1.7, payload=PayloadSpec(200.0, 820.0)
    )
    geo = CallNode(
        "GeoService", "Nearby", work_ms=1.1, payload=PayloadSpec(240.0, 900.0)
    )
    geo.call(geo_redis, _SEQ, gap_ms=0.2)
    geo.call(geo_mongo, _SEQ, gap_ms=0.2)
    return geo


def _rate_subtree() -> CallNode:
    rate_cache = CallNode(
        "RateMemcached", "GetRates", work_ms=0.5, payload=PayloadSpec(260.0, 980.0)
    )
    rate_mongo = CallNode(
        "RateMongoDB", "FindRates", work_ms=1.9, payload=PayloadSpec(300.0, 1150.0)
    )
    rate = CallNode(
        "RateService", "GetRates", work_ms=1.0, payload=PayloadSpec(340.0, 1300.0)
    )
    rate.call(rate_cache, _SEQ, gap_ms=0.2)
    rate.call(rate_mongo, _SEQ, gap_ms=0.2)
    return rate


def _profile_subtree(response_bytes: float = 2600.0) -> CallNode:
    profile_cache = CallNode(
        "ProfileMemcached", "GetProfiles", work_ms=0.6,
        payload=PayloadSpec(280.0, response_bytes * 0.8),
    )
    profile_mongo = CallNode(
        "ProfileMongoDB", "FindProfiles", work_ms=2.1,
        payload=PayloadSpec(320.0, response_bytes),
    )
    profile = CallNode(
        "ProfileService", "GetProfiles", work_ms=1.2,
        payload=PayloadSpec(360.0, response_bytes * 1.1),
    )
    profile.call(profile_cache, _SEQ, gap_ms=0.2)
    profile.call(profile_mongo, _SEQ, gap_ms=0.2)
    return profile


def _reservation_check_subtree() -> CallNode:
    reserve_cache = CallNode(
        "ReservationMemcached", "CheckAvailabilityCached", work_ms=0.5,
        payload=PayloadSpec(240.0, 420.0),
    )
    reserve_mongo = CallNode(
        "ReserveMongoDB", "CheckAvailability", work_ms=1.8,
        payload=PayloadSpec(280.0, 520.0),
    )
    reserve = CallNode(
        "ReservationService", "CheckAvailability", work_ms=1.0,
        payload=PayloadSpec(320.0, 560.0),
    )
    reserve.call(reserve_cache, _SEQ, gap_ms=0.2)
    reserve.call(reserve_mongo, _SEQ, gap_ms=0.2)
    return reserve


def _hotels_api() -> ApiEndpoint:
    search = CallNode(
        "SearchService", "SearchNearby", work_ms=1.4, payload=PayloadSpec(420.0, 1900.0)
    )
    search.call(_geo_subtree(), _PAR, gap_ms=0.2)
    search.call(_rate_subtree(), _PAR, gap_ms=0.2)
    root = CallNode(
        "FrontendService", "/hotels", work_ms=1.2, payload=PayloadSpec(520.0, 4200.0)
    )
    root.call(search, _SEQ, gap_ms=0.2)
    root.call(_reservation_check_subtree(), _SEQ, gap_ms=0.2)
    root.call(_profile_subtree(), _SEQ, gap_ms=0.2)
    return ApiEndpoint("/hotels", root, weight=0.35, description="Search hotels nearby")


def _home_api() -> ApiEndpoint:
    recommend_mongo = CallNode(
        "RecommendMongoDB", "FindTopRated", work_ms=1.6,
        payload=PayloadSpec(220.0, 640.0),
    )
    recommend = CallNode(
        "RecommendService", "TopRatedNearby", work_ms=1.0,
        payload=PayloadSpec(260.0, 720.0),
    )
    recommend.call(recommend_mongo, _SEQ, gap_ms=0.2)
    root = CallNode(
        "FrontendService", "/home", work_ms=1.0, payload=PayloadSpec(360.0, 3100.0)
    )
    root.call(_geo_subtree(), _PAR, gap_ms=0.2)
    root.call(recommend, _PAR, gap_ms=0.2)
    root.call(_profile_subtree(2200.0), _SEQ, gap_ms=0.2)
    return ApiEndpoint("/home", root, weight=0.25, description="Landing page content")


def _recommendations_api() -> ApiEndpoint:
    recommend_mongo = CallNode(
        "RecommendMongoDB", "FindRecommendations", work_ms=1.8,
        payload=PayloadSpec(240.0, 760.0),
    )
    recommend = CallNode(
        "RecommendService", "GetRecommendations", work_ms=1.1,
        payload=PayloadSpec(280.0, 840.0),
    )
    recommend.call(recommend_mongo, _SEQ, gap_ms=0.2)
    root = CallNode(
        "FrontendService", "/recommendations", work_ms=1.0,
        payload=PayloadSpec(340.0, 2900.0),
    )
    root.call(recommend, _SEQ, gap_ms=0.2)
    root.call(_profile_subtree(2400.0), _SEQ, gap_ms=0.2)
    return ApiEndpoint(
        "/recommendations", root, weight=0.15, description="Personalized suggestions"
    )


def _user_api() -> ApiEndpoint:
    user_mongo = CallNode(
        "UserMongoDB", "CheckCredentials", work_ms=1.5,
        payload=PayloadSpec(230.0, 180.0),
    )
    user = CallNode(
        "UserService", "CheckUser", work_ms=0.9, payload=PayloadSpec(280.0, 140.0)
    )
    user.call(user_mongo, _SEQ, gap_ms=0.2)
    root = CallNode(
        "FrontendService", "/user", work_ms=0.9, payload=PayloadSpec(380.0, 220.0)
    )
    root.call(user, _SEQ, gap_ms=0.2)
    return ApiEndpoint("/user", root, weight=0.10, description="Authenticate a guest")


def _reservation_api() -> ApiEndpoint:
    user_mongo = CallNode(
        "UserMongoDB", "CheckCredentials", work_ms=1.5,
        payload=PayloadSpec(230.0, 180.0),
    )
    user = CallNode(
        "UserService", "CheckUser", work_ms=0.9, payload=PayloadSpec(280.0, 140.0)
    )
    user.call(user_mongo, _SEQ, gap_ms=0.2)

    reserve_mongo = CallNode(
        "ReserveMongoDB", "MakeReservation", work_ms=2.3,
        payload=PayloadSpec(460.0, 120.0),
    )
    reserve_cache = CallNode(
        "ReservationMemcached", "InvalidateAvailability", work_ms=0.4,
        payload=PayloadSpec(260.0, 24.0),
    )
    reserve = CallNode(
        "ReservationService", "MakeReservation", work_ms=1.3,
        payload=PayloadSpec(520.0, 180.0),
    )
    reserve.call(reserve_mongo, _SEQ, gap_ms=0.3)
    reserve.call(reserve_cache, _BG, gap_ms=0.1)

    root = CallNode(
        "FrontendService", "/reservation", work_ms=1.1,
        payload=PayloadSpec(640.0, 260.0),
    )
    root.call(user, _SEQ, gap_ms=0.2)
    root.call(reserve, _SEQ, gap_ms=0.2)
    return ApiEndpoint(
        "/reservation", root, weight=0.15, description="Book a hotel room"
    )


def build_hotel_reservation() -> Application:
    """Build the 18-component, 5-API hotel reservation application."""
    apis = [
        _home_api(),
        _hotels_api(),
        _recommendations_api(),
        _user_api(),
        _reservation_api(),
    ]
    return Application("hotel-reservation", _components(), apis)
