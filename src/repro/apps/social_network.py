"""The DeathStarBench-style social network application (Figure 1 of the paper).

29 components (23 stateless + 6 stateful MongoDB stores) offering 9 user-facing APIs:
``/register``, ``/login``, ``/follow``, ``/unfollow``, ``/composePost``,
``/homeTimeline``, ``/userTimeline``, ``/uploadMedia`` and ``/getMedia``.

The call trees are modelled after the DeathStarBench social network: the compose-post
flow fans out in parallel to text/media/unique-id/user services, stores the post
sequentially, and notifies followers' home timelines in the background — exactly the
parallel / sequential / background patterns the paper's delay injection exploits
(Figure 6).  Payload sizes along the /register path follow the magnitudes reported in
Figure 19.
"""

from __future__ import annotations

from typing import Dict, List

from .model import (
    ApiEndpoint,
    Application,
    CallNode,
    Component,
    ExecutionMode,
    PayloadSpec,
    ResourceProfile,
)

__all__ = ["build_social_network", "SOCIAL_NETWORK_CRITICAL_APIS"]

#: API sets used by the personalization experiment (Figure 16).
SOCIAL_NETWORK_CRITICAL_APIS: Dict[str, List[str]] = {
    "scenario_follow": ["/follow", "/unfollow"],
    "scenario_timeline": ["/homeTimeline", "/composePost"],
}

_PAR = ExecutionMode.PARALLEL
_SEQ = ExecutionMode.SEQUENTIAL
_BG = ExecutionMode.BACKGROUND


def _components() -> List[Component]:
    """The 29 components of the social network."""
    service = ResourceProfile(
        cpu_millicores_idle=30.0,
        cpu_millicores_per_rps=12.0,
        memory_mb_idle=96.0,
        memory_mb_per_rps=0.6,
    )
    nginx = ResourceProfile(
        cpu_millicores_idle=40.0,
        cpu_millicores_per_rps=6.0,
        memory_mb_idle=128.0,
        memory_mb_per_rps=0.3,
    )
    cache = ResourceProfile(
        cpu_millicores_idle=25.0,
        cpu_millicores_per_rps=3.0,
        memory_mb_idle=256.0,
        memory_mb_per_rps=1.2,
    )
    broker = ResourceProfile(
        cpu_millicores_idle=35.0,
        cpu_millicores_per_rps=4.0,
        memory_mb_idle=192.0,
        memory_mb_per_rps=0.4,
    )

    def mongo(storage_gb: float) -> ResourceProfile:
        return ResourceProfile(
            cpu_millicores_idle=50.0,
            cpu_millicores_per_rps=10.0,
            memory_mb_idle=512.0,
            memory_mb_per_rps=0.8,
            storage_gb=storage_gb,
        )

    stateless = [
        Component("FrontendNGINX", resources=nginx, description="API gateway for text APIs"),
        Component("MediaNGINX", resources=nginx, description="API gateway for media APIs"),
        Component("ComposePostService", resources=service),
        Component("UserService", resources=service),
        Component("SocialGraphService", resources=service),
        Component("PostStorageService", resources=service),
        Component("UserTimelineService", resources=service),
        Component("HomeTimelineService", resources=service),
        Component("WriteHomeTimelineService", resources=service),
        Component("TextService", resources=service),
        Component("URLShortenService", resources=service),
        Component("UserMentionService", resources=service),
        Component("MediaService", resources=service),
        Component("MediaFilterService", resources=service),
        Component("UniqueIDService", resources=service),
        Component("UserMemcached", resources=cache),
        Component("PostStorageMemcached", resources=cache),
        Component("MediaMemcached", resources=cache),
        Component("URLShortenMemcached", resources=cache),
        Component("SocialGraphRedis", resources=cache),
        Component("UserTimelineRedis", resources=cache),
        Component("HomeTimelineRedis", resources=cache),
        Component("RabbitMQBroker", resources=broker),
    ]
    stateful = [
        Component("UserMongoDB", stateful=True, resources=mongo(18.0)),
        Component("SocialGraphMongoDB", stateful=True, resources=mongo(22.0)),
        Component("PostStorageMongoDB", stateful=True, resources=mongo(64.0)),
        Component("UserTimelineMongoDB", stateful=True, resources=mongo(28.0)),
        Component("URLShortenMongoDB", stateful=True, resources=mongo(6.0)),
        Component("MediaMongoDB", stateful=True, resources=mongo(120.0)),
    ]
    return stateless + stateful


# ---------------------------------------------------------------------------
# API call trees
# ---------------------------------------------------------------------------

def _register_api() -> ApiEndpoint:
    """/register — payload sizes follow Figure 19 of the paper."""
    social_graph_mongo = CallNode(
        "SocialGraphMongoDB", "InsertUserNode", work_ms=1.4,
        payload=PayloadSpec(205.0, 46.0),
    )
    social_graph_redis = CallNode(
        "SocialGraphRedis", "InitFollowerSet", work_ms=0.4,
        payload=PayloadSpec(160.0, 24.0),
    )
    social_graph = CallNode(
        "SocialGraphService", "InsertUser", work_ms=0.9,
        payload=PayloadSpec(131.0, 27.0),
    )
    social_graph.call(social_graph_mongo, _SEQ, gap_ms=0.2)
    social_graph.call(social_graph_redis, _BG, gap_ms=0.1)

    user_mongo = CallNode(
        "UserMongoDB", "InsertUser", work_ms=1.8,
        payload=PayloadSpec(561.0, 144.0),
    )
    user_memcached = CallNode(
        "UserMemcached", "CacheUser", work_ms=0.3,
        payload=PayloadSpec(420.0, 20.0),
    )
    user_service = CallNode(
        "UserService", "RegisterUserWithId", work_ms=1.5,
        payload=PayloadSpec(234.0, 35.0),
    )
    user_service.call(user_mongo, _SEQ, gap_ms=0.3)
    user_service.call(social_graph, _SEQ, gap_ms=0.2)
    user_service.call(user_memcached, _BG, gap_ms=0.1)

    unique_id = CallNode(
        "UniqueIDService", "ComposeUniqueId", work_ms=0.4,
        payload=PayloadSpec(90.0, 40.0),
    )
    root = CallNode(
        "FrontendNGINX", "/register", work_ms=1.2,
        payload=PayloadSpec(2150.0, 125.0),
    )
    root.call(unique_id, _SEQ, gap_ms=0.2)
    root.call(user_service, _SEQ, gap_ms=0.3)
    return ApiEndpoint("/register", root, weight=0.02, description="Create a new account")


def _login_api() -> ApiEndpoint:
    user_memcached = CallNode(
        "UserMemcached", "GetCredentials", work_ms=0.3,
        payload=PayloadSpec(140.0, 380.0),
    )
    user_mongo = CallNode(
        "UserMongoDB", "FindUser", work_ms=1.6,
        payload=PayloadSpec(210.0, 520.0),
    )
    user_service = CallNode(
        "UserService", "Login", work_ms=1.1,
        payload=PayloadSpec(260.0, 310.0),
    )
    user_service.call(user_memcached, _SEQ, gap_ms=0.2)
    user_service.call(user_mongo, _SEQ, gap_ms=0.2)
    root = CallNode(
        "FrontendNGINX", "/login", work_ms=1.0,
        payload=PayloadSpec(640.0, 420.0),
    )
    root.call(user_service, _SEQ, gap_ms=0.2)
    return ApiEndpoint("/login", root, weight=0.10, description="Authenticate a user")


def _follow_api(name: str, weight: float) -> ApiEndpoint:
    """Shared structure of /follow and /unfollow."""
    op = "Follow" if name == "/follow" else "Unfollow"
    graph_mongo = CallNode(
        "SocialGraphMongoDB", f"{op}Edge", work_ms=1.5,
        payload=PayloadSpec(240.0, 60.0),
    )
    graph_redis = CallNode(
        "SocialGraphRedis", f"{op}CachedEdge", work_ms=0.4,
        payload=PayloadSpec(180.0, 28.0),
    )
    user_memcached = CallNode(
        "UserMemcached", "ResolveUserIds", work_ms=0.3,
        payload=PayloadSpec(130.0, 150.0),
    )
    graph_service = CallNode(
        "SocialGraphService", op, work_ms=1.0,
        payload=PayloadSpec(220.0, 40.0),
    )
    graph_service.call(user_memcached, _SEQ, gap_ms=0.2)
    graph_service.call(graph_mongo, _PAR, gap_ms=0.2)
    graph_service.call(graph_redis, _PAR, gap_ms=0.2)
    root = CallNode(
        "FrontendNGINX", name, work_ms=0.9,
        payload=PayloadSpec(420.0, 96.0),
    )
    root.call(graph_service, _SEQ, gap_ms=0.2)
    return ApiEndpoint(name, root, weight=weight, description=f"{op} another user")


def _compose_post_api() -> ApiEndpoint:
    """/composePost — the richest workflow (Figure 6)."""
    url_mongo = CallNode(
        "URLShortenMongoDB", "InsertUrls", work_ms=1.2,
        payload=PayloadSpec(380.0, 70.0),
    )
    url_memcached = CallNode(
        "URLShortenMemcached", "CacheUrls", work_ms=0.3,
        payload=PayloadSpec(300.0, 24.0),
    )
    url_shorten = CallNode(
        "URLShortenService", "ShortenUrls", work_ms=1.6,
        payload=PayloadSpec(540.0, 180.0),
    )
    url_shorten.call(url_mongo, _SEQ, gap_ms=0.2)
    url_shorten.call(url_memcached, _BG, gap_ms=0.1)

    user_mention_cache = CallNode(
        "UserMemcached", "LookupMentions", work_ms=0.4,
        payload=PayloadSpec(220.0, 260.0),
    )
    user_mention_mongo = CallNode(
        "UserMongoDB", "LookupMentionedUsers", work_ms=1.3,
        payload=PayloadSpec(260.0, 340.0),
    )
    user_mention = CallNode(
        "UserMentionService", "ComposeUserMentions", work_ms=0.9,
        payload=PayloadSpec(300.0, 240.0),
    )
    user_mention.call(user_mention_cache, _SEQ, gap_ms=0.2)
    user_mention.call(user_mention_mongo, _SEQ, gap_ms=0.2)

    text_service = CallNode(
        "TextService", "ComposeText", work_ms=1.4,
        payload=PayloadSpec(1350.0, 760.0),
    )
    text_service.call(url_shorten, _PAR, gap_ms=0.2)
    text_service.call(user_mention, _PAR, gap_ms=0.2)

    media_mongo = CallNode(
        "MediaMongoDB", "InsertMediaRef", work_ms=1.1,
        payload=PayloadSpec(420.0, 64.0),
    )
    media_service = CallNode(
        "MediaService", "ComposeMedia", work_ms=1.0,
        payload=PayloadSpec(520.0, 180.0),
    )
    media_service.call(media_mongo, _SEQ, gap_ms=0.2)

    unique_id = CallNode(
        "UniqueIDService", "ComposePostId", work_ms=0.4,
        payload=PayloadSpec(90.0, 40.0),
    )
    user_service = CallNode(
        "UserService", "ComposeCreatorWithUserId", work_ms=0.8,
        payload=PayloadSpec(260.0, 140.0),
    )

    post_storage_mongo = CallNode(
        "PostStorageMongoDB", "InsertPost", work_ms=2.2,
        payload=PayloadSpec(1650.0, 80.0),
    )
    post_storage_cache = CallNode(
        "PostStorageMemcached", "CachePost", work_ms=0.4,
        payload=PayloadSpec(1500.0, 24.0),
    )
    post_storage = CallNode(
        "PostStorageService", "StorePost", work_ms=1.2,
        payload=PayloadSpec(1700.0, 96.0),
    )
    post_storage.call(post_storage_mongo, _SEQ, gap_ms=0.2)
    post_storage.call(post_storage_cache, _BG, gap_ms=0.1)

    user_timeline_redis = CallNode(
        "UserTimelineRedis", "AppendPostId", work_ms=0.4,
        payload=PayloadSpec(180.0, 24.0),
    )
    user_timeline_mongo = CallNode(
        "UserTimelineMongoDB", "AppendPostId", work_ms=1.4,
        payload=PayloadSpec(220.0, 48.0),
    )
    user_timeline = CallNode(
        "UserTimelineService", "WriteUserTimeline", work_ms=0.9,
        payload=PayloadSpec(260.0, 56.0),
    )
    user_timeline.call(user_timeline_redis, _PAR, gap_ms=0.2)
    user_timeline.call(user_timeline_mongo, _PAR, gap_ms=0.2)

    # The write-home-timeline fan-out is the heaviest part of composing a post: it pulls
    # the author's follower list and pushes the new post id into every follower's home
    # timeline.  It is CPU- and traffic-intensive but runs entirely in the background,
    # which is exactly the kind of component an API-centric advisor can offload for free
    # while affinity-based policies shy away from the cross-datacenter traffic.
    graph_redis = CallNode(
        "SocialGraphRedis", "GetFollowers", work_ms=1.2,
        payload=PayloadSpec(160.0, 3_800.0),
    )
    graph_service = CallNode(
        "SocialGraphService", "GetFollowers", work_ms=1.0,
        payload=PayloadSpec(200.0, 4_200.0),
    )
    graph_service.call(graph_redis, _SEQ, gap_ms=0.2)

    home_timeline_redis = CallNode(
        "HomeTimelineRedis", "FanOutPostId", work_ms=2.5,
        payload=PayloadSpec(5_600.0, 48.0),
    )
    rabbitmq = CallNode(
        "RabbitMQBroker", "EnqueueFanOut", work_ms=0.6,
        payload=PayloadSpec(1_400.0, 24.0),
    )
    write_home_timeline = CallNode(
        "WriteHomeTimelineService", "FanOutHomeTimelines", work_ms=6.0,
        payload=PayloadSpec(1_200.0, 32.0),
    )
    write_home_timeline.call(graph_service, _SEQ, gap_ms=0.2)
    write_home_timeline.call(home_timeline_redis, _SEQ, gap_ms=0.2)

    compose = CallNode(
        "ComposePostService", "ComposePost", work_ms=1.6,
        payload=PayloadSpec(2100.0, 220.0),
    )
    compose.call(unique_id, _PAR, gap_ms=0.2)
    compose.call(text_service, _PAR, gap_ms=0.2)
    compose.call(media_service, _PAR, gap_ms=0.2)
    compose.call(user_service, _PAR, gap_ms=0.2)
    compose.call(post_storage, _SEQ, gap_ms=0.3)
    compose.call(user_timeline, _SEQ, gap_ms=0.2)
    compose.call(rabbitmq, _BG, gap_ms=0.1)
    compose.call(write_home_timeline, _BG, gap_ms=0.2)

    root = CallNode(
        "FrontendNGINX", "/composePost", work_ms=1.4,
        payload=PayloadSpec(2600.0, 180.0),
    )
    root.call(root_child := compose, _SEQ, gap_ms=0.3)
    del root_child
    return ApiEndpoint(
        "/composePost", root, weight=0.10, description="Publish a new post"
    )


def _home_timeline_api() -> ApiEndpoint:
    home_redis = CallNode(
        "HomeTimelineRedis", "ReadPostIds", work_ms=0.7,
        payload=PayloadSpec(140.0, 820.0),
    )
    post_cache = CallNode(
        "PostStorageMemcached", "MGetPosts", work_ms=0.8,
        payload=PayloadSpec(360.0, 5200.0),
    )
    post_mongo = CallNode(
        "PostStorageMongoDB", "FindPosts", work_ms=2.4,
        payload=PayloadSpec(420.0, 6400.0),
    )
    post_storage = CallNode(
        "PostStorageService", "ReadPosts", work_ms=1.3,
        payload=PayloadSpec(480.0, 7200.0),
    )
    post_storage.call(post_cache, _SEQ, gap_ms=0.2)
    post_storage.call(post_mongo, _SEQ, gap_ms=0.2)
    home_timeline = CallNode(
        "HomeTimelineService", "ReadHomeTimeline", work_ms=1.2,
        payload=PayloadSpec(220.0, 7600.0),
    )
    home_timeline.call(home_redis, _SEQ, gap_ms=0.2)
    home_timeline.call(post_storage, _SEQ, gap_ms=0.3)
    root = CallNode(
        "FrontendNGINX", "/homeTimeline", work_ms=1.1,
        payload=PayloadSpec(300.0, 8200.0),
    )
    root.call(home_timeline, _SEQ, gap_ms=0.2)
    return ApiEndpoint(
        "/homeTimeline", root, weight=0.30, description="Read the follower feed"
    )


def _user_timeline_api() -> ApiEndpoint:
    timeline_redis = CallNode(
        "UserTimelineRedis", "ReadPostIds", work_ms=0.5,
        payload=PayloadSpec(140.0, 620.0),
    )
    timeline_mongo = CallNode(
        "UserTimelineMongoDB", "FindPostIds", work_ms=1.8,
        payload=PayloadSpec(200.0, 760.0),
    )
    post_cache = CallNode(
        "PostStorageMemcached", "MGetPosts", work_ms=0.8,
        payload=PayloadSpec(340.0, 4300.0),
    )
    post_mongo = CallNode(
        "PostStorageMongoDB", "FindPosts", work_ms=2.2,
        payload=PayloadSpec(380.0, 5100.0),
    )
    post_storage = CallNode(
        "PostStorageService", "ReadPosts", work_ms=1.2,
        payload=PayloadSpec(420.0, 5600.0),
    )
    post_storage.call(post_cache, _SEQ, gap_ms=0.2)
    post_storage.call(post_mongo, _SEQ, gap_ms=0.2)
    user_timeline = CallNode(
        "UserTimelineService", "ReadUserTimeline", work_ms=1.1,
        payload=PayloadSpec(220.0, 6000.0),
    )
    user_timeline.call(timeline_redis, _PAR, gap_ms=0.2)
    user_timeline.call(timeline_mongo, _PAR, gap_ms=0.2)
    user_timeline.call(post_storage, _SEQ, gap_ms=0.3)
    root = CallNode(
        "FrontendNGINX", "/userTimeline", work_ms=1.0,
        payload=PayloadSpec(280.0, 6600.0),
    )
    root.call(user_timeline, _SEQ, gap_ms=0.2)
    return ApiEndpoint(
        "/userTimeline", root, weight=0.15, description="Read one author's posts"
    )


def _upload_media_api() -> ApiEndpoint:
    media_mongo = CallNode(
        "MediaMongoDB", "InsertMedia", work_ms=3.0,
        payload=PayloadSpec(96_000.0, 120.0),
    )
    media_cache = CallNode(
        "MediaMemcached", "CacheMedia", work_ms=0.8,
        payload=PayloadSpec(92_000.0, 24.0),
    )
    media_service = CallNode(
        "MediaService", "UploadMedia", work_ms=2.0,
        payload=PayloadSpec(98_000.0, 180.0),
    )
    media_service.call(media_mongo, _SEQ, gap_ms=0.3)
    media_service.call(media_cache, _BG, gap_ms=0.1)
    media_filter = CallNode(
        "MediaFilterService", "FilterMedia", work_ms=3.5,
        payload=PayloadSpec(99_000.0, 160.0),
    )
    media_filter.call(media_service, _SEQ, gap_ms=0.3)
    root = CallNode(
        "MediaNGINX", "/uploadMedia", work_ms=2.2,
        payload=PayloadSpec(102_000.0, 240.0),
    )
    root.call(media_filter, _SEQ, gap_ms=0.3)
    return ApiEndpoint(
        "/uploadMedia", root, weight=0.05, description="Upload a photo attachment"
    )


def _get_media_api() -> ApiEndpoint:
    media_cache = CallNode(
        "MediaMemcached", "GetMedia", work_ms=0.7,
        payload=PayloadSpec(140.0, 68_000.0),
    )
    media_mongo = CallNode(
        "MediaMongoDB", "FindMedia", work_ms=2.6,
        payload=PayloadSpec(180.0, 74_000.0),
    )
    media_service = CallNode(
        "MediaService", "GetMedia", work_ms=1.4,
        payload=PayloadSpec(220.0, 76_000.0),
    )
    media_service.call(media_cache, _SEQ, gap_ms=0.2)
    media_service.call(media_mongo, _SEQ, gap_ms=0.2)
    root = CallNode(
        "MediaNGINX", "/getMedia", work_ms=1.2,
        payload=PayloadSpec(260.0, 78_000.0),
    )
    root.call(media_service, _SEQ, gap_ms=0.2)
    return ApiEndpoint("/getMedia", root, weight=0.20, description="Download a photo")


def build_social_network() -> Application:
    """Build the 29-component, 9-API social network application."""
    apis = [
        _register_api(),
        _login_api(),
        _follow_api("/follow", weight=0.05),
        _follow_api("/unfollow", weight=0.03),
        _compose_post_api(),
        _home_timeline_api(),
        _user_timeline_api(),
        _upload_media_api(),
        _get_media_api(),
    ]
    return Application("social-network", _components(), apis)
