"""Application topology model for API-driven interactive microservices.

This module defines the data model used across the whole reproduction:

* :class:`Component` — a deployable unit (container) with a resource profile and a
  stateful/stateless flag.
* :class:`CallSpec` / :class:`CallNode` — the call tree of a user-facing API.  Each node
  is an operation executed by a component; children are invoked with one of the three
  execution patterns identified by the paper (parallel, sequential, background) and carry
  request/response payload-size distributions, which are what Atlas later recovers as the
  *network footprint* of the API.
* :class:`ApiEndpoint` — a user-facing API: entry component, call tree and default
  request mix weight.
* :class:`Application` — a named collection of components and API endpoints with helper
  accessors (component sets per API, stateful components per API, edge enumeration).

The model is a *description* of the application; executing a request against it (and a
placement) is the job of :mod:`repro.simulator`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "ExecutionMode",
    "ResourceProfile",
    "Component",
    "PayloadSpec",
    "CallSpec",
    "CallNode",
    "ApiEndpoint",
    "Application",
]


class ExecutionMode(str, enum.Enum):
    """How a child operation is invoked relative to its siblings/parent.

    ``PARALLEL``   — runs concurrently with the preceding run of parallel siblings.
    ``SEQUENTIAL`` — starts only after all previously issued foreground children finish.
    ``BACKGROUND`` — fired after the foreground work; does not delay the parent response.
    """

    PARALLEL = "parallel"
    SEQUENTIAL = "sequential"
    BACKGROUND = "background"


@dataclass(frozen=True)
class ResourceProfile:
    """Static resource profile of a component.

    The values are interpreted by the simulator and the resource estimator:

    * ``cpu_millicores_idle`` — baseline CPU when idle.
    * ``cpu_millicores_per_rps`` — additional CPU per request/second served.
    * ``memory_mb_idle`` / ``memory_mb_per_rps`` — analogous for memory.
    * ``storage_gb`` — persistent data size (only meaningful for stateful components);
      it drives both migration disruption and cloud storage cost.
    """

    cpu_millicores_idle: float = 20.0
    cpu_millicores_per_rps: float = 8.0
    memory_mb_idle: float = 64.0
    memory_mb_per_rps: float = 0.5
    storage_gb: float = 0.0

    def expected_cpu(self, rps: float) -> float:
        """Expected CPU (millicores) when serving ``rps`` requests per second."""
        return self.cpu_millicores_idle + self.cpu_millicores_per_rps * max(rps, 0.0)

    def expected_memory(self, rps: float) -> float:
        """Expected memory (MB) when serving ``rps`` requests per second."""
        return self.memory_mb_idle + self.memory_mb_per_rps * max(rps, 0.0)


@dataclass(frozen=True)
class Component:
    """A deployable microservice component (one container image)."""

    name: str
    stateful: bool = False
    resources: ResourceProfile = field(default_factory=ResourceProfile)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Component name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - trivial
        kind = "stateful" if self.stateful else "stateless"
        return f"{self.name} ({kind})"


@dataclass(frozen=True)
class PayloadSpec:
    """Request/response payload size distribution for one invocation edge.

    Sizes are modelled as truncated normal distributions with the given mean and
    coefficient of variation (``cv``).  The mean values are the quantities the
    network-footprint learner (Eq. 1 of the paper) attempts to recover.
    """

    request_bytes: float
    response_bytes: float
    cv: float = 0.05

    def __post_init__(self) -> None:
        if self.request_bytes < 0 or self.response_bytes < 0:
            raise ValueError("payload sizes must be non-negative")
        if self.cv < 0:
            raise ValueError("coefficient of variation must be non-negative")

    def sample(self, rng) -> Tuple[float, float]:
        """Sample concrete (request, response) byte sizes using ``rng`` (numpy Generator)."""
        req = max(0.0, rng.normal(self.request_bytes, self.cv * self.request_bytes))
        resp = max(0.0, rng.normal(self.response_bytes, self.cv * self.response_bytes))
        return req, resp


@dataclass
class CallSpec:
    """A child invocation inside a :class:`CallNode`.

    ``gap_ms`` is the local compute time the parent spends before issuing this
    invocation, measured from the point at which the child becomes eligible to start
    (end of the previous sequential step, or the common fork point for parallel
    siblings).
    """

    node: "CallNode"
    mode: ExecutionMode = ExecutionMode.SEQUENTIAL
    gap_ms: float = 0.2

    def __post_init__(self) -> None:
        if isinstance(self.mode, str):
            self.mode = ExecutionMode(self.mode)
        if self.gap_ms < 0:
            raise ValueError("gap_ms must be non-negative")


@dataclass
class CallNode:
    """An operation executed by a component when serving (part of) an API request.

    ``work_ms`` is the node's own processing time (exclusive of children and network),
    split by the simulator into a pre-children and post-children share via
    ``post_work_fraction``.  ``payload`` describes the bytes exchanged between this
    node's *parent* and this node.
    """

    component: str
    operation: str
    work_ms: float = 1.0
    payload: PayloadSpec = field(default_factory=lambda: PayloadSpec(256.0, 256.0))
    calls: List[CallSpec] = field(default_factory=list)
    post_work_fraction: float = 0.2
    work_cv: float = 0.1

    def __post_init__(self) -> None:
        if self.work_ms < 0:
            raise ValueError("work_ms must be non-negative")
        if not 0.0 <= self.post_work_fraction <= 1.0:
            raise ValueError("post_work_fraction must be within [0, 1]")

    # -- construction helpers -------------------------------------------------
    def call(
        self,
        node: "CallNode",
        mode: ExecutionMode = ExecutionMode.SEQUENTIAL,
        gap_ms: float = 0.2,
    ) -> "CallNode":
        """Append a child invocation and return ``self`` for chaining."""
        self.calls.append(CallSpec(node=node, mode=mode, gap_ms=gap_ms))
        return self

    # -- traversal helpers ----------------------------------------------------
    def walk(self) -> Iterator["CallNode"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for spec in self.calls:
            yield from spec.node.walk()

    def components(self) -> Set[str]:
        """All component names appearing in this subtree."""
        return {node.component for node in self.walk()}

    def edges(self) -> Iterator[Tuple[str, str, "CallNode", ExecutionMode]]:
        """Yield (caller, callee, callee_node, mode) for every invocation edge."""
        for spec in self.calls:
            yield self.component, spec.node.component, spec.node, spec.mode
            yield from spec.node.edges()

    def invocation_count(self, caller: str, callee: str) -> int:
        """Number of invocation edges from ``caller`` to ``callee`` in this subtree."""
        return sum(
            1 for src, dst, _node, _mode in self.edges() if src == caller and dst == callee
        )

    def depth(self) -> int:
        """Height of the call tree (a leaf has depth 1)."""
        if not self.calls:
            return 1
        return 1 + max(spec.node.depth() for spec in self.calls)

    def size(self) -> int:
        """Total number of operations (spans) produced by one request."""
        return sum(1 for _ in self.walk())

    def nominal_latency_ms(self) -> float:
        """Latency of the call tree ignoring all network transfer times.

        This mirrors the simulator's execution semantics with zero network delay and is
        useful for sanity checks and tests: the simulated latency on a single datacenter
        should be close to (slightly above) this value.
        """
        pre = self.work_ms * (1.0 - self.post_work_fraction)
        post = self.work_ms * self.post_work_fraction
        cursor = pre
        parallel_ends: List[float] = []
        for spec in self.calls:
            child_latency = spec.node.nominal_latency_ms()
            if spec.mode is ExecutionMode.PARALLEL:
                parallel_ends.append(cursor + spec.gap_ms + child_latency)
            elif spec.mode is ExecutionMode.SEQUENTIAL:
                if parallel_ends:
                    cursor = max(cursor, max(parallel_ends))
                    parallel_ends = []
                cursor = cursor + spec.gap_ms + child_latency
            else:  # BACKGROUND: does not extend the parent
                continue
        if parallel_ends:
            cursor = max(cursor, max(parallel_ends))
        return cursor + post


@dataclass
class ApiEndpoint:
    """A user-facing API endpoint (e.g. ``/composePost``)."""

    name: str
    root: CallNode
    weight: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name.startswith("/"):
            raise ValueError(f"API name must start with '/': {self.name!r}")
        if self.weight < 0:
            raise ValueError("API weight must be non-negative")

    @property
    def entry_component(self) -> str:
        """Component receiving the client request."""
        return self.root.component

    def components(self) -> Set[str]:
        return self.root.components()

    def edges(self) -> Iterator[Tuple[str, str, CallNode, ExecutionMode]]:
        return self.root.edges()

    def span_count(self) -> int:
        return self.root.size()


class Application:
    """A microservice application: components + user-facing API endpoints."""

    def __init__(
        self,
        name: str,
        components: Sequence[Component],
        apis: Sequence[ApiEndpoint],
    ) -> None:
        if not name:
            raise ValueError("Application name must be non-empty")
        self.name = name
        self._components: Dict[str, Component] = {}
        for comp in components:
            if comp.name in self._components:
                raise ValueError(f"duplicate component {comp.name!r}")
            self._components[comp.name] = comp
        self._apis: Dict[str, ApiEndpoint] = {}
        for api in apis:
            if api.name in self._apis:
                raise ValueError(f"duplicate API {api.name!r}")
            self._apis[api.name] = api
        self._validate()

    # -- validation -----------------------------------------------------------
    def _validate(self) -> None:
        known = set(self._components)
        for api in self._apis.values():
            missing = api.components() - known
            if missing:
                raise ValueError(
                    f"API {api.name} references unknown components: {sorted(missing)}"
                )

    # -- accessors --------------------------------------------------------------
    @property
    def components(self) -> List[Component]:
        """All components, in insertion order."""
        return list(self._components.values())

    @property
    def component_names(self) -> List[str]:
        return list(self._components)

    @property
    def apis(self) -> List[ApiEndpoint]:
        return list(self._apis.values())

    @property
    def api_names(self) -> List[str]:
        return list(self._apis)

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise KeyError(f"unknown component {name!r} in application {self.name!r}") from None

    def api(self, name: str) -> ApiEndpoint:
        try:
            return self._apis[name]
        except KeyError:
            raise KeyError(f"unknown API {name!r} in application {self.name!r}") from None

    def has_component(self, name: str) -> bool:
        return name in self._components

    def has_api(self, name: str) -> bool:
        return name in self._apis

    # -- derived structure ------------------------------------------------------
    def stateful_components(self) -> List[str]:
        """Names of all stateful components."""
        return [c.name for c in self._components.values() if c.stateful]

    def stateless_components(self) -> List[str]:
        return [c.name for c in self._components.values() if not c.stateful]

    def components_of_api(self, api_name: str) -> Set[str]:
        """All components used (directly or transitively) by one API."""
        return self.api(api_name).components()

    def stateful_components_of_api(self, api_name: str) -> Set[str]:
        """Stateful components used by one API (set ``SC(A)`` in Eq. 3)."""
        stateful = set(self.stateful_components())
        return self.components_of_api(api_name) & stateful

    def apis_using_component(self, component: str) -> List[str]:
        """Names of the APIs whose call tree contains ``component``."""
        return [api.name for api in self._apis.values() if component in api.components()]

    def communication_edges(self) -> Set[Tuple[str, str]]:
        """All (caller, callee) pairs appearing in any API's call tree."""
        pairs: Set[Tuple[str, str]] = set()
        for api in self._apis.values():
            for src, dst, _node, _mode in api.edges():
                pairs.add((src, dst))
        return pairs

    def api_weights(self) -> Dict[str, float]:
        """Normalized default request-mix weights of the APIs."""
        total = sum(api.weight for api in self._apis.values())
        if total <= 0 or math.isclose(total, 0.0):
            uniform = 1.0 / max(len(self._apis), 1)
            return {name: uniform for name in self._apis}
        return {name: api.weight / total for name, api in self._apis.items()}

    def total_storage_gb(self, components: Optional[Sequence[str]] = None) -> float:
        """Total persistent data size of ``components`` (default: all stateful ones)."""
        names = components if components is not None else self.stateful_components()
        return sum(self.component(n).resources.storage_gb for n in names)

    # -- misc -------------------------------------------------------------------
    def summary(self) -> Mapping[str, object]:
        """A small dict describing the application (used in logs and examples)."""
        return {
            "name": self.name,
            "components": len(self._components),
            "stateful": len(self.stateful_components()),
            "stateless": len(self.stateless_components()),
            "apis": len(self._apis),
            "search_space": 2 ** len(self._components),
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Application(name={self.name!r}, components={len(self._components)}, "
            f"apis={len(self._apis)})"
        )
