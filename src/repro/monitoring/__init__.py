"""Post-migration monitoring: latency drift detection and footprint-based breach detection."""

from .drift import DriftDetector, DriftReport, DriftScenarioUpdate, kl_divergence
from .security import BreachDetector, TrafficAnomaly

__all__ = [
    "kl_divergence",
    "DriftReport",
    "DriftScenarioUpdate",
    "DriftDetector",
    "TrafficAnomaly",
    "BreachDetector",
]
