"""Post-migration drift detection (Section 4.3, Figure 9/17).

After a plan is executed, Atlas keeps comparing each API's recent latency distribution
against the distribution it predicted (and the one it measured) when the plan was
chosen.  The comparison uses Kullback-Leibler divergence over a shared histogram.
Because KL has no upper bound, significance is judged relative to a per-API baseline:
the divergence between the measured post-migration distribution and Atlas's own
approximation at recommendation time.  When the recent distribution loses many times
more information than that baseline, the footprints are considered outdated and a new
recommendation round is triggered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..telemetry.tracing import Trace
from ..workload.profiles import BehaviorChange, WorkloadScenario

__all__ = [
    "kl_divergence",
    "DriftReport",
    "DriftScenarioUpdate",
    "DriftDetector",
]


def kl_divergence(
    reference: Sequence[float],
    candidate: Sequence[float],
    bins: int = 20,
    value_range: Optional[tuple] = None,
) -> float:
    """KL(reference || candidate) between two latency sample sets.

    Both sample sets are histogrammed over a common support (the union of their ranges
    unless ``value_range`` is given).  Laplace (add-one) smoothing keeps the divergence
    finite and bounded even for distributions with little overlap or with few samples,
    which is what makes the relative comparison against the per-API baseline meaningful.
    """
    ref = np.asarray(list(reference), dtype=float)
    cand = np.asarray(list(candidate), dtype=float)
    if ref.size == 0 or cand.size == 0:
        raise ValueError("both sample sets must be non-empty")
    if bins <= 1:
        raise ValueError("bins must be greater than 1")
    if value_range is None:
        lo = float(min(ref.min(), cand.min()))
        hi = float(max(ref.max(), cand.max()))
        if hi <= lo:
            hi = lo + 1.0
        value_range = (lo, hi)
    ref_hist, edges = np.histogram(ref, bins=bins, range=value_range)
    cand_hist, _ = np.histogram(cand, bins=edges)
    p = ref_hist.astype(float) + 1.0
    q = cand_hist.astype(float) + 1.0
    p /= p.sum()
    q /= q.sum()
    return float(np.sum(p * np.log(p / q)))


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check for one API."""

    api: str
    baseline_divergence: float
    recent_divergence: float
    threshold_factor: float

    @property
    def information_loss_factor(self) -> float:
        """How many times more information the recent distribution loses than the baseline."""
        if self.baseline_divergence <= 0:
            return float("inf") if self.recent_divergence > 0 else 1.0
        return self.recent_divergence / self.baseline_divergence

    @property
    def drift_detected(self) -> bool:
        return self.information_loss_factor > self.threshold_factor


@dataclass(frozen=True)
class DriftScenarioUpdate:
    """Outcome of one drift check that also compiles a refreshed workload scenario.

    ``reports`` is exactly what :meth:`DriftDetector.check_all` returns; ``scenario``
    is a refreshed :class:`~repro.workload.profiles.WorkloadScenario` describing the
    drifted behaviour (``None`` when nothing drifted) — the bridge from monitoring
    into the scenario axis: feed it to
    :meth:`~repro.quality.scenarios.ScenarioSpec.from_workload` /
    ``Atlas.recommend(scenarios=...)`` for a scenario-robust re-recommendation, after
    invalidating the stale evaluator caches via
    :meth:`~repro.quality.evaluator.QualityEvaluator.invalidate_for_scenario`.
    """

    reports: Dict[str, DriftReport]
    scenario: Optional[WorkloadScenario]
    #: Freshly profiled traces per drifted API (when the monitoring plane handed the
    #: check a recent trace window): the payload of the evaluator's incremental
    #: splice path — :meth:`Atlas.recertify <repro.recommend.advisor.Atlas.recertify>`
    #: installs them via :meth:`QualityEvaluator.splice
    #: <repro.quality.evaluator.QualityEvaluator.splice>` so only the drifted APIs
    #: recompile.  Empty when no traces were supplied (the historical behaviour:
    #: recertification falls back to invalidate-and-rebuild).
    refreshed_traces: Dict[str, List[Trace]] = field(default_factory=dict)

    @property
    def drifted_apis(self) -> List[str]:
        return [api for api, report in self.reports.items() if report.drift_detected]

    @property
    def drift_detected(self) -> bool:
        return bool(self.drifted_apis)

    @property
    def needs_recertification(self) -> bool:
        """Escalation trigger: detected drift invalidates the last robustness certificate.

        A :class:`~repro.quality.adversary.RobustnessCertificate` is a statement
        about the workload the evaluator was compiled for; once any API drifts, the
        certified worst case no longer bounds reality and
        :meth:`Atlas.recertify <repro.recommend.advisor.Atlas.recertify>` should
        re-run the adversary against the refreshed scenario.
        """
        return self.drift_detected


class DriftDetector:
    """Per-API drift detection against the last recommendation round."""

    def __init__(
        self,
        approx_latencies: Mapping[str, Sequence[float]],
        real_latencies: Mapping[str, Sequence[float]],
        threshold_factor: float = 5.0,
        bins: int = 20,
    ) -> None:
        """``approx_latencies`` are Atlas's delay-injection estimates made when the plan
        was recommended; ``real_latencies`` are the distributions measured right after
        the migration (the previous round's ground truth)."""
        if threshold_factor <= 1.0:
            raise ValueError("threshold_factor must be greater than 1")
        missing = set(approx_latencies) ^ set(real_latencies)
        if missing:
            raise ValueError(f"approx and real distributions disagree on APIs: {sorted(missing)}")
        self._approx = {api: list(v) for api, v in approx_latencies.items()}
        self._real = {api: list(v) for api, v in real_latencies.items()}
        self.threshold_factor = threshold_factor
        self.bins = bins

    @property
    def apis(self) -> List[str]:
        return sorted(self._real)

    # -- durable checkpointing ---------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """JSON-able snapshot of the detector's baselines (daemon checkpoint payload).

        The detector is a pure function of its two baseline distributions plus the
        two tunables, so ``DriftDetector.from_state(detector.state())`` reproduces
        its drift verdicts exactly — what lets the
        :class:`~repro.serving.daemon.AdvisorDaemon` persist its monitoring state
        across process restarts.
        """
        return {
            "approx": {api: [float(x) for x in v] for api, v in self._approx.items()},
            "real": {api: [float(x) for x in v] for api, v in self._real.items()},
            "threshold_factor": float(self.threshold_factor),
            "bins": int(self.bins),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "DriftDetector":
        """Rebuild a detector from a :meth:`state` snapshot (bitwise-equivalent)."""
        return cls(
            approx_latencies=state["approx"],
            real_latencies=state["real"],
            threshold_factor=float(state["threshold_factor"]),
            bins=int(state["bins"]),
        )

    def baseline_divergence(self, api: str) -> float:
        """D_KL(b_real, b_approx): the approximation error accepted at recommendation time."""
        return kl_divergence(self._real[api], self._approx[api], bins=self.bins)

    def check(self, api: str, recent_latencies: Sequence[float]) -> DriftReport:
        """Compare the most recent latency samples of one API against the baseline."""
        if api not in self._real:
            raise KeyError(f"API {api!r} was not part of the last recommendation round")
        baseline = self.baseline_divergence(api)
        recent = kl_divergence(self._real[api], recent_latencies, bins=self.bins)
        return DriftReport(
            api=api,
            baseline_divergence=baseline,
            recent_divergence=recent,
            threshold_factor=self.threshold_factor,
        )

    def check_all(
        self,
        recent_latencies: Mapping[str, Sequence[float]],
        scenario: Optional[WorkloadScenario] = None,
        traces_by_api: Optional[Mapping[str, Sequence[Trace]]] = None,
    ) -> Union[Dict[str, DriftReport], DriftScenarioUpdate]:
        """Drift reports for every monitored API's recent samples.

        With ``scenario`` (the workload description the last recommendation was made
        under), the check additionally emits a refreshed
        :class:`~repro.workload.profiles.WorkloadScenario` when drift is detected and
        returns a :class:`DriftScenarioUpdate` — the first step of the
        drift-triggered re-recommendation loop.  Without it, the historical
        ``{api: DriftReport}`` mapping is returned unchanged.

        ``traces_by_api`` optionally supplies the recent trace window per API (from
        the telemetry server); the drifted APIs' traces are attached to the update as
        :attr:`DriftScenarioUpdate.refreshed_traces`, enabling the evaluator's
        incremental splice instead of a wholesale invalidation during
        recertification.
        """
        reports = self._reports(recent_latencies)
        if scenario is None:
            return reports
        refreshed: Dict[str, List[Trace]] = {}
        if traces_by_api is not None:
            refreshed = {
                api: list(traces_by_api[api])
                for api, report in sorted(reports.items())
                if report.drift_detected and traces_by_api.get(api)
            }
        return DriftScenarioUpdate(
            reports=reports,
            scenario=self.refreshed_scenario(scenario, recent_latencies, reports),
            refreshed_traces=refreshed,
        )

    def _reports(
        self, recent_latencies: Mapping[str, Sequence[float]]
    ) -> Dict[str, DriftReport]:
        """One drift report per monitored API with recent samples."""
        return {
            api: self.check(api, samples)
            for api, samples in recent_latencies.items()
            if api in self._real and len(samples) > 0
        }

    def refreshed_scenario(
        self,
        base: WorkloadScenario,
        recent_latencies: Mapping[str, Sequence[float]],
        reports: Optional[Mapping[str, DriftReport]] = None,
    ) -> Optional[WorkloadScenario]:
        """A refreshed workload scenario capturing the drifted APIs' new behaviour.

        Each drifted API contributes a :class:`~repro.workload.profiles.BehaviorChange`
        whose payload scale is the observed mean-latency inflation over the
        post-migration ground truth — the internal-drift proxy the footprints support
        before the next learning round replaces them.  Returns ``None`` when no API
        drifted (the current scenario still describes the workload).
        """
        if reports is None:
            reports = self._reports(recent_latencies)
        changes: List[BehaviorChange] = []
        for api, report in sorted(reports.items()):
            if not report.drift_detected:
                continue
            reference = float(np.mean(self._real[api]))
            recent = float(np.mean(recent_latencies[api]))
            scale = recent / reference if reference > 0 else 1.0
            changes.append(
                BehaviorChange(
                    start_ms=0.0,
                    apis=[api],
                    payload_scale=max(scale, 0.1),
                )
            )
        if not changes:
            return None
        return WorkloadScenario(
            mix=base.mix,
            profile=base.profile,
            changes=list(base.changes) + changes,
            name=f"{base.name}-drift",
        )

    def drifted_apis(self, recent_latencies: Mapping[str, Sequence[float]]) -> List[str]:
        return [
            api
            for api, report in self.check_all(recent_latencies).items()
            if report.drift_detected
        ]
