"""Data-breach detection from network footprints (Section 6, Figure 22).

The learned per-API footprints state how many bytes each component pair *should*
exchange to serve the API traffic actually received.  Reconstructing the expected
traffic from the footprints and the observed API request counts, and comparing it with
the traffic the mesh actually measured, exposes exfiltration: a component (e.g. a
MongoDB) suddenly sending far more data than the served requests justify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..learning.footprint import NetworkFootprint

__all__ = ["TrafficAnomaly", "BreachDetector"]

Pair = Tuple[str, str]


@dataclass(frozen=True)
class TrafficAnomaly:
    """One window in which a component pair moved much more data than expected."""

    window: int
    source: str
    destination: str
    expected_bytes: float
    observed_bytes: float

    @property
    def excess_bytes(self) -> float:
        return max(self.observed_bytes - self.expected_bytes, 0.0)

    @property
    def ratio(self) -> float:
        if self.expected_bytes <= 0:
            return float("inf") if self.observed_bytes > 0 else 1.0
        return self.observed_bytes / self.expected_bytes


class BreachDetector:
    """Flags windows whose observed pair traffic cannot be justified by the API traffic."""

    def __init__(
        self,
        footprint: NetworkFootprint,
        ratio_threshold: float = 2.0,
        min_excess_bytes: float = 50_000.0,
    ) -> None:
        if ratio_threshold <= 1.0:
            raise ValueError("ratio_threshold must be greater than 1")
        if min_excess_bytes < 0:
            raise ValueError("min_excess_bytes must be non-negative")
        self.footprint = footprint
        self.ratio_threshold = ratio_threshold
        self.min_excess_bytes = min_excess_bytes

    # -- expectation ---------------------------------------------------------------------
    def expected_traffic(
        self, api_request_counts: Mapping[str, float]
    ) -> Dict[Pair, float]:
        """Expected bytes per directed pair given per-API request counts for one window."""
        return self.footprint.expected_pair_traffic(api_request_counts)

    # -- detection ------------------------------------------------------------------------
    def scan_window(
        self,
        window: int,
        api_request_counts: Mapping[str, float],
        observed_pair_bytes: Mapping[Pair, float],
    ) -> List[TrafficAnomaly]:
        """Anomalies in one window: pairs whose observed bytes exceed expectation."""
        expected = self.expected_traffic(api_request_counts)
        anomalies: List[TrafficAnomaly] = []
        for pair, observed in observed_pair_bytes.items():
            exp = expected.get(pair, 0.0)
            anomaly = TrafficAnomaly(
                window=window,
                source=pair[0],
                destination=pair[1],
                expected_bytes=exp,
                observed_bytes=observed,
            )
            if (
                anomaly.excess_bytes >= self.min_excess_bytes
                and anomaly.ratio >= self.ratio_threshold
            ):
                anomalies.append(anomaly)
        return anomalies

    def scan(
        self,
        api_request_counts_by_window: Mapping[int, Mapping[str, float]],
        observed_bytes_by_window: Mapping[int, Mapping[Pair, float]],
    ) -> List[TrafficAnomaly]:
        """Scan a whole observation period; returns anomalies sorted by window."""
        anomalies: List[TrafficAnomaly] = []
        for window in sorted(observed_bytes_by_window):
            counts = api_request_counts_by_window.get(window, {})
            anomalies.extend(
                self.scan_window(window, counts, observed_bytes_by_window[window])
            )
        return anomalies

    def breach_windows(
        self,
        api_request_counts_by_window: Mapping[int, Mapping[str, float]],
        observed_bytes_by_window: Mapping[int, Mapping[Pair, float]],
    ) -> List[int]:
        """Windows in which at least one anomaly was detected."""
        anomalies = self.scan(api_request_counts_by_window, observed_bytes_by_window)
        return sorted({a.window for a in anomalies})
