"""Hierarchical post-processing of recommended plans (Section 4.2.2, Figure 8).

A Pareto front with three (or K) objectives is hard to pick from.  Atlas organizes the
recommended plans with agglomerative hierarchical clustering over their (normalized)
objective vectors and presents them as a dendrogram: the owner first chooses among a
few high-level clusters (performance-focused, cost-focused, balanced, ...), then refines
within the chosen cluster down to a concrete plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage

from ..quality.evaluator import PlanQuality

__all__ = ["PlanCluster", "PlanHierarchy"]

#: Human-friendly labels of the paper triple; other objectives label by their name.
_OBJECTIVE_LABELS = {"qperf": "performance", "qavai": "availability", "qcost": "cost"}


@dataclass
class PlanCluster:
    """One node of the plan dendrogram."""

    label: str
    members: List[PlanQuality]
    representative: PlanQuality
    children: List["PlanCluster"] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)

    def is_leaf(self) -> bool:
        return not self.children


class PlanHierarchy:
    """Agglomerative clustering of a Pareto front of plans."""

    def __init__(self, plans: Sequence[PlanQuality]) -> None:
        if not plans:
            raise ValueError("cannot build a hierarchy from an empty plan set")
        self.plans = list(plans)
        names = self.plans[0].objective_names()
        self._names = tuple(_OBJECTIVE_LABELS.get(name, name) for name in names)
        self._objectives = np.array([p.objectives() for p in self.plans], dtype=float)
        self._normalized = self._normalize(self._objectives)
        if len(self.plans) > 1:
            self._linkage = linkage(self._normalized, method="average")
        else:
            self._linkage = None

    @staticmethod
    def _normalize(objectives: np.ndarray) -> np.ndarray:
        lo = objectives.min(axis=0)
        hi = objectives.max(axis=0)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        return (objectives - lo) / span

    # -- flat clusterings --------------------------------------------------------------------
    def clusters(self, k: int) -> List[PlanCluster]:
        """Cut the dendrogram into (at most) ``k`` clusters, each with a representative."""
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, len(self.plans))
        if self._linkage is None or k == len(self.plans):
            assignments = np.arange(len(self.plans)) + 1
        else:
            assignments = fcluster(self._linkage, t=k, criterion="maxclust")
        clusters: List[PlanCluster] = []
        for cluster_id in sorted(set(assignments)):
            indices = [i for i, a in enumerate(assignments) if a == cluster_id]
            members = [self.plans[i] for i in indices]
            representative = self._medoid(indices)
            clusters.append(
                PlanCluster(
                    label=self._describe(indices),
                    members=members,
                    representative=representative,
                )
            )
        return clusters

    def drill_down(self, cluster: PlanCluster, k: int = 2) -> List[PlanCluster]:
        """Refine one cluster into up to ``k`` sub-clusters (next level of the dendrogram)."""
        if cluster.size <= 1:
            return []
        sub = PlanHierarchy(cluster.members)
        return sub.clusters(min(k, cluster.size))

    # -- helpers -------------------------------------------------------------------------------
    def _medoid(self, indices: Sequence[int]) -> PlanQuality:
        points = self._normalized[list(indices)]
        center = points.mean(axis=0)
        distances = np.linalg.norm(points - center, axis=1)
        return self.plans[indices[int(np.argmin(distances))]]

    def _describe(self, indices: Sequence[int]) -> str:
        """Label a cluster by the objective on which it excels relative to the whole front."""
        cluster_mean = self._normalized[list(indices)].mean(axis=0)
        best = int(np.argmin(cluster_mean))
        return f"{self._names[best]}-focused"

    # -- presentation ----------------------------------------------------------------------------
    def to_text(self, top_level: int = 3, second_level: int = 2) -> str:
        """A small text rendering of the two top levels of the dendrogram."""
        lines: List[str] = []
        for cluster in self.clusters(top_level):
            rep = cluster.representative
            lines.append(
                f"- {cluster.label} ({cluster.size} plans): "
                f"perf={rep.perf:.2f}, avail={rep.avail:.1f}, cost=${rep.cost:.2f}"
            )
            for child in self.drill_down(cluster, second_level):
                crep = child.representative
                lines.append(
                    f"    * {child.label} ({child.size}): "
                    f"perf={crep.perf:.2f}, avail={crep.avail:.1f}, cost=${crep.cost:.2f}"
                )
        return "\n".join(lines)
