"""The Atlas advisor facade: application learning → recommendation → monitoring.

:class:`Atlas` wires the whole pipeline of Figure 5 together behind a small API:

>>> atlas = Atlas(application, preferences)
>>> knowledge = atlas.learn(telemetry)                   # stage 1: application learning
>>> recommendation = atlas.recommend(expected_scale=5.0) # stage 2: plan recommendation
>>> plan = recommendation.performance_optimized().plan
>>> detector = atlas.drift_detector(recommendation, plan, measured_latencies)
>>> detector.drifted_apis(recent_latencies)              # stage 3: monitoring

``recommend(problem=...)`` is the declarative front door: a
:class:`~repro.quality.problem.PlacementProblem` declares the K objectives, the
constraints and an optional scenario axis, and the search follows it — e.g. the
paper's triple plus an egress objective yields a 4-D Pareto front, knee point first.

Everything Atlas consumes comes from the :class:`~repro.telemetry.server.TelemetryServer`
(traces, component metrics, mesh counters) plus the owner's
:class:`~repro.quality.preferences.MigrationPreferences`.
"""

from __future__ import annotations

import dataclasses
import threading
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from ..apps.model import Application
from ..cluster.network import NetworkModel, default_network_model
from ..cluster.placement import MigrationPlan
from ..cluster.topology import CLOUD, ON_PREM, HybridCluster
from ..learning.api_profile import ApiProfile, ApiProfiler
from ..learning.component_profile import ComponentProfile, ComponentProfiler
from ..learning.estimator import ResourceEstimate, ResourceEstimator
from ..learning.footprint import FootprintLearner, NetworkFootprint
from ..monitoring.drift import DriftDetector, DriftScenarioUpdate
from ..monitoring.security import BreachDetector
from ..optimizer.atlas_ga import AtlasGA, GAConfig, SearchResult
from ..optimizer.baselines import BaselineContext
from ..quality.adversary import (
    AdversaryBounds,
    RobustnessCertificate,
    ScenarioAdversary,
)
from ..quality.artifacts import (
    ArtifactCache,
    _sha,
    fingerprint_footprint,
    fingerprint_network,
    fingerprint_traces,
)
from ..quality.availability import ApiAvailabilityModel
from ..quality.cost import CloudCostModel, PricingCatalog
from ..quality.evaluator import PlanQuality, QualityEvaluator
from ..quality.performance import ApiPerformanceModel, PerformanceEstimate
from ..quality.preferences import MigrationPreferences
from ..quality.problem import PlacementProblem
from ..quality.scenario_factory import ScenarioFactory
from ..quality.scenarios import RobustAggregator, ScenarioSet, ScenarioSpec, WorstCase
from ..telemetry.server import TelemetryServer
from .hierarchy import PlanHierarchy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serving.store import ArtifactStore

__all__ = [
    "AtlasConfig",
    "ApplicationKnowledge",
    "Recommendation",
    "Atlas",
    "AdvisorService",
]

#: Scenario-evaluation budget of ``Atlas.recommend(certify=True)`` — enough for the
#: stress-family seeds plus a couple of coordinate-descent passes on small testbeds.
DEFAULT_CERTIFY_BUDGET = 48

#: One-shot flag of the legacy-kwarg deprecation shim (warn once per process).
_LEGACY_KWARGS_WARNED = False


def _warn_legacy_kwargs(kwargs: str) -> None:
    """Deprecation shim: legacy problem-level kwargs compile into a default problem.

    Warns exactly once per process; see README "Migrating to PlacementProblem".
    """
    global _LEGACY_KWARGS_WARNED
    if _LEGACY_KWARGS_WARNED:
        return
    _LEGACY_KWARGS_WARNED = True
    warnings.warn(
        f"Atlas.recommend({kwargs}=...) is deprecated: pass "
        "problem=PlacementProblem.default(...) instead (the declarative front "
        "door; legacy kwargs are compiled into a default problem for now)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class AtlasConfig:
    """Tunables of the advisor (paper defaults unless noted)."""

    traces_per_api: int = 30
    pricing: PricingCatalog = field(default_factory=PricingCatalog)
    #: Per-location pricing for N-location topologies: elastic location id -> that
    #: region's catalog.  ``None`` bills the single cloud (location 1) with ``pricing``.
    pricing_by_location: Optional[Dict[int, PricingCatalog]] = None
    #: Per-location availability failure-domain weights (destination location id ->
    #: disruption multiplier); ``None`` charges every disruption 1.0 (Eq. 3 verbatim).
    availability_location_weights: Optional[Dict[int, float]] = None
    #: Simulated-time to real-time factor: the workload generator compresses one day
    #: into five minutes (factor 288), so costs are billed on uncompressed time.
    time_compression: float = 288.0
    ga: GAConfig = field(default_factory=GAConfig)
    drift_threshold_factor: float = 5.0
    breach_ratio_threshold: float = 2.0


@dataclass
class ApplicationKnowledge:
    """Everything learned during the application-learning stage."""

    api_profiles: Dict[str, ApiProfile]
    component_profiles: Dict[str, ComponentProfile]
    footprint: NetworkFootprint
    estimator: ResourceEstimator

    @property
    def apis(self) -> List[str]:
        return sorted(self.api_profiles)

    def stateful_components_by_api(self) -> Dict[str, List[str]]:
        return {api: list(p.stateful_components) for api, p in self.api_profiles.items()}


@dataclass
class Recommendation:
    """Output of one recommendation round.

    ``plans`` returns the K-dimensional Pareto front ordered by distance-to-ideal on
    the normalized front — the knee point (the balanced compromise) first.  ``problem``
    is the :class:`~repro.quality.problem.PlacementProblem` the search optimized (the
    default paper triple unless ``Atlas.recommend(problem=...)`` declared otherwise).

    Scenario-robust rounds (a problem with scenarios, or legacy
    ``Atlas.recommend(scenarios=...)``) additionally carry the scenario set and
    aggregator the search ran under; every recommended plan's
    :attr:`~repro.quality.evaluator.PlanQuality.scenarios` holds its per-scenario
    objective breakdown, and :meth:`scenario_regret` / :meth:`scenario_report`
    quantify how far each plan sits from the per-scenario optimum.
    """

    result: SearchResult
    evaluator: QualityEvaluator
    estimate: ResourceEstimate
    preferences: MigrationPreferences
    scenario_set: Optional[ScenarioSet] = None
    aggregator: Optional[RobustAggregator] = None
    problem: Optional[PlacementProblem] = None
    #: Worst-case certificate of the knee-point plan (``Atlas.recommend(certify=...)``
    #: or a later ``Atlas.certify_plan`` / ``Atlas.recertify`` round).
    certificate: Optional[RobustnessCertificate] = None

    @property
    def plans(self) -> List[PlanQuality]:
        """The Pareto front, knee point first (distance-to-ideal ordering)."""
        return self.result.knee_ordered()

    def performance_optimized(self) -> PlanQuality:
        return self.result.performance_optimized()

    def availability_optimized(self) -> PlanQuality:
        return self.result.availability_optimized()

    def cost_optimized(self) -> PlanQuality:
        return self.result.cost_optimized()

    def knee_point(self) -> PlanQuality:
        """The front's balanced compromise (closest to ideal on the normalized front)."""
        return self.result.knee_point()

    def best_for(self, objective: str) -> PlanQuality:
        """The front's best plan along one named objective (e.g. ``"egress_gb"``)."""
        return self.result.best_for(objective)

    def hierarchy(self) -> PlanHierarchy:
        """Dendrogram view of the recommended plans (Figure 8)."""
        return PlanHierarchy(self.plans)

    def latency_preview(self, plan: MigrationPlan) -> Dict[str, PerformanceEstimate]:
        """Per-API latency preview for one plan (what the owner inspects before executing)."""
        return self.evaluator.performance.estimate_all(plan)

    # -- scenario axis ---------------------------------------------------------------------
    def scenario_optima(self) -> Dict[str, Tuple[float, ...]]:
        """Per-scenario best K-vector over every plan the search visited.

        Entry ``k`` is the best (minimum) value of objective ``k`` — the paper's
        (perf, avail, cost) triple under the default problem.  The per-scenario
        optimum is taken over all evaluated plans that are feasible *in that
        scenario* (falling back to all evaluated plans when none is) — the reference
        point the regret of a robust recommendation is measured against.
        """
        if self.scenario_set is None:
            raise ValueError("this recommendation was not scenario-robust")
        evaluated = self.evaluator.evaluated_qualities()
        optima: Dict[str, Tuple[float, ...]] = {}
        for spec in self.scenario_set:
            entries = [
                scenario
                for quality in evaluated
                for scenario in quality.scenarios
                if scenario.scenario == spec.name
            ]
            pool = [entry for entry in entries if entry.feasible] or entries
            if not pool:
                raise ValueError("no plans were evaluated under the scenario axis")
            vectors = [entry.objectives() for entry in pool]
            optima[spec.name] = tuple(
                min(vector[k] for vector in vectors)
                for k in range(len(vectors[0]))
            )
        return optima

    @staticmethod
    def _regret_against(
        quality: PlanQuality, optima: Dict[str, Tuple[float, ...]]
    ) -> Dict[str, Tuple[float, ...]]:
        regret: Dict[str, Tuple[float, ...]] = {}
        for scenario in quality.scenarios:
            best = optima[scenario.scenario]
            regret[scenario.scenario] = tuple(
                value - best_value
                for value, best_value in zip(scenario.objectives(), best)
            )
        return regret

    def scenario_regret(self, quality: PlanQuality) -> Dict[str, Tuple[float, ...]]:
        """Per-scenario K-vector regret of one recommended plan.

        Regret is the plan's scenario objective minus the best value any visited
        plan achieves under that scenario — zero means the plan is per-scenario
        optimal along that objective, a large value is the price of robustness.
        Entries follow the problem's objective order ((perf, avail, cost) by
        default).
        """
        return self._regret_against(quality, self.scenario_optima())

    def scenario_report(self) -> List[Dict[str, object]]:
        """Per-(recommended plan, scenario) breakdown rows: objectives + regret.

        The legacy ``perf``/``avail``/``cost`` (and ``regret_*``) columns stay for
        the paper triple; every objective additionally reports under its own name
        (``<name>`` / ``regret_<name>``), so K > 3 problems get one column pair per
        extra objective.
        """
        rows: List[Dict[str, object]] = []
        optima = self.scenario_optima()
        legacy = {"qperf": "perf", "qavai": "avail", "qcost": "cost"}
        for index, quality in enumerate(self.plans):
            regret = self._regret_against(quality, optima)
            for scenario in quality.scenarios:
                row: Dict[str, object] = {
                    "plan": index,
                    "scenario": scenario.scenario,
                    "perf": scenario.perf,
                    "avail": scenario.avail,
                    "cost": scenario.cost,
                    "feasible": scenario.feasible,
                }
                names = scenario.names or ("qperf", "qavai", "qcost")
                for name, value, regret_value in zip(
                    names, scenario.objectives(), regret[scenario.scenario]
                ):
                    label = legacy.get(name, name)
                    if label not in row:
                        row[label] = value
                    row[f"regret_{label}"] = regret_value
                rows.append(row)
        return rows


class Atlas:
    """Hybrid cloud migration advisor for interactive microservices."""

    def __init__(
        self,
        application: Application,
        preferences: Optional[MigrationPreferences] = None,
        network: Optional[NetworkModel] = None,
        config: Optional[AtlasConfig] = None,
        current_plan: Optional[MigrationPlan] = None,
        cluster: Optional[HybridCluster] = None,
    ) -> None:
        """``cluster`` declares the topology the search runs over; omitting it keeps
        the paper's two-location setup (locations 0 and 1).  With a cluster the search
        space, per-region billing and the baselines all follow its datacenter list."""
        self.application = application
        self.preferences = preferences or MigrationPreferences()
        self.network = network or default_network_model()
        self.config = config or AtlasConfig()
        self.cluster = cluster
        self.current_plan = current_plan or MigrationPlan.all_on_prem(
            application.component_names
        )
        self.telemetry: Optional[TelemetryServer] = None
        self.knowledge: Optional[ApplicationKnowledge] = None

    # -- topology ---------------------------------------------------------------------------
    @property
    def locations(self) -> List[int]:
        """Location ids of the search space (``[0, 1]`` without an explicit cluster)."""
        if self.cluster is not None:
            return self.cluster.location_ids
        return [ON_PREM, CLOUD]

    def _pricing_catalogs(self) -> Dict[int, PricingCatalog]:
        """Billable locations and their catalogs, derived from config + cluster."""
        if self.config.pricing_by_location is not None:
            return dict(self.config.pricing_by_location)
        if self.cluster is not None:
            return {
                dc.location_id: self.config.pricing
                for dc in self.cluster.elastic_datacenters()
            }
        return {CLOUD: self.config.pricing}

    # -- stage 1: application learning ------------------------------------------------------
    def learn(self, telemetry: TelemetryServer) -> ApplicationKnowledge:
        """Learn API profiles, component profiles, footprints and the resource model."""
        self.telemetry = telemetry
        profiler = ApiProfiler(
            telemetry,
            stateful_components=self.application.stateful_components(),
            traces_per_api=self.config.traces_per_api,
        )
        api_profiles = profiler.profile_all()
        component_profiles = ComponentProfiler(telemetry, self.application).profile_all()
        footprint = FootprintLearner(telemetry).learn()
        estimator = ResourceEstimator(self.application, telemetry).fit()
        self.knowledge = ApplicationKnowledge(
            api_profiles=api_profiles,
            component_profiles=component_profiles,
            footprint=footprint,
            estimator=estimator,
        )
        return self.knowledge

    # -- quality model assembly -----------------------------------------------------------------
    def build_evaluator(
        self,
        expected_scale: float = 1.0,
        api_rates: Optional[Mapping[str, Sequence[float]]] = None,
        preferences: Optional[MigrationPreferences] = None,
        performance_engine: str = "compiled",
        problem: Optional[PlacementProblem] = None,
        artifact_cache: Optional[ArtifactCache] = None,
    ) -> QualityEvaluator:
        """Build the quality evaluator for a period of interest.

        ``artifact_cache`` (opt-in) is the warm path: a
        :class:`~repro.quality.artifacts.ArtifactCache` shared across evaluator
        builds — typically owned by an :class:`AdvisorService` — lets repeated
        builds over the same testbed reuse compiled trace sets, fused programs and
        Δ tables by content fingerprint instead of recompiling.  ``None`` (the
        default) compiles from scratch, byte-identical to previous releases.

        ``expected_scale`` scales the observed traffic (the paper's 5x burst); passing
        explicit ``api_rates`` overrides it with any expected traffic forecast.
        ``performance_engine`` selects the delay-injection engine: the vectorized
        ``"compiled"`` replay (default), the recursive ``"reference"`` oracle (both
        produce identical numbers; the benchmarks use the oracle as the per-plan
        comparison point), or the fused cross-API tier — ``"fused"`` (one replay
        pass per generation, bitwise identical to ``"compiled"``), ``"fused32"``
        (float32 scoring within rtol=1e-5 of the float64 oracle) and
        ``"fused-jit"`` (optional numba kernel, bitwise identical to ``"fused"``,
        raises ``RuntimeError`` when numba is not installed).

        ``problem`` declares the objective/constraint stack the evaluator executes
        (default: the paper's three objectives under the Eq. 4 constraints — the
        legacy signature is a shim that compiles into exactly that default
        :class:`~repro.quality.problem.PlacementProblem`).  A problem with its own
        preferences overrides ``preferences``; a problem with a scenario set returns
        the evaluator pre-bound to it.
        """
        knowledge = self._require_knowledge()
        if problem is not None and problem.preferences is not None:
            preferences = problem.preferences
        else:
            preferences = preferences or self.preferences
        estimator = knowledge.estimator
        estimate = (
            estimator.predict(api_rates)
            if api_rates is not None
            else estimator.predict_scaled(expected_scale)
        )
        traces_by_api = {
            api: profile.sample_traces for api, profile in knowledge.api_profiles.items()
        }
        performance = ApiPerformanceModel(
            traces_by_api=traces_by_api,
            footprint=knowledge.footprint,
            network=self.network,
            baseline_plan=self.current_plan,
            traces_per_api=self.config.traces_per_api,
            engine=performance_engine,
            artifact_cache=artifact_cache,
        )
        availability = ApiAvailabilityModel(
            stateful_components_by_api=knowledge.stateful_components_by_api(),
            baseline_plan=self.current_plan,
            location_weights=self.config.availability_location_weights,
        )
        storage_by_component = {
            comp.name: comp.resources.storage_gb for comp in self.application.components
        }
        cost = CloudCostModel(
            catalog=self.config.pricing,
            estimate=estimate,
            footprint=knowledge.footprint,
            storage_by_component=storage_by_component,
            baseline_plan=self.current_plan,
            time_compression=self.config.time_compression,
            catalogs=self._pricing_catalogs(),
        )
        return QualityEvaluator(
            performance=performance,
            availability=availability,
            cost=cost,
            preferences=preferences,
            estimate=estimate,
            component_order=self.application.component_names,
            estimator=estimator,
            problem=problem,
        )

    # -- stage 2: recommendation --------------------------------------------------------------
    def recommend(
        self,
        expected_scale: float = 1.0,
        api_rates: Optional[Mapping[str, Sequence[float]]] = None,
        preferences: Optional[MigrationPreferences] = None,
        ga_config: Optional[GAConfig] = None,
        scenarios: Optional[
            Union[ScenarioSet, ScenarioSpec, Sequence[ScenarioSpec]]
        ] = None,
        aggregator: Optional[RobustAggregator] = None,
        problem: Optional[PlacementProblem] = None,
        certify: Union[None, bool, int] = None,
        parallel: Optional[int] = None,
        anytime: Optional[int] = None,
        artifact_cache: Optional[ArtifactCache] = None,
    ) -> Recommendation:
        """Run the DRL-based genetic search and return the Pareto-optimal plans.

        ``parallel`` runs the search as W forked islands over shared-memory compiled
        state (see ``optimizer/parallel.py``): deterministic per ``(seed, W)``, and
        ``parallel=1`` (or ``None``) is byte-identical to the serial search.

        ``anytime`` enables converged-front early exit (``GAConfig.patience``): the
        search stops once the feasible Pareto front has been exactly stable for that
        many consecutive generations, trading tail generations for wall-clock while
        leaving the trajectory up to the exit byte-identical.

        ``problem`` is the declarative front door: a
        :class:`~repro.quality.problem.PlacementProblem` bundling the K objectives,
        the constraints, an optional scenario set + robust aggregator and
        (optionally) the owner preferences — the search widens to K dimensions with
        zero further arguments.  ``expected_scale`` / ``api_rates`` stay first-class:
        they describe the period of interest the quality models are compiled for,
        not the problem.

        The legacy ``scenarios`` / ``aggregator`` kwargs are a deprecation shim
        (warns once): they compile into ``PlacementProblem.default(...)`` with the
        same scenario axis, byte-identical to the historical behavior.  Robust
        recommendations carry per-scenario objective breakdowns and report regret
        against the per-scenario optima.

        ``certify`` attaches an adversarial worst-case certificate for the knee
        point: after the search, a :class:`~repro.quality.adversary.ScenarioAdversary`
        searches the bounded scenario/fault space for the spec maximizing the knee
        plan's regret and records the result on
        :attr:`Recommendation.certificate`.  ``certify=True`` uses the default
        evaluation budget; an integer sets the budget explicitly.
        """
        problem, preferences = self._resolve_problem(
            preferences=preferences,
            scenarios=scenarios,
            aggregator=aggregator,
            problem=problem,
        )
        evaluator = self.build_evaluator(
            expected_scale=expected_scale,
            api_rates=api_rates,
            preferences=preferences,
            problem=problem,
            artifact_cache=artifact_cache,
        )
        scenario_set = problem.scenarios
        bound_aggregator = evaluator.bound_aggregator
        config = ga_config or self.config.ga
        if parallel is not None and int(parallel) > 1:
            config = dataclasses.replace(config, islands=int(parallel))
        if anytime is not None:
            config = dataclasses.replace(config, patience=int(anytime))
        ga = AtlasGA(
            evaluator,
            self.application.component_names,
            config=config,
            seed_vectors=self._seed_vectors(evaluator, config),
            locations=self.locations,
        )
        result = ga.run()
        recommendation = Recommendation(
            result=result,
            evaluator=evaluator,
            estimate=evaluator.estimate,
            preferences=preferences,
            scenario_set=scenario_set,
            aggregator=bound_aggregator if scenario_set is not None else None,
            problem=problem,
        )
        if certify:
            budget = DEFAULT_CERTIFY_BUDGET if certify is True else int(certify)
            recommendation.certificate = self.certify_plan(
                evaluator, recommendation.knee_point().plan, budget=budget
            )
        return recommendation

    def _resolve_problem(
        self,
        preferences: Optional[MigrationPreferences] = None,
        scenarios: Optional[
            Union[ScenarioSet, ScenarioSpec, Sequence[ScenarioSpec]]
        ] = None,
        aggregator: Optional[RobustAggregator] = None,
        problem: Optional[PlacementProblem] = None,
    ) -> Tuple[PlacementProblem, MigrationPreferences]:
        """Validate the problem/preferences arguments and apply the legacy shim.

        The single definition of what :meth:`recommend` optimizes for a given set
        of request arguments — shared with the :class:`AdvisorService` durable
        journal, whose revive path must rebuild the *same* evaluator a journaled
        search ran under.
        """
        if problem is not None:
            if scenarios is not None or aggregator is not None:
                raise ValueError(
                    "pass scenarios/aggregator on the problem "
                    "(PlacementProblem.with_scenarios) when using problem=..."
                )
            if preferences is not None and problem.preferences is not None:
                raise ValueError(
                    "preferences were given both directly and on the problem"
                )
        else:
            if aggregator is not None and scenarios is None:
                raise ValueError(
                    "aggregator only applies to scenario-robust recommendation; "
                    "pass scenarios=... as well"
                )
            if scenarios is not None:
                _warn_legacy_kwargs("scenarios" if aggregator is None else "scenarios/aggregator")
            problem = PlacementProblem.default(
                scenarios=scenarios,
                aggregator=(aggregator or WorstCase()) if scenarios is not None else None,
            )
        preferences = (
            problem.preferences
            if problem.preferences is not None
            else (preferences or self.preferences)
        )
        return problem, preferences

    def certify_plan(
        self,
        evaluator: QualityEvaluator,
        plan: MigrationPlan,
        budget: int = 48,
        seed: int = 0,
        bounds: Optional[AdversaryBounds] = None,
        extra_specs: Sequence[ScenarioSpec] = (),
    ) -> RobustnessCertificate:
        """Adversarially certify one plan's worst case over the bounded scenario space.

        Builds a :class:`~repro.quality.scenario_factory.ScenarioFactory` from the
        evaluator's learned artifacts (its stress families seed the search) and runs
        the :class:`~repro.quality.adversary.ScenarioAdversary` against ``plan``.
        ``extra_specs`` join the seed population — e.g. a drift-refreshed scenario.
        """
        adversary = ScenarioAdversary(
            evaluator,
            factory=ScenarioFactory.from_evaluator(evaluator, locations=self.locations),
            bounds=bounds,
            budget=budget,
            seed=seed,
            extra_specs=extra_specs,
        )
        return adversary.certify(plan)

    def recertify(
        self,
        recommendation: Recommendation,
        executed_plan: MigrationPlan,
        update: DriftScenarioUpdate,
        base_scenario: Optional[ScenarioSpec] = None,
        budget: int = 48,
        seed: int = 0,
        bounds: Optional[AdversaryBounds] = None,
    ) -> Optional[RobustnessCertificate]:
        """Drift-triggered re-certification of an executed plan.

        When ``update`` (a :meth:`DriftDetector.check_all
        <repro.monitoring.drift.DriftDetector.check_all>` result with a scenario)
        reports drift, the stale compiled scenario state of the drifted APIs is
        invalidated and the adversary re-runs against the refreshed workload: the
        drift-compiled scenario (``ScenarioSpec.from_workload(update.scenario,
        base_scenario)`` when both are given) joins the seed population.  Without
        drift the existing certificate still stands and is returned unchanged.
        The fresh certificate replaces ``recommendation.certificate``.
        """
        if not update.needs_recertification:
            return recommendation.certificate
        evaluator = recommendation.evaluator
        if update.refreshed_traces:
            # Incremental path: the monitoring plane supplied re-profiled traces
            # for (some of) the drifted APIs — splice replaces exactly those APIs'
            # compiled state in O(K) instead of dropping everything.  APIs that
            # drifted without a fresh trace window still invalidate wholesale.
            evaluator.splice(update.refreshed_traces)
            remaining = [
                api
                for api in update.drifted_apis
                if api not in update.refreshed_traces
            ]
            if remaining:
                evaluator.invalidate_for_scenario(apis=remaining)
        else:
            evaluator.invalidate_for_scenario(apis=update.drifted_apis)
        extra: Tuple[ScenarioSpec, ...] = ()
        if update.scenario is not None and base_scenario is not None:
            extra = (
                ScenarioSpec.from_workload(
                    update.scenario, base_scenario, name="drift-refresh"
                ),
            )
        certificate = self.certify_plan(
            evaluator,
            executed_plan,
            budget=budget,
            seed=seed,
            bounds=bounds,
            extra_specs=extra,
        )
        recommendation.certificate = certificate
        return certificate

    def _seed_vectors(self, evaluator: QualityEvaluator, config: GAConfig):
        """Affinity-guided population seeds derived from Atlas's own learned footprints."""
        import numpy as np

        from ..optimizer.atlas_ga import affinity_seed_vectors

        knowledge = self._require_knowledge()
        total_requests = {
            api: sum(series) for api, series in evaluator.estimate.api_rates.items()
        }
        pair_traffic = knowledge.footprint.expected_pair_traffic(total_requests)
        components = self.application.component_names
        return affinity_seed_vectors(
            components=components,
            pinned=evaluator.preferences.pinned_placement,
            pair_traffic=pair_traffic,
            # Seeding probes single vectors, many of them repeats (flip-and-revert
            # passes): the scalar is_feasible path keeps the per-plan qcost memo
            # warm, which the batched pipeline deliberately bypasses.
            is_feasible=lambda vector: evaluator.is_feasible(
                MigrationPlan.from_vector(components, list(vector))
            ),
            rng=np.random.default_rng(config.seed + 101),
            count=4,
            locations=self.locations,
            allowed_locations=evaluator.preferences.allowed_locations,
        )

    # -- baselines support ------------------------------------------------------------------------
    def baseline_context(self, evaluator: QualityEvaluator) -> BaselineContext:
        """Context object feeding the comparison baselines with the same learned data."""
        knowledge = self._require_knowledge()
        telemetry = self._require_telemetry()
        message_matrix: Dict[tuple, float] = {}
        for api, profile in knowledge.api_profiles.items():
            for pair, per_request in profile.invocations_per_request.items():
                message_matrix[pair] = message_matrix.get(pair, 0.0) + per_request * profile.request_count
        busyness = {
            name: profile.mean_cpu_millicores
            for name, profile in knowledge.component_profiles.items()
        }
        return BaselineContext(
            components=self.application.component_names,
            evaluator=evaluator,
            traffic_matrix=telemetry.traffic_matrix(),
            message_matrix=message_matrix,
            busyness=busyness,
            locations=tuple(self.locations),
            network=self.network,
        )

    # -- stage 3: monitoring ------------------------------------------------------------------------
    def drift_detector(
        self,
        recommendation: Recommendation,
        executed_plan: MigrationPlan,
        measured_latencies: Mapping[str, Sequence[float]],
    ) -> DriftDetector:
        """Build the drift detector for one executed plan.

        ``measured_latencies`` are the per-API latencies observed right after executing
        the plan (the previous round's ground truth, ``b_real`` in the paper).
        """
        approx = {
            api: estimate.estimated_latencies_ms
            for api, estimate in recommendation.latency_preview(executed_plan).items()
            if api in measured_latencies
        }
        real = {api: list(measured_latencies[api]) for api in approx}
        return DriftDetector(
            approx_latencies=approx,
            real_latencies=real,
            threshold_factor=self.config.drift_threshold_factor,
        )

    def breach_detector(self) -> BreachDetector:
        """Footprint-based data-breach detector (Section 6)."""
        knowledge = self._require_knowledge()
        return BreachDetector(
            knowledge.footprint, ratio_threshold=self.config.breach_ratio_threshold
        )

    # -- internals --------------------------------------------------------------------------------------
    def _require_knowledge(self) -> ApplicationKnowledge:
        if self.knowledge is None:
            raise RuntimeError("Atlas.learn() must be called before this operation")
        return self.knowledge

    def _require_telemetry(self) -> TelemetryServer:
        if self.telemetry is None:
            raise RuntimeError("Atlas.learn() must be called before this operation")
        return self.telemetry


def _describe(value: object) -> Optional[str]:
    """Content-stable description of one request argument, or ``None`` if there is none.

    Dataclass/value-object reprs describe content; a default ``object.__repr__``
    (recognizable by its ``" object at 0x"`` id) describes only identity, so a key
    built from it would collide across distinct contents once ids are reused.
    Returning ``None`` marks the request unmemoizable — a miss is sound, a
    collision is not.
    """
    text = repr(value)
    if " object at 0x" in text:
        return None
    return text


class AdvisorService:
    """Long-lived warm-path front door for repeated / multi-tenant recommendations.

    One service instance owns a single :class:`~repro.quality.artifacts.ArtifactCache`
    and threads it through every :meth:`recommend` call, so N tenants advising over
    the same testbed share one physical compile of every trace set, Δ table and
    fused program — and a second request with an identical content fingerprint is
    answered from the request memo without re-running the search at all (sound
    because the seeded search is deterministic: identical inputs ⇒ identical
    recommendation).

    >>> service = AdvisorService()
    >>> service.register("team-a", atlas_a)
    >>> rec = service.recommend("team-a", expected_scale=5.0)   # cold: compiles + searches
    >>> rec = service.recommend("team-a", expected_scale=5.0)   # warm: memo hit

    The memo returns the cached :class:`Recommendation` object itself; requests
    whose arguments cannot be described by content (an object with a default
    ``repr``) skip the memo but still warm the artifact cache.

    ``store`` (opt-in) makes the warmth durable: an
    :class:`~repro.serving.store.ArtifactStore` becomes the second tier of the
    artifact cache *and* the journal of the request memo.  A journaled request
    served by a fresh process revives the recommendation from the durable search
    result — the evaluator is rebuilt against the warm artifact tier, no search
    runs — which is sound for exactly the reason the memo is: the seeded search
    is deterministic, so the journaled result *is* what a re-run would produce.
    The service is thread-safe: the caches single-flight racing requests, so N
    tenants racing on one fingerprint trigger exactly one compile/search.
    """

    #: Atlas.recommend arguments the journal revive path knows how to honor; a
    #: journaled request carrying anything else falls back to a cold recommend.
    _REVIVABLE_KWARGS = frozenset(
        {
            "expected_scale",
            "api_rates",
            "preferences",
            "ga_config",
            "scenarios",
            "aggregator",
            "problem",
            "certify",
            "parallel",
            "anytime",
        }
    )

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        max_recommendations: int = 32,
        store: Optional["ArtifactStore"] = None,
    ) -> None:
        #: Durable second tier (artifacts + request journal); None = in-memory only.
        self.store = store
        #: Compiled-artifact cache shared by every evaluator this service builds.
        self.cache = cache if cache is not None else ArtifactCache(store=store)
        #: Request-level memo: full recommendation fingerprint -> Recommendation.
        self.recommendations = ArtifactCache(max_entries=max_recommendations)
        self._tenants: Dict[str, Atlas] = {}
        self._mu = threading.Lock()
        self.journal_hits = 0
        self.journal_misses = 0

    # -- tenants ----------------------------------------------------------------------------
    def register(self, name: str, atlas: Atlas) -> Atlas:
        """Register a tenant's advisor under ``name`` (returned for chaining)."""
        with self._mu:
            self._tenants[name] = atlas
        return atlas

    def tenant(self, name: str) -> Atlas:
        with self._mu:
            if name not in self._tenants:
                raise KeyError(f"no tenant registered under {name!r}")
            return self._tenants[name]

    @property
    def tenants(self) -> List[str]:
        with self._mu:
            return sorted(self._tenants)

    # -- serving ----------------------------------------------------------------------------
    def recommend(self, atlas: Union[str, Atlas], **kwargs) -> Recommendation:
        """Serve one recommendation against the warm cache.

        ``atlas`` is a registered tenant name or an :class:`Atlas` instance;
        ``kwargs`` are forwarded to :meth:`Atlas.recommend` verbatim (plus the
        service's shared artifact cache).  When the request's content fingerprint —
        learned traces, footprint, network, estimator state, current plan, config
        and every argument — matches a previous call, the memoized recommendation
        is returned without recompiling or re-searching; with a ``store``, a
        fingerprint journaled by an earlier *process* revives without re-searching
        either.
        """
        if isinstance(atlas, str):
            atlas = self.tenant(atlas)
        key = self._request_key(atlas, kwargs)
        if key is None:
            return atlas.recommend(artifact_cache=self.cache, **kwargs)
        return self.recommendations.get_or_build(
            key, lambda: self._serve(atlas, key, kwargs)
        )

    def _serve(self, atlas: Atlas, key: Tuple, kwargs: Mapping[str, object]) -> Recommendation:
        """Memo-miss path: revive from the durable journal, else search and journal."""
        revived = self._revive(atlas, key, kwargs)
        if revived is not None:
            with self._mu:
                self.journal_hits += 1
            return revived
        if self.store is not None:
            with self._mu:
                self.journal_misses += 1
        recommendation = atlas.recommend(artifact_cache=self.cache, **kwargs)
        if self.store is not None:
            self.store.save(
                ("journal",) + key,
                {
                    "version": 1,
                    "result": recommendation.result,
                    "certificate": recommendation.certificate,
                },
            )
        return recommendation

    def _revive(
        self, atlas: Atlas, key: Tuple, kwargs: Mapping[str, object]
    ) -> Optional[Recommendation]:
        """Rebuild a journaled recommendation without running the search.

        The journal persists the deterministic search *output* (the
        :class:`~repro.optimizer.atlas_ga.SearchResult`, plain data); the live
        parts of a :class:`Recommendation` — the evaluator over the learned
        models — are rebuilt through the warm artifact tier.  Scenario-robust
        requests additionally re-score the journaled plan pool in one batched
        pass so regret reporting sees the same evaluated set (bitwise, per the
        batched-evaluation determinism contract).  Any defect — missing entry,
        version skew, unexpected argument, evaluation mismatch — degrades to a
        cold recommend, never a crash.
        """
        if self.store is None or not set(kwargs) <= self._REVIVABLE_KWARGS:
            return None
        entry = self.store.load(("journal",) + key)
        if not isinstance(entry, dict) or entry.get("version") != 1:
            return None
        try:
            result: SearchResult = entry["result"]
            certificate = entry.get("certificate")
            if kwargs.get("certify") and certificate is None:
                return None
            problem, preferences = atlas._resolve_problem(
                preferences=kwargs.get("preferences"),
                scenarios=kwargs.get("scenarios"),
                aggregator=kwargs.get("aggregator"),
                problem=kwargs.get("problem"),
            )
            evaluator = atlas.build_evaluator(
                expected_scale=kwargs.get("expected_scale", 1.0),
                api_rates=kwargs.get("api_rates"),
                preferences=preferences,
                problem=problem,
                artifact_cache=self.cache,
            )
            if problem.scenarios is not None:
                pool = result.all_evaluated or result.pareto
                evaluator.evaluate_batch([quality.plan for quality in pool])
            return Recommendation(
                result=result,
                evaluator=evaluator,
                estimate=evaluator.estimate,
                preferences=preferences,
                scenario_set=problem.scenarios,
                aggregator=(
                    evaluator.bound_aggregator if problem.scenarios is not None else None
                ),
                problem=problem,
                certificate=certificate,
            )
        except Exception:
            return None

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Warm-path observability: artifact-cache and request-memo counters."""
        stats = {
            "artifacts": self.cache.stats(),
            "recommendations": self.recommendations.stats(),
        }
        if self.store is not None:
            with self._mu:
                stats["journal"] = {
                    "hits": self.journal_hits,
                    "misses": self.journal_misses,
                }
        return stats

    # -- request fingerprinting -------------------------------------------------------------
    def _request_key(self, atlas: Atlas, kwargs: Mapping[str, object]) -> Optional[Tuple]:
        """Content fingerprint of one recommend request, or ``None`` when unmemoizable.

        Covers everything the (deterministic, seeded) search consumes: the learned
        knowledge (per-API trace sets, stateful components, footprint, fitted
        estimator state), the network, the baseline plan, the topology, the config
        and the call's own arguments.  Equal keys therefore imply an identical
        recommendation; any argument without a content-stable description makes the
        whole request unmemoizable (a miss, never a wrong hit).
        """
        knowledge = atlas.knowledge
        if knowledge is None:
            return None  # recommend() will raise its own RuntimeError
        parts: List[str] = []
        for api in knowledge.apis:
            profile = knowledge.api_profiles[api]
            parts.append(api)
            parts.append(fingerprint_traces(profile.sample_traces))
            parts.append(",".join(sorted(profile.stateful_components)))
        parts.append(fingerprint_footprint(knowledge.footprint))
        parts.append(self._estimator_fingerprint(knowledge.estimator))
        parts.append(fingerprint_network(atlas.network))
        parts.append(repr(sorted(atlas.current_plan.items())))
        parts.append(repr(list(atlas.locations)))
        parts.append(repr(atlas.application.component_names))
        parts.append(
            repr(
                [
                    (comp.name, comp.resources.storage_gb)
                    for comp in atlas.application.components
                ]
            )
        )
        for described in (
            atlas.preferences,
            atlas.config,
            sorted(atlas._pricing_catalogs().items()),
        ):
            text = _describe(described)
            if text is None:
                return None
            parts.append(text)
        for name in sorted(kwargs):
            value = kwargs[name]
            if name == "api_rates" and isinstance(value, Mapping):
                value = sorted((api, list(series)) for api, series in value.items())
            text = _describe(value)
            if text is None:
                return None
            parts.append(f"{name}={text}")
        return ("recommend", _sha(parts))

    @staticmethod
    def _estimator_fingerprint(estimator: ResourceEstimator) -> str:
        """Content fingerprint of the fitted attribution models (idle + coefficients)."""
        parts = [repr(estimator.apis)]
        for (resource, component), (idle, coef) in sorted(estimator._models.items()):
            parts.append(f"{resource}|{component}|{idle!r}|{coef.tobytes().hex()}")
        return _sha(parts)
