"""Advisor facade and plan-selection helpers."""

from .advisor import ApplicationKnowledge, Atlas, AtlasConfig, Recommendation
from .hierarchy import PlanCluster, PlanHierarchy

__all__ = [
    "Atlas",
    "AtlasConfig",
    "ApplicationKnowledge",
    "Recommendation",
    "PlanCluster",
    "PlanHierarchy",
]
