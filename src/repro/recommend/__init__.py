"""Advisor facade and plan-selection helpers."""

from .advisor import (
    AdvisorService,
    ApplicationKnowledge,
    Atlas,
    AtlasConfig,
    Recommendation,
)
from .hierarchy import PlanCluster, PlanHierarchy

__all__ = [
    "Atlas",
    "AtlasConfig",
    "AdvisorService",
    "ApplicationKnowledge",
    "Recommendation",
    "PlanCluster",
    "PlanHierarchy",
]
