"""Pareto-optimality utilities: dominance, fronts, non-dominated sorting, crowding.

These are the building blocks shared by the Atlas DRL-based genetic algorithm, the
NSGA-II variant used in the ablation of Figure 21 and the affinity-based GA baseline.
All objectives are minimized.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

import numpy as np

__all__ = [
    "dominates",
    "pareto_front",
    "merge_fronts",
    "non_dominated_sort",
    "crowding_distance",
    "hypervolume_2d",
    "distance_to_ideal",
    "knee_index",
]

T = TypeVar("T")
Objectives = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b`` (all <=, at least one <)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have the same length")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_front(items: Sequence[T], key: Callable[[T], Sequence[float]]) -> List[T]:
    """The non-dominated subset of ``items`` under the objective extractor ``key``."""
    objectives = [tuple(key(item)) for item in items]
    front: List[T] = []
    for i, item in enumerate(items):
        dominated = False
        for j, other in enumerate(objectives):
            if i != j and dominates(other, objectives[i]):
                dominated = True
                break
            # Deduplicate identical objective vectors, keeping the first occurrence.
            if j < i and other == objectives[i]:
                dominated = True
                break
        if not dominated:
            front.append(item)
    return front


def merge_fronts(
    fronts: Sequence[Sequence[T]], key: Callable[[T], Sequence[float]]
) -> List[T]:
    """Merge per-island Pareto fronts into one non-dominated front.

    Equivalent to :func:`pareto_front` over the concatenation of all fronts (same
    dominance rule, same first-occurrence deduplication of identical objective
    vectors, same concatenation-order output), but maintained incrementally: each
    incoming item is compared against the merged set only, dominated survivors are
    evicted as better items arrive.  This is the K-dim merge the island-model
    parallel search applies to the per-worker fronts, and the law the property
    suite in ``tests/test_parallel.py`` pins down.
    """
    merged: List[T] = []
    merged_objectives: List[Objectives] = []
    for front in fronts:
        for item in front:
            objectives = tuple(float(v) for v in key(item))
            skip = False
            for kept in merged_objectives:
                if kept == objectives or dominates(kept, objectives):
                    skip = True
                    break
            if skip:
                continue
            survivors = [
                i
                for i, kept in enumerate(merged_objectives)
                if not dominates(objectives, kept)
            ]
            if len(survivors) != len(merged):
                merged = [merged[i] for i in survivors]
                merged_objectives = [merged_objectives[i] for i in survivors]
            merged.append(item)
            merged_objectives.append(objectives)
    return merged


def non_dominated_sort(objectives: Sequence[Sequence[float]]) -> List[List[int]]:
    """NSGA-II fast non-dominated sort: indices grouped into fronts (front 0 is best)."""
    n = len(objectives)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
            elif dominates(objectives[j], objectives[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [front for front in fronts if front]


def crowding_distance(objectives: Sequence[Sequence[float]]) -> List[float]:
    """NSGA-II crowding distance of each solution within one front."""
    n = len(objectives)
    if n == 0:
        return []
    if n <= 2:
        return [float("inf")] * n
    m = len(objectives[0])
    distance = [0.0] * n
    arr = np.asarray(objectives, dtype=float)
    for k in range(m):
        order = np.argsort(arr[:, k], kind="stable")
        lo, hi = arr[order[0], k], arr[order[-1], k]
        distance[order[0]] = float("inf")
        distance[order[-1]] = float("inf")
        span = hi - lo
        if span <= 0:
            continue
        for idx in range(1, n - 1):
            i = order[idx]
            if distance[i] == float("inf"):
                continue
            distance[i] += (arr[order[idx + 1], k] - arr[order[idx - 1], k]) / span
    return distance


def distance_to_ideal(points: Sequence[Sequence[float]]) -> np.ndarray:
    """Euclidean distance of each point to the ideal corner of the normalized front.

    The front is normalized per objective to [0, 1] over its own span (degenerate
    objectives — identical on every point — contribute zero), and the ideal point is
    the per-objective minimum, i.e. the all-zeros corner.  Works for any number of
    objectives; all objectives minimized.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise ValueError("distance_to_ideal needs a non-empty (points, K) matrix")
    lo = arr.min(axis=0)
    hi = arr.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    normalized = (arr - lo) / span
    return np.sqrt((normalized**2).sum(axis=1))


def knee_index(points: Sequence[Sequence[float]]) -> int:
    """Index of the front's knee point: the minimizer of :func:`distance_to_ideal`.

    The knee is the balanced compromise — the plan closest to being best at
    everything at once — and is how :class:`~repro.recommend.advisor.Recommendation`
    orders its plans (knee first).  Ties break toward the earliest point.
    """
    return int(np.argmin(distance_to_ideal(points)))


def hypervolume_2d(
    front: Sequence[Sequence[float]], reference: Sequence[float]
) -> float:
    """Hypervolume (area) dominated by a 2-objective front w.r.t. a reference point.

    Used by tests and ablations to compare the quality of Pareto fronts; both objectives
    are minimized and points beyond the reference contribute nothing.
    """
    if len(reference) != 2:
        raise ValueError("hypervolume_2d needs a 2-dimensional reference point")
    points = [
        (float(x), float(y))
        for x, y in front
        if x <= reference[0] and y <= reference[1]
    ]
    if not points:
        return 0.0
    points.sort()
    volume = 0.0
    prev_x = None
    best_y = reference[1]
    # Sweep in increasing x; each point contributes a rectangle up to the reference.
    filtered: List[Tuple[float, float]] = []
    for x, y in points:
        if not filtered or y < filtered[-1][1]:
            filtered.append((x, y))
    for i, (x, y) in enumerate(filtered):
        next_x = filtered[i + 1][0] if i + 1 < len(filtered) else reference[0]
        volume += (next_x - x) * (reference[1] - y)
    return max(volume, 0.0)
