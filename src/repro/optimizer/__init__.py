"""Plan search: Pareto tools, NSGA-II machinery, DRL crossover, Atlas GA and baselines."""

from .atlas_ga import AtlasGA, GAConfig, SearchResult, penalized_objectives
from .baselines import (
    AffinityNSGA2Baseline,
    BaselineContext,
    GreedyBusiestBaseline,
    GreedySmallestBaseline,
    IntMABaseline,
    REMaPBaseline,
    RandomSearchBaseline,
)
from .drl import AdamOptimizer, CrossoverAgent, MLP, TrainingHistory
from .nsga2 import (
    RankedIndividual,
    binary_tournament,
    bitflip_mutation,
    rank_population,
    survival_selection,
    tournament_pairs,
    uniform_crossover,
)
from .parallel import ParallelSearchError, run_island_search
from .pareto import (
    crowding_distance,
    distance_to_ideal,
    dominates,
    hypervolume_2d,
    knee_index,
    merge_fronts,
    non_dominated_sort,
    pareto_front,
)

__all__ = [
    "dominates",
    "pareto_front",
    "merge_fronts",
    "ParallelSearchError",
    "run_island_search",
    "non_dominated_sort",
    "crowding_distance",
    "hypervolume_2d",
    "distance_to_ideal",
    "knee_index",
    "RankedIndividual",
    "rank_population",
    "binary_tournament",
    "tournament_pairs",
    "survival_selection",
    "uniform_crossover",
    "bitflip_mutation",
    "MLP",
    "AdamOptimizer",
    "CrossoverAgent",
    "TrainingHistory",
    "GAConfig",
    "SearchResult",
    "AtlasGA",
    "penalized_objectives",
    "BaselineContext",
    "GreedyBusiestBaseline",
    "GreedySmallestBaseline",
    "IntMABaseline",
    "REMaPBaseline",
    "AffinityNSGA2Baseline",
    "RandomSearchBaseline",
]
