"""NSGA-II selection machinery shared by the Atlas GA and the baseline GAs.

Atlas reuses NSGA-II's non-dominated sorting, crowding distance and binary tournament
to pick *which* parent plans to cross; the difference (Section 4.2.1) is *how* the
crossover is performed — the classic GA combines parents uniformly at random, Atlas asks
a trained DRL agent.  This module provides the shared machinery plus the classic
random-crossover operators so both variants can be built from the same parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .pareto import crowding_distance, non_dominated_sort

__all__ = [
    "RankedIndividual",
    "rank_population",
    "binary_tournament",
    "tournament_pairs",
    "survival_selection",
    "uniform_crossover",
    "bitflip_mutation",
    "random_location_vector",
    "allowed_repair_targets",
    "apply_allowed_repair",
]

Vector = Tuple[int, ...]


@dataclass(frozen=True)
class RankedIndividual:
    """One population member with its NSGA-II rank and crowding distance."""

    index: int
    objectives: Tuple[float, ...]
    rank: int
    crowding: float

    def beats(self, other: "RankedIndividual") -> bool:
        """Crowded-comparison operator: lower rank wins, ties broken by larger crowding."""
        if self.rank != other.rank:
            return self.rank < other.rank
        return self.crowding > other.crowding


def rank_population(objectives: Sequence[Sequence[float]]) -> List[RankedIndividual]:
    """Assign NSGA-II rank and crowding distance to every objective vector."""
    fronts = non_dominated_sort(objectives)
    ranked: List[Optional[RankedIndividual]] = [None] * len(objectives)
    for rank, front in enumerate(fronts):
        front_objectives = [objectives[i] for i in front]
        distances = crowding_distance(front_objectives)
        for i, dist in zip(front, distances):
            ranked[i] = RankedIndividual(
                index=i,
                objectives=tuple(float(v) for v in objectives[i]),
                rank=rank,
                crowding=dist,
            )
    return [ind for ind in ranked if ind is not None]


def binary_tournament(
    ranked: Sequence[RankedIndividual], rng: np.random.Generator
) -> RankedIndividual:
    """Pick two members at random and return the better one under crowded comparison."""
    if not ranked:
        raise ValueError("cannot run a tournament on an empty population")
    a, b = rng.integers(0, len(ranked), size=2)
    first, second = ranked[int(a)], ranked[int(b)]
    return first if first.beats(second) else second


def tournament_pairs(
    ranked: Sequence[RankedIndividual], pairs: int, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    """Select parent index pairs via binary tournaments, preferring diverse parents."""
    selected: List[Tuple[int, int]] = []
    for _ in range(pairs):
        p1 = binary_tournament(ranked, rng)
        p2 = binary_tournament(ranked, rng)
        attempts = 0
        while p2.index == p1.index and attempts < 5:
            p2 = binary_tournament(ranked, rng)
            attempts += 1
        selected.append((p1.index, p2.index))
    return selected


def survival_selection(
    objectives: Sequence[Sequence[float]], capacity: int
) -> List[int]:
    """Indices of the ``capacity`` members kept for the next generation (NSGA-II elitism)."""
    if capacity <= 0:
        return []
    fronts = non_dominated_sort(objectives)
    survivors: List[int] = []
    for front in fronts:
        if len(survivors) + len(front) <= capacity:
            survivors.extend(front)
            continue
        remaining = capacity - len(survivors)
        if remaining <= 0:
            break
        distances = crowding_distance([objectives[i] for i in front])
        order = sorted(range(len(front)), key=lambda k: distances[k], reverse=True)
        survivors.extend(front[k] for k in order[:remaining])
        break
    return survivors


def random_location_vector(
    rng: np.random.Generator,
    n: int,
    offload_prob: float,
    locations: Sequence[int],
    on_prem: int = 0,
) -> List[int]:
    """Random N-location vector: each gene offloads with ``offload_prob`` and then
    picks one of the remote sites uniformly.

    Shared by the Atlas GA and the baseline samplers so both search the same plan
    distribution; callers keep their own two-location fast paths (which consume the
    RNG in the historical order) and delegate here only for N > 2.
    """
    remote = [loc for loc in locations if loc != on_prem]
    if not remote:
        raise ValueError("locations must include at least one remote site")
    offloaded = rng.random(n) < offload_prob
    sites = rng.integers(0, len(remote), size=n)
    return [
        remote[int(site)] if moved else on_prem
        for moved, site in zip(offloaded, sites)
    ]


def allowed_repair_targets(
    allowed: Mapping[int, Sequence[int]],
    locations: Sequence[int],
    on_prem: int = 0,
) -> Dict[int, Tuple[Tuple[int, ...], int]]:
    """Per-gene (permitted locations, deterministic repair target) for whitelists.

    The repair target of a restricted gene is the first permitted *remote* site in
    ``locations`` order (keeping the offload intent of a disallowed draw), or
    on-prem when the whitelist leaves no remote site.  Shared by the Atlas GA and
    the DRL crossover agent so both repair identically.
    """
    targets: Dict[int, Tuple[Tuple[int, ...], int]] = {}
    for index, permitted in allowed.items():
        permitted_ids = tuple(int(loc) for loc in permitted)
        remotes = [loc for loc in locations if loc != on_prem and loc in permitted_ids]
        targets[int(index)] = (permitted_ids, remotes[0] if remotes else on_prem)
    return targets


def apply_allowed_repair(
    vector,
    targets: Mapping[int, Tuple[Tuple[int, ...], int]],
    on_prem: int = 0,
) -> None:
    """Repair whitelist-violating genes in place (no RNG consumed).

    Works on lists and numpy vectors alike; genes at the on-prem site are always
    legal (whitelists restrict remote placements only).
    """
    for index, (permitted, target) in targets.items():
        if vector[index] != on_prem and vector[index] not in permitted:
            vector[index] = target


def uniform_crossover(
    parent_a: Sequence[int], parent_b: Sequence[int], rng: np.random.Generator
) -> List[int]:
    """Classic uniform crossover: each gene comes from either parent with equal chance.

    Genes are location ids, so the operator is location-count agnostic: it never
    invents a location neither parent uses.
    """
    if len(parent_a) != len(parent_b):
        raise ValueError("parents must have the same length")
    mask = rng.random(len(parent_a)) < 0.5
    return [int(a if m else b) for a, b, m in zip(parent_a, parent_b, mask)]


def bitflip_mutation(
    vector: Sequence[int],
    rng: np.random.Generator,
    rate: float = 0.05,
    locations: Sequence[int] = (0, 1),
) -> List[int]:
    """Move each gene to a random *other* location with probability ``rate``.

    Pass the topology's ``locations`` to mutate over all N sites; the default keeps the
    paper's two-location flip.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("mutation rate must be in [0, 1]")
    result = list(int(v) for v in vector)
    for i in range(len(result)):
        if rng.random() < rate:
            choices = [loc for loc in locations if loc != result[i]]
            if choices:
                result[i] = int(rng.choice(choices))
    return result
