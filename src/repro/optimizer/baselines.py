"""Baseline migration strategies the paper compares Atlas against (Section 5.2).

Single-plan approaches:

* :class:`GreedyBusiestBaseline` / :class:`GreedySmallestBaseline` — offload the most /
  least resource-consuming components until the on-prem cluster can host the rest
  (Seagull-style cloud bursting [45]).
* :class:`IntMABaseline` — offload components so that the total traffic size between
  datacenters is minimized (interaction-aware placement [57]).
* :class:`REMaPBaseline` — like IntMA but the affinity combines traffic size and the
  number of message exchanges [68].

Multi-plan approaches:

* :class:`AffinityNSGA2Baseline` — NSGA-II with two objectives: cross-datacenter
  traffic (a proxy for performance) and cloud hosting cost (same cost model as Atlas);
  representative of [29, 39, 44, 47, 53].
* :class:`RandomSearchBaseline` — uniformly random feasible plans, keeping the Pareto
  set under Atlas's own quality model.

All baselines honour the owner's pinned placements (and per-component
allowed-locations whitelists) and use the same resource estimate for feasibility, so
the comparison isolates the placement *policy*.

On N-location topologies (``BaselineContext.locations``) the single-plan heuristics
are region-aware: each offloaded component goes to its cheapest/closest *permitted*
remote site — the greedy baselines rank candidate sites by the actual cost model, the
affinity heuristics by the cross-datacenter affinity of the resulting plan, with ties
broken by the static catalog-price/proximity preference.  The affinity GA and random
search sample every site natively.  The two-location topology reproduces the paper's
baselines bit-for-bit (a single remote site makes every ranking trivial).

The multi-plan baselines are matrix-native: populations are location vectors scored
through the evaluator's plan-matrix pipeline (``feasible_mask``, ``qcost_batch``,
``evaluate_vectors``); :class:`MigrationPlan` objects are built only for the returned
fronts.

**K objectives.**  Random search keeps the Pareto set under Atlas's own quality
model, so its fronts follow the evaluator's
:class:`~repro.quality.problem.PlacementProblem` dimensionality (K-dim dominance via
``PlanQuality.objectives()``).  The affinity NSGA-II keeps its *own* two-objective
space (cross-DC traffic, cloud cost) by design — it models prior work that has no
notion of API workflows — but its feasibility and cost doors
(``feasible_mask``/``qcost_vectors``) run against whatever problem and scenario
binding the shared evaluator carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.network import NetworkModel
from ..cluster.placement import MigrationPlan
from ..cluster.topology import CLOUD, ON_PREM
from ..quality.evaluator import PlanQuality, QualityEvaluator
from .nsga2 import (
    bitflip_mutation,
    random_location_vector,
    rank_population,
    survival_selection,
    tournament_pairs,
    uniform_crossover,
)
from .pareto import merge_fronts, pareto_front

__all__ = [
    "BaselineContext",
    "GreedyBusiestBaseline",
    "GreedySmallestBaseline",
    "IntMABaseline",
    "REMaPBaseline",
    "AffinityNSGA2Baseline",
    "RandomSearchBaseline",
]

Pair = Tuple[str, str]


def _random_location_vector(
    rng: np.random.Generator, n: int, offload_prob: float, context: "BaselineContext"
) -> List[int]:
    """Uniform random location vector; offloaded genes pick a remote site uniformly.

    The two-location path keeps the exact RNG consumption of the original bit-vector
    sampling so fixed-seed baseline runs reproduce pre-N-location results bit-for-bit;
    N > 2 delegates to the sampler shared with the Atlas GA.
    """
    if context.is_binary:
        return [int(v) for v in (rng.random(n) < offload_prob).astype(int)]
    return random_location_vector(rng, n, offload_prob, context.locations)


@dataclass
class BaselineContext:
    """Shared inputs of all baselines.

    ``traffic_matrix`` and ``message_matrix`` come from the mesh telemetry (total bytes
    and invocation counts per directed component pair); ``busyness`` is the mean CPU of
    each component from the component profiles; ``evaluator`` provides feasibility
    checking (on-prem limits, pins) against the same resource estimate Atlas uses.
    ``locations`` is the topology's location-id set — the greedy/affinity heuristics
    offload to the *primary* remote site (they are inherently two-sided policies), while
    the GA and random-search baselines sample every site.
    """

    components: List[str]
    evaluator: QualityEvaluator
    traffic_matrix: Dict[Pair, float]
    message_matrix: Dict[Pair, float] = field(default_factory=dict)
    busyness: Dict[str, float] = field(default_factory=dict)
    locations: Tuple[int, ...] = (ON_PREM, CLOUD)
    #: Topology network model; lets the single-plan heuristics break price ties by
    #: proximity to the on-prem site.  Optional — without it ties fall back to ids.
    network: Optional[NetworkModel] = None

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("baseline context needs at least one component")
        self.locations = tuple(int(loc) for loc in self.locations)
        if ON_PREM not in self.locations or len(self.locations) < 2:
            raise ValueError("locations must include on-prem and at least one remote site")
        self._site_preference: Optional[List[int]] = None

    # -- helpers -------------------------------------------------------------------------
    @property
    def movable_components(self) -> List[str]:
        pinned = self.evaluator.preferences.pinned_placement
        return [c for c in self.components if c not in pinned]

    @property
    def remote_locations(self) -> Tuple[int, ...]:
        return tuple(loc for loc in self.locations if loc != ON_PREM)

    @property
    def primary_remote(self) -> int:
        """The remote site the single-plan heuristics offload to (the paper's cloud)."""
        return self.remote_locations[0]

    @property
    def is_binary(self) -> bool:
        """True for the paper's exact two-location topology (ids 0 and 1)."""
        return self.locations == (ON_PREM, CLOUD)

    def all_on_prem(self) -> MigrationPlan:
        plan = MigrationPlan.all_on_prem(self.components)
        pins = self.evaluator.preferences.pinned_placement
        return plan.with_pinned(pins) if pins else plan

    def feasible(self, plan: MigrationPlan) -> bool:
        return self.evaluator.is_feasible(plan)

    # -- region awareness -----------------------------------------------------------------
    def site_preference(self) -> List[int]:
        """Remote sites cheapest-first (node, storage, egress price), ties by proximity.

        The static ranking the single-plan heuristics use to break ties between
        otherwise equivalent sites; an unbillable site (no catalog) ranks last.
        Computed once — catalogs and network are immutable for a context's lifetime —
        because the affinity heuristics consult it in their innermost loops.
        """
        if self._site_preference is not None:
            return list(self._site_preference)
        cost_model = self.evaluator.cost

        def rank(location: int) -> Tuple:
            catalog = cost_model.catalogs.get(location)
            prices = (
                (
                    catalog.node_spec.hourly_price_usd,
                    catalog.storage_usd_per_gb_month,
                    catalog.egress_usd_per_gb,
                )
                if catalog is not None
                else (float("inf"),) * 3
            )
            if self.network is not None and self.network.has_link(ON_PREM, location):
                proximity = self.network.latency_ms(ON_PREM, location)
            else:
                proximity = float("inf")
            return (*prices, proximity, location)

        self._site_preference = sorted(self.remote_locations, key=rank)
        return list(self._site_preference)

    def permitted_remote_sites(self, component: str) -> Tuple[int, ...]:
        """Remote sites the owner's allowed-locations whitelist permits, pref-ordered."""
        return self.evaluator.preferences.allowed_remote_sites(
            component, self.site_preference()
        )

    def best_site_for(self, component: str, plan: MigrationPlan) -> Optional[int]:
        """Cheapest permitted remote site for offloading one component of this plan.

        Candidate sites are ranked by the actual cost model (QCost of the resulting
        plan) with ties broken by the static :meth:`site_preference`; returns ``None``
        when the whitelist leaves no remote site.  With a single remote site this is
        the paper's two-location offload target.
        """
        sites = self.permitted_remote_sites(component)
        if not sites:
            return None
        if len(sites) == 1:
            return sites[0]
        return min(
            enumerate(sites),
            key=lambda ranked: (
                self.evaluator.cost.qcost(plan.with_location(component, ranked[1])),
                ranked[0],
            ),
        )[1]

    def cross_dc_affinity(
        self, plan: MigrationPlan, message_weight: float = 0.0
    ) -> float:
        """Affinity (bytes + optional message count) crossing the datacenter boundary."""
        total = 0.0
        for (src, dst), traffic in self.traffic_matrix.items():
            if src not in plan or dst not in plan:
                continue
            if plan[src] != plan[dst]:
                total += traffic
                if message_weight > 0.0:
                    total += message_weight * self.message_matrix.get((src, dst), 0.0)
        return total

    def cross_dc_affinity_batch(
        self, plan_matrix: np.ndarray, message_weight: float = 0.0
    ) -> np.ndarray:
        """Batched :meth:`cross_dc_affinity` over a plan matrix (bitwise identical).

        Accumulates entry by entry in the scalar iteration order so each total keeps
        the exact float summation sequence.
        """
        matrix = np.asarray(plan_matrix, dtype=np.int64)
        column_of = {c: i for i, c in enumerate(self.components)}
        totals = np.zeros(matrix.shape[0], dtype=np.float64)
        for (src, dst), traffic in self.traffic_matrix.items():
            src_col = column_of.get(src)
            dst_col = column_of.get(dst)
            if src_col is None or dst_col is None:
                continue
            crossing = matrix[:, src_col] != matrix[:, dst_col]
            if not crossing.any():
                continue
            totals[crossing] += traffic
            if message_weight > 0.0:
                totals[crossing] += message_weight * self.message_matrix.get(
                    (src, dst), 0.0
                )
        return totals


class _GreedyBaseline:
    """Offload components in a fixed busyness order until the plan becomes feasible."""

    #: True = offload the busiest first, False = the least busy first.
    descending = True
    name = "greedy"

    def __init__(self, context: BaselineContext) -> None:
        self.context = context

    def recommend(self) -> MigrationPlan:
        plan = self.context.all_on_prem()
        if self.context.feasible(plan):
            return plan
        order = sorted(
            self.context.movable_components,
            key=lambda c: self.context.busyness.get(c, 0.0),
            reverse=self.descending,
        )
        for component in order:
            # Region-aware offload: each component goes to its cheapest permitted
            # remote site (the paper's single cloud when there is only one).
            target = self.context.best_site_for(component, plan)
            if target is None:
                continue
            plan = plan.with_location(component, target)
            if self.context.feasible(plan):
                return plan
        return plan  # Best effort: everything movable is offloaded.


class GreedyBusiestBaseline(_GreedyBaseline):
    """Offload the largest (most CPU-consuming) components first [45]."""

    descending = True
    name = "greedy-largest"


class GreedySmallestBaseline(_GreedyBaseline):
    """Offload the smallest (least CPU-consuming) components first."""

    descending = False
    name = "greedy-smallest"


class _AffinityHeuristicBaseline:
    """Greedy affinity minimization with a local-improvement pass (REMaP / IntMA)."""

    message_weight = 0.0
    name = "affinity"

    def __init__(self, context: BaselineContext, improvement_passes: int = 2) -> None:
        self.context = context
        self.improvement_passes = improvement_passes

    def _best_affinity_site(
        self, plan: MigrationPlan, component: str
    ) -> Optional[Tuple[int, float]]:
        """Permitted remote site minimizing the move's affinity, with that affinity.

        Ties break by the static site preference (the order
        ``permitted_remote_sites`` already returns).
        """
        best: Optional[Tuple[int, float]] = None
        for site in self.context.permitted_remote_sites(component):
            affinity = self.context.cross_dc_affinity(
                plan.with_location(component, site), self.message_weight
            )
            if best is None or affinity < best[1]:
                best = (site, affinity)
        return best

    def recommend(self) -> MigrationPlan:
        plan = self.context.all_on_prem()
        movable = set(self.context.movable_components)
        # Phase 1: offload until feasible, each step picking the (component, permitted
        # site) whose move yields the smallest cross-datacenter affinity.
        guard = len(self.context.components) + 1
        while not self.context.feasible(plan) and guard > 0:
            guard -= 1
            candidates = [c for c in movable if plan[c] == ON_PREM]
            if not candidates:
                break
            moves = [
                (c, choice)
                for c, choice in (
                    (c, self._best_affinity_site(plan, c)) for c in candidates
                )
                if choice is not None
            ]
            if not moves:
                break
            best_component, (best_site, _affinity) = min(
                moves, key=lambda move: move[1][1]
            )
            plan = plan.with_location(best_component, best_site)
        # Phase 2: hill climbing on single moves (to on-prem or any permitted remote
        # site) that reduce affinity while staying feasible.
        for _ in range(self.improvement_passes):
            improved = False
            current_affinity = self.context.cross_dc_affinity(plan, self.message_weight)
            for component in sorted(movable):
                targets = [ON_PREM] if plan[component] != ON_PREM else []
                targets += [
                    site
                    for site in self.context.permitted_remote_sites(component)
                    if site != plan[component]
                ]
                for target in targets:
                    flipped = plan.with_location(component, target)
                    if not self.context.feasible(flipped):
                        continue
                    affinity = self.context.cross_dc_affinity(
                        flipped, self.message_weight
                    )
                    if affinity < current_affinity:
                        plan, current_affinity = flipped, affinity
                        improved = True
            if not improved:
                break
        return plan


class IntMABaseline(_AffinityHeuristicBaseline):
    """Interaction-aware placement minimizing cross-datacenter traffic size [57]."""

    message_weight = 0.0
    name = "intma"


class REMaPBaseline(_AffinityHeuristicBaseline):
    """Runtime placement adaptation minimizing traffic size and message exchanges [68]."""

    #: Bytes-equivalent weight of one message exchange (REMaP counts both signals).
    message_weight = 256.0
    name = "remap"


@dataclass
class AffinityNSGA2Result:
    """Plans found by the affinity-based GA, with its internal objective values."""

    plans: List[MigrationPlan]
    objectives: List[Tuple[float, float]]
    evaluations: int


class AffinityNSGA2Baseline:
    """NSGA-II over (cross-DC traffic, cloud cost) with random crossover.

    The cost objective reuses Atlas's cost model (as the paper does for fairness); the
    performance proxy is the total traffic between datacenters, i.e. the baseline has no
    notion of API workflows.
    """

    name = "affinity-ga"

    def __init__(
        self,
        context: BaselineContext,
        population_size: int = 100,
        evaluation_budget: int = 10_000,
        mutation_rate: float = 0.05,
        seed: int = 0,
        islands: int = 1,
    ) -> None:
        self.context = context
        self.population_size = population_size
        self.evaluation_budget = evaluation_budget
        self.mutation_rate = mutation_rate
        self.seed = int(seed)
        #: Island-model parallelism, same worker pool as AtlasGA(islands=W): W > 1
        #: shards the population/budget into W forked subpopulations over shared
        #: memory; W = 1 is the serial loop, byte-identical to the historical runs.
        self.islands = int(islands)
        if self.islands < 1:
            raise ValueError("islands must be >= 1")
        self._rng = np.random.default_rng(seed)
        self._evaluations = 0

    # -- objectives -----------------------------------------------------------------------
    def _apply_pins(self, vector: List[int]) -> List[int]:
        for component, location in self.context.evaluator.preferences.pinned_placement.items():
            vector[self.context.components.index(component)] = location
        return vector

    def _objectives_batch(
        self, vectors: Sequence[Sequence[int]]
    ) -> List[Tuple[float, float]]:
        """(cross-DC traffic, cloud cost) of a whole population in three array passes.

        Affinity, cost and feasibility each come from the batched pipeline; values
        (including the infeasibility penalty) are bitwise identical to the historical
        per-plan scoring, and the evaluation counter advances once per vector.  Cost
        and feasibility go through the evaluator's scenario-aware doors
        (``qcost_vectors`` / ``feasible_mask``), so binding a scenario set on the
        shared evaluator makes this baseline scenario-robust too.
        """
        self._evaluations += len(vectors)
        matrix = np.asarray(vectors, dtype=np.int64)
        components = self.context.components
        traffic = self.context.cross_dc_affinity_batch(matrix)
        cost = self.context.evaluator.qcost_vectors(matrix, components)
        feasible = self.context.evaluator.feasible_mask(matrix, components)
        objectives: List[Tuple[float, float]] = []
        for plan_traffic, plan_cost, ok in zip(
            traffic.tolist(), cost.tolist(), feasible.tolist()
        ):
            if not ok:
                penalty = 1e12
                objectives.append((plan_traffic + penalty, plan_cost + penalty))
            else:
                objectives.append((plan_traffic, plan_cost))
        return objectives

    def _random_vector(self) -> List[int]:
        offload_prob = self._rng.uniform(0.15, 0.7)
        vector = _random_location_vector(
            self._rng, len(self.context.components), offload_prob, self.context
        )
        return self._apply_pins(vector)

    def recommend(self) -> AffinityNSGA2Result:
        """Run the search: the serial loop, or ``islands`` forked subpopulations."""
        if self.islands > 1:
            return self._recommend_parallel()
        return self._recommend_serial()

    def _recommend_parallel(self) -> AffinityNSGA2Result:
        from .parallel import ShmArena, derive_seed, run_forked

        evaluator = self.context.evaluator
        components = self.context.components
        islands = self.islands
        population = max(self.population_size // islands, 4)
        share = self.evaluation_budget // islands
        if share <= population:
            raise ValueError(
                f"evaluation budget {self.evaluation_budget} is too small to shard "
                f"across {islands} islands of {population} plans each"
            )
        # Export the compiled evaluation state before forking, so the islands'
        # qcost_vectors/feasible_mask passes score against shared pages.
        evaluator.share_memory(n_locations=max(self.context.locations) + 1)
        n_genes = len(components)
        capacity = population  # an island's front is a subset of its population
        channels = ShmArena(chunk_bytes=1 << 20)
        try:
            front_plans = channels.empty((islands, capacity, n_genes), np.int64)
            front_objectives = channels.empty((islands, capacity, 2), np.float64)
            front_counts = channels.empty((islands,), np.int64)
            front_counts[:] = 0
            stats = channels.empty((islands,), np.int64)
            stats[:] = 0

            def make_task(island: int):
                def task() -> None:
                    shard = AffinityNSGA2Baseline(
                        self.context,
                        population_size=population,
                        evaluation_budget=share,
                        mutation_rate=self.mutation_rate,
                        seed=derive_seed(self.seed, island),
                    )
                    result = shard._recommend_serial()
                    count = min(len(result.plans), capacity)
                    for row in range(count):
                        front_plans[island, row] = np.asarray(
                            result.plans[row].to_vector(), dtype=np.int64
                        )
                        front_objectives[island, row] = result.objectives[row]
                    front_counts[island] = count
                    stats[island] = result.evaluations

                return task

            run_forked(
                [make_task(island) for island in range(islands)],
                label="affinity-ga island",
            )
            fronts = []
            for island in range(islands):
                count = int(front_counts[island])
                fronts.append(
                    [
                        (
                            [int(v) for v in front_plans[island, row]],
                            (
                                float(front_objectives[island, row, 0]),
                                float(front_objectives[island, row, 1]),
                            ),
                        )
                        for row in range(count)
                    ]
                )
            evaluations = int(stats.sum())
        finally:
            front_plans = front_objectives = front_counts = stats = None
            channels.release()
        merged = merge_fronts(fronts, key=lambda item: item[1])
        return AffinityNSGA2Result(
            plans=[
                MigrationPlan.from_vector(components, vector) for vector, _obj in merged
            ],
            objectives=[objective for _vector, objective in merged],
            evaluations=evaluations,
        )

    def _recommend_serial(self) -> AffinityNSGA2Result:
        components = self.context.components
        population = [self._random_vector() for _ in range(self.population_size)]
        objectives = self._objectives_batch(population)
        offspring_count = max(self.population_size // 2, 2)
        while self._evaluations < self.evaluation_budget:
            ranked = rank_population(objectives)
            pairs = tournament_pairs(ranked, offspring_count, self._rng)
            offspring: List[List[int]] = []
            for idx_a, idx_b in pairs:
                child = uniform_crossover(population[idx_a], population[idx_b], self._rng)
                child = bitflip_mutation(
                    child, self._rng, self.mutation_rate, locations=self.context.locations
                )
                offspring.append(self._apply_pins(child))
            offspring_objectives = self._objectives_batch(offspring)
            combined = population + offspring
            combined_objectives = objectives + offspring_objectives
            survivors = survival_selection(combined_objectives, self.population_size)
            population = [combined[i] for i in survivors]
            objectives = [combined_objectives[i] for i in survivors]
        keep = self.context.evaluator.feasible_mask(population, components)
        feasible = [
            (vector, objective)
            for vector, objective, ok in zip(population, objectives, keep)
            if ok
        ]
        front = pareto_front(feasible, key=lambda item: item[1])
        return AffinityNSGA2Result(
            plans=[
                MigrationPlan.from_vector(components, vector) for vector, _obj in front
            ],
            objectives=[obj for _vector, obj in front],
            evaluations=self._evaluations,
        )


class RandomSearchBaseline:
    """Uniformly random plans; the Pareto set under Atlas's quality model is returned."""

    name = "random-search"

    def __init__(
        self,
        context: BaselineContext,
        evaluation_budget: int = 10_000,
        seed: int = 0,
        workers: int = 1,
    ) -> None:
        self.context = context
        self.evaluation_budget = evaluation_budget
        self.seed = int(seed)
        #: Parallelism over the same forked worker pool as AtlasGA(islands=W): W > 1
        #: shards the sampling budget across W processes scoring against shared
        #: memory; W = 1 is the serial path, byte-identical to the historical runs.
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self._rng = np.random.default_rng(seed)

    def recommend(self) -> List[PlanQuality]:
        """Run the search: serially, or the budget sharded over forked workers."""
        if self.workers > 1:
            return self._recommend_parallel()
        return self._recommend_serial()

    def _recommend_parallel(self) -> List[PlanQuality]:
        from .parallel import ShmArena, derive_seed, run_forked

        evaluator = self.context.evaluator
        components = self.context.components
        workers = self.workers
        shares = [
            self.evaluation_budget // workers
            + (1 if worker < self.evaluation_budget % workers else 0)
            for worker in range(workers)
        ]
        # Export the compiled evaluation state before forking, so the workers'
        # feasible_mask/evaluate_vectors passes score against shared pages.
        evaluator.share_memory(n_locations=max(self.context.locations) + 1)
        n_genes = len(components)
        capacity = max(max(shares), 1)  # a worker's front is a subset of its sample
        channels = ShmArena(chunk_bytes=1 << 20)
        try:
            front_plans = channels.empty((workers, capacity, n_genes), np.int64)
            front_counts = channels.empty((workers,), np.int64)
            front_counts[:] = 0

            def make_task(worker: int):
                def task() -> None:
                    shard = RandomSearchBaseline(
                        self.context,
                        evaluation_budget=shares[worker],
                        seed=derive_seed(self.seed, worker),
                    )
                    front = shard._recommend_serial()
                    count = min(len(front), capacity)
                    for row, quality in enumerate(front[:count]):
                        front_plans[worker, row] = np.asarray(
                            quality.plan.to_vector(), dtype=np.int64
                        )
                    front_counts[worker] = count

                return task

            run_forked(
                [make_task(worker) for worker in range(workers)],
                label="random-search worker",
            )
            # Re-score the per-worker fronts through the parent evaluator (bitwise
            # identical models; fills the parent-side result cache) and merge.
            fronts = []
            for worker in range(workers):
                count = int(front_counts[worker])
                vectors = [
                    [int(v) for v in row] for row in front_plans[worker, :count]
                ]
                fronts.append(
                    evaluator.evaluate_vectors(vectors, components) if vectors else []
                )
        finally:
            front_plans = front_counts = None
            channels.release()
        return merge_fronts(fronts, key=lambda q: q.objectives())

    def _recommend_serial(self) -> List[PlanQuality]:
        components = self.context.components
        pins = self.context.evaluator.preferences.pinned_placement
        pin_columns = [
            (components.index(component), location)
            for component, location in pins.items()
        ]
        n = len(components)
        vectors: List[List[int]] = []
        for _ in range(self.evaluation_budget):
            if self.context.is_binary:
                vector = [
                    int(v)
                    for v in (self._rng.random(n) < self._rng.uniform(0.1, 0.9)).astype(int)
                ]
            else:
                offload_prob = self._rng.uniform(0.1, 0.9)
                vector = _random_location_vector(self._rng, n, offload_prob, self.context)
            for column, location in pin_columns:
                vector[column] = location
            vectors.append(vector)
        # One batched feasibility mask over the whole sample, then one batched
        # evaluation of the feasible vectors: dedup + projection caching + vectorized
        # replay/cost/constraint passes instead of per-plan tree walks.
        keep = self.context.evaluator.feasible_mask(vectors, components)
        feasible_vectors = [vector for vector, ok in zip(vectors, keep) if ok]
        feasible = self.context.evaluator.evaluate_vectors(feasible_vectors, components)
        return pareto_front(feasible, key=lambda q: q.objectives())
