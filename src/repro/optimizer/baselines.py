"""Baseline migration strategies the paper compares Atlas against (Section 5.2).

Single-plan approaches:

* :class:`GreedyBusiestBaseline` / :class:`GreedySmallestBaseline` — offload the most /
  least resource-consuming components until the on-prem cluster can host the rest
  (Seagull-style cloud bursting [45]).
* :class:`IntMABaseline` — offload components so that the total traffic size between
  datacenters is minimized (interaction-aware placement [57]).
* :class:`REMaPBaseline` — like IntMA but the affinity combines traffic size and the
  number of message exchanges [68].

Multi-plan approaches:

* :class:`AffinityNSGA2Baseline` — NSGA-II with two objectives: cross-datacenter
  traffic (a proxy for performance) and cloud hosting cost (same cost model as Atlas);
  representative of [29, 39, 44, 47, 53].
* :class:`RandomSearchBaseline` — uniformly random feasible plans, keeping the Pareto
  set under Atlas's own quality model.

All baselines honour the owner's pinned placements and use the same resource estimate
for feasibility, so the comparison isolates the placement *policy*.

On N-location topologies (``BaselineContext.locations``) the single-plan heuristics —
which are inherently two-sided "keep or offload" policies — offload to the *primary*
remote site, while the affinity GA and random search sample every site; the
two-location default reproduces the paper's baselines bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.placement import MigrationPlan
from ..cluster.topology import CLOUD, ON_PREM
from ..quality.evaluator import PlanQuality, QualityEvaluator
from .nsga2 import (
    bitflip_mutation,
    random_location_vector,
    rank_population,
    survival_selection,
    tournament_pairs,
    uniform_crossover,
)
from .pareto import pareto_front

__all__ = [
    "BaselineContext",
    "GreedyBusiestBaseline",
    "GreedySmallestBaseline",
    "IntMABaseline",
    "REMaPBaseline",
    "AffinityNSGA2Baseline",
    "RandomSearchBaseline",
]

Pair = Tuple[str, str]


def _random_location_vector(
    rng: np.random.Generator, n: int, offload_prob: float, context: "BaselineContext"
) -> List[int]:
    """Uniform random location vector; offloaded genes pick a remote site uniformly.

    The two-location path keeps the exact RNG consumption of the original bit-vector
    sampling so fixed-seed baseline runs reproduce pre-N-location results bit-for-bit;
    N > 2 delegates to the sampler shared with the Atlas GA.
    """
    if context.is_binary:
        return [int(v) for v in (rng.random(n) < offload_prob).astype(int)]
    return random_location_vector(rng, n, offload_prob, context.locations)


@dataclass
class BaselineContext:
    """Shared inputs of all baselines.

    ``traffic_matrix`` and ``message_matrix`` come from the mesh telemetry (total bytes
    and invocation counts per directed component pair); ``busyness`` is the mean CPU of
    each component from the component profiles; ``evaluator`` provides feasibility
    checking (on-prem limits, pins) against the same resource estimate Atlas uses.
    ``locations`` is the topology's location-id set — the greedy/affinity heuristics
    offload to the *primary* remote site (they are inherently two-sided policies), while
    the GA and random-search baselines sample every site.
    """

    components: List[str]
    evaluator: QualityEvaluator
    traffic_matrix: Dict[Pair, float]
    message_matrix: Dict[Pair, float] = field(default_factory=dict)
    busyness: Dict[str, float] = field(default_factory=dict)
    locations: Tuple[int, ...] = (ON_PREM, CLOUD)

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("baseline context needs at least one component")
        self.locations = tuple(int(loc) for loc in self.locations)
        if ON_PREM not in self.locations or len(self.locations) < 2:
            raise ValueError("locations must include on-prem and at least one remote site")

    # -- helpers -------------------------------------------------------------------------
    @property
    def movable_components(self) -> List[str]:
        pinned = self.evaluator.preferences.pinned_placement
        return [c for c in self.components if c not in pinned]

    @property
    def remote_locations(self) -> Tuple[int, ...]:
        return tuple(loc for loc in self.locations if loc != ON_PREM)

    @property
    def primary_remote(self) -> int:
        """The remote site the single-plan heuristics offload to (the paper's cloud)."""
        return self.remote_locations[0]

    @property
    def is_binary(self) -> bool:
        """True for the paper's exact two-location topology (ids 0 and 1)."""
        return self.locations == (ON_PREM, CLOUD)

    def all_on_prem(self) -> MigrationPlan:
        plan = MigrationPlan.all_on_prem(self.components)
        pins = self.evaluator.preferences.pinned_placement
        return plan.with_pinned(pins) if pins else plan

    def feasible(self, plan: MigrationPlan) -> bool:
        return self.evaluator.is_feasible(plan)

    def cross_dc_affinity(
        self, plan: MigrationPlan, message_weight: float = 0.0
    ) -> float:
        """Affinity (bytes + optional message count) crossing the datacenter boundary."""
        total = 0.0
        for (src, dst), traffic in self.traffic_matrix.items():
            if src not in plan or dst not in plan:
                continue
            if plan[src] != plan[dst]:
                total += traffic
                if message_weight > 0.0:
                    total += message_weight * self.message_matrix.get((src, dst), 0.0)
        return total


class _GreedyBaseline:
    """Offload components in a fixed busyness order until the plan becomes feasible."""

    #: True = offload the busiest first, False = the least busy first.
    descending = True
    name = "greedy"

    def __init__(self, context: BaselineContext) -> None:
        self.context = context

    def recommend(self) -> MigrationPlan:
        plan = self.context.all_on_prem()
        if self.context.feasible(plan):
            return plan
        order = sorted(
            self.context.movable_components,
            key=lambda c: self.context.busyness.get(c, 0.0),
            reverse=self.descending,
        )
        target = self.context.primary_remote
        for component in order:
            plan = plan.with_location(component, target)
            if self.context.feasible(plan):
                return plan
        return plan  # Best effort: everything movable is offloaded.


class GreedyBusiestBaseline(_GreedyBaseline):
    """Offload the largest (most CPU-consuming) components first [45]."""

    descending = True
    name = "greedy-largest"


class GreedySmallestBaseline(_GreedyBaseline):
    """Offload the smallest (least CPU-consuming) components first."""

    descending = False
    name = "greedy-smallest"


class _AffinityHeuristicBaseline:
    """Greedy affinity minimization with a local-improvement pass (REMaP / IntMA)."""

    message_weight = 0.0
    name = "affinity"

    def __init__(self, context: BaselineContext, improvement_passes: int = 2) -> None:
        self.context = context
        self.improvement_passes = improvement_passes

    def recommend(self) -> MigrationPlan:
        plan = self.context.all_on_prem()
        movable = set(self.context.movable_components)
        target = self.context.primary_remote
        # Phase 1: offload until feasible, each step picking the component whose move
        # yields the smallest cross-datacenter affinity.
        guard = len(self.context.components) + 1
        while not self.context.feasible(plan) and guard > 0:
            guard -= 1
            candidates = [c for c in movable if plan[c] == ON_PREM]
            if not candidates:
                break
            best = min(
                candidates,
                key=lambda c: self.context.cross_dc_affinity(
                    plan.with_location(c, target), self.message_weight
                ),
            )
            plan = plan.with_location(best, target)
        # Phase 2: hill climbing on single flips that reduce affinity while staying feasible.
        for _ in range(self.improvement_passes):
            improved = False
            current_affinity = self.context.cross_dc_affinity(plan, self.message_weight)
            for component in sorted(movable):
                flipped = plan.with_location(
                    component, target if plan[component] == ON_PREM else ON_PREM
                )
                if not self.context.feasible(flipped):
                    continue
                affinity = self.context.cross_dc_affinity(flipped, self.message_weight)
                if affinity < current_affinity:
                    plan, current_affinity = flipped, affinity
                    improved = True
            if not improved:
                break
        return plan


class IntMABaseline(_AffinityHeuristicBaseline):
    """Interaction-aware placement minimizing cross-datacenter traffic size [57]."""

    message_weight = 0.0
    name = "intma"


class REMaPBaseline(_AffinityHeuristicBaseline):
    """Runtime placement adaptation minimizing traffic size and message exchanges [68]."""

    #: Bytes-equivalent weight of one message exchange (REMaP counts both signals).
    message_weight = 256.0
    name = "remap"


@dataclass
class AffinityNSGA2Result:
    """Plans found by the affinity-based GA, with its internal objective values."""

    plans: List[MigrationPlan]
    objectives: List[Tuple[float, float]]
    evaluations: int


class AffinityNSGA2Baseline:
    """NSGA-II over (cross-DC traffic, cloud cost) with random crossover.

    The cost objective reuses Atlas's cost model (as the paper does for fairness); the
    performance proxy is the total traffic between datacenters, i.e. the baseline has no
    notion of API workflows.
    """

    name = "affinity-ga"

    def __init__(
        self,
        context: BaselineContext,
        population_size: int = 100,
        evaluation_budget: int = 10_000,
        mutation_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.context = context
        self.population_size = population_size
        self.evaluation_budget = evaluation_budget
        self.mutation_rate = mutation_rate
        self._rng = np.random.default_rng(seed)
        self._evaluations = 0

    # -- objectives -----------------------------------------------------------------------
    def _objectives(self, plan: MigrationPlan) -> Tuple[float, float]:
        self._evaluations += 1
        traffic = self.context.cross_dc_affinity(plan)
        cost = self.context.evaluator.cost.qcost(plan)
        if not self.context.feasible(plan):
            penalty = 1e12
            return (traffic + penalty, cost + penalty)
        return (traffic, cost)

    def _random_plan(self) -> MigrationPlan:
        offload_prob = self._rng.uniform(0.15, 0.7)
        vector = _random_location_vector(
            self._rng, len(self.context.components), offload_prob, self.context
        )
        plan = MigrationPlan.from_vector(self.context.components, vector)
        pins = self.context.evaluator.preferences.pinned_placement
        return plan.with_pinned(pins) if pins else plan

    def recommend(self) -> AffinityNSGA2Result:
        pins = self.context.evaluator.preferences.pinned_placement
        population = [self._random_plan() for _ in range(self.population_size)]
        objectives = [self._objectives(p) for p in population]
        offspring_count = max(self.population_size // 2, 2)
        while self._evaluations < self.evaluation_budget:
            ranked = rank_population(objectives)
            pairs = tournament_pairs(ranked, offspring_count, self._rng)
            offspring: List[MigrationPlan] = []
            for idx_a, idx_b in pairs:
                child = uniform_crossover(
                    population[idx_a].to_vector(), population[idx_b].to_vector(), self._rng
                )
                child = bitflip_mutation(
                    child, self._rng, self.mutation_rate, locations=self.context.locations
                )
                plan = MigrationPlan.from_vector(self.context.components, child)
                if pins:
                    plan = plan.with_pinned(pins)
                offspring.append(plan)
            offspring_objectives = [self._objectives(p) for p in offspring]
            combined = population + offspring
            combined_objectives = objectives + offspring_objectives
            survivors = survival_selection(combined_objectives, self.population_size)
            population = [combined[i] for i in survivors]
            objectives = [combined_objectives[i] for i in survivors]
        feasible = [
            (plan, obj)
            for plan, obj in zip(population, objectives)
            if self.context.feasible(plan)
        ]
        front = pareto_front(feasible, key=lambda item: item[1])
        return AffinityNSGA2Result(
            plans=[plan for plan, _obj in front],
            objectives=[obj for _plan, obj in front],
            evaluations=self._evaluations,
        )


class RandomSearchBaseline:
    """Uniformly random plans; the Pareto set under Atlas's quality model is returned."""

    name = "random-search"

    def __init__(
        self,
        context: BaselineContext,
        evaluation_budget: int = 10_000,
        seed: int = 0,
    ) -> None:
        self.context = context
        self.evaluation_budget = evaluation_budget
        self._rng = np.random.default_rng(seed)

    def recommend(self) -> List[PlanQuality]:
        pins = self.context.evaluator.preferences.pinned_placement
        feasible_plans: List[MigrationPlan] = []
        n = len(self.context.components)
        for _ in range(self.evaluation_budget):
            if self.context.is_binary:
                vector = [
                    int(v)
                    for v in (self._rng.random(n) < self._rng.uniform(0.1, 0.9)).astype(int)
                ]
            else:
                offload_prob = self._rng.uniform(0.1, 0.9)
                vector = _random_location_vector(self._rng, n, offload_prob, self.context)
            plan = MigrationPlan.from_vector(self.context.components, vector)
            if pins:
                plan = plan.with_pinned(pins)
            if self.context.feasible(plan):
                feasible_plans.append(plan)
        # One batched evaluation for the whole feasible sample: dedup + projection
        # caching + vectorized replay in the evaluator instead of per-plan tree walks.
        feasible = self.context.evaluator.evaluate_batch(feasible_plans)
        return pareto_front(feasible, key=lambda q: q.objectives())
