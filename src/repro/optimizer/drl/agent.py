"""DRL crossover agent (Section 4.2.1), generalized to N locations.

The agent Λ_θ takes the location vectors of two parent plans and outputs a
per-component placement distribution; sampling from it produces the offspring plan
(the stochasticity plays the role of GA mutation).  The quality indicators are
non-differentiable, so the agent is trained with a reward-driven actor–critic scheme:
the reward (Eq. 5) is positive only for feasible children and grows with the number of
quality aspects in which the child beats *both* parents; the critic provides a
per-state baseline so the policy gradient has low variance.

**Action space.**  In the paper's two-location setup the actor is a sigmoid head over
``n_components`` outputs — the per-component probability of placing the component in
the cloud.  With N > 2 locations (``locations=(0, 1, 2, ...)``) the actor instead
emits ``n_components x n_locations`` logits, a per-component softmax turns them into a
categorical placement distribution, and parents are one-hot encoded by location.  The
two-location path is kept byte-for-byte identical to the original binary agent
(same architecture, same RNG consumption), so fixed-seed searches reproduce exactly.

Implementation note — reward for infeasible children: Eq. 5 multiplies the aspect count
by ``(-1)^(1-λ)``, which yields exactly 0 for an infeasible child that beats its parents
in no aspect.  We floor the infeasible reward at -1 so that infeasibility always carries
a negative signal; this matches the paper's description ("negates the reward if the plan
does not satisfy all constraints") and its Figure 21b, where early rewards are
consistently below zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..nsga2 import allowed_repair_targets, apply_allowed_repair
from .mlp import MLP, AdamOptimizer

__all__ = ["CrossoverAgent", "RewardFunction", "TrainingHistory"]

#: reward_fn(child_vector, parent_a_vector, parent_b_vector) -> float
RewardFunction = Callable[[Sequence[int], Sequence[int], Sequence[int]], float]

_PROB_CLIP = 1e-6


@dataclass
class TrainingHistory:
    """Per-iteration statistics of agent training (drives Figure 21b)."""

    mean_rewards: List[float] = field(default_factory=list)
    feasible_fractions: List[float] = field(default_factory=list)

    def smoothed_rewards(self, window: int = 20) -> List[float]:
        """Moving average of the reward curve (what the paper plots)."""
        if window <= 1 or not self.mean_rewards:
            return list(self.mean_rewards)
        out: List[float] = []
        for i in range(len(self.mean_rewards)):
            lo = max(0, i - window + 1)
            out.append(float(np.mean(self.mean_rewards[lo : i + 1])))
        return out


class CrossoverAgent:
    """Actor–critic agent producing offspring plans from parent pairs."""

    def __init__(
        self,
        n_components: int,
        hidden_dims: Sequence[int] = (128, 128, 128),
        learning_rate: float = 1e-3,
        critic_learning_rate: float = 2e-3,
        pinned: Optional[Mapping[int, int]] = None,
        seed: int = 0,
        locations: Sequence[int] = (0, 1),
        allowed: Optional[Mapping[int, Sequence[int]]] = None,
    ) -> None:
        """``allowed`` maps component indices to their location whitelist: offspring
        genes sampled at a disallowed site are deterministically repaired to the
        component's first permitted remote location (or on-prem when none is), after
        pins are applied — RNG consumption is untouched, so agents without
        whitelists behave byte-for-byte as before."""
        if n_components <= 0:
            raise ValueError("n_components must be positive")
        self.n_components = n_components
        self.pinned = dict(pinned or {})
        self.allowed: Dict[int, Tuple[int, ...]] = {
            int(index): tuple(int(loc) for loc in permitted)
            for index, permitted in (allowed or {}).items()
        }
        self.locations: Tuple[int, ...] = tuple(int(loc) for loc in locations)
        if len(self.locations) < 2:
            raise ValueError("the agent needs at least two locations to choose from")
        if len(set(self.locations)) != len(self.locations):
            raise ValueError("locations must be unique")
        self.n_locations = len(self.locations)
        #: The paper's binary agent: sigmoid head, raw 0/1 parent encoding.  Any other
        #: location set switches to the categorical (softmax) action space.
        self._binary = self.locations == (0, 1)
        self._loc_index: Dict[int, int] = {loc: i for i, loc in enumerate(self.locations)}
        if not self._binary:
            # The categorical agent one-hot encodes parent vectors, so every pinned
            # location must be a member of the action space (the binary agent encodes
            # raw ids and historically tolerated out-of-set pins).
            invalid = sorted(
                {int(loc) for loc in self.pinned.values()} - set(self.locations)
            )
            if invalid:
                raise ValueError(
                    f"pinned locations {invalid} are outside the agent's location set "
                    f"{self.locations}"
                )
        # Deterministic whitelist repair map shared with the Atlas GA.
        self._allowed_repair = allowed_repair_targets(self.allowed, self.locations)
        if self._binary:
            self.actor = MLP(
                2 * n_components, hidden_dims, n_components, head="sigmoid", seed=seed
            )
            self.critic = MLP(2 * n_components, hidden_dims[:2], 1, head="linear", seed=seed + 1)
        else:
            state_dim = 2 * n_components * self.n_locations
            self.actor = MLP(
                state_dim, hidden_dims, n_components * self.n_locations,
                head="linear", seed=seed,
            )
            self.critic = MLP(state_dim, hidden_dims[:2], 1, head="linear", seed=seed + 1)
        self._actor_opt = AdamOptimizer(learning_rate=learning_rate)
        self._critic_opt = AdamOptimizer(learning_rate=critic_learning_rate)
        self._rng = np.random.default_rng(seed)
        self.history = TrainingHistory()

    # -- inference -------------------------------------------------------------------------
    def state(self, parent_a: Sequence[int], parent_b: Sequence[int]) -> np.ndarray:
        if len(parent_a) != self.n_components or len(parent_b) != self.n_components:
            raise ValueError("parent vectors must match the component count")
        if self._binary:
            return np.concatenate(
                [np.asarray(parent_a, dtype=float), np.asarray(parent_b, dtype=float)]
            )
        return np.concatenate([self._one_hot(parent_a), self._one_hot(parent_b)])

    def _one_hot(self, vector: Sequence[int]) -> np.ndarray:
        encoded = np.zeros(self.n_components * self.n_locations, dtype=float)
        for component, location in enumerate(vector):
            encoded[component * self.n_locations + self._loc_index[int(location)]] = 1.0
        return encoded

    def child_probabilities(
        self, parent_a: Sequence[int], parent_b: Sequence[int]
    ) -> np.ndarray:
        """Placement distribution for each component.

        Binary agent: shape ``(n_components,)`` — probability of the cloud (location 1).
        N-location agent: shape ``(n_components, n_locations)`` — a categorical
        distribution over ``self.locations`` per component.
        """
        out = self.actor(self.state(parent_a, parent_b))[0]
        if self._binary:
            return np.clip(out, _PROB_CLIP, 1.0 - _PROB_CLIP)
        return self._softmax(out.reshape(self.n_components, self.n_locations))

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=-1, keepdims=True)
        return np.clip(probs, _PROB_CLIP, None)

    def _sample_categorical(
        self, probs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One location *index* per component from per-component distributions."""
        cumulative = np.cumsum(probs, axis=1)
        cumulative[:, -1] = np.maximum(cumulative[:, -1], 1.0)
        draws = rng.random(self.n_components)
        return (draws[:, None] > cumulative).sum(axis=1)

    def crossover(
        self,
        parent_a: Sequence[int],
        parent_b: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> List[int]:
        """Sample an offspring plan; pinned components are masked to their location."""
        rng = rng or self._rng
        probs = self.child_probabilities(parent_a, parent_b)
        if self._binary:
            child = (rng.random(self.n_components) < probs).astype(int)
        else:
            indices = self._sample_categorical(probs, rng)
            child = np.asarray([self.locations[int(i)] for i in indices], dtype=int)
        self._apply_constraints(child)
        return [int(v) for v in child]

    def _apply_constraints(self, child: np.ndarray) -> None:
        """Pin forced genes, then repair any whitelist-violating draw (no RNG)."""
        for index, location in self.pinned.items():
            child[index] = location
        apply_allowed_repair(child, self._allowed_repair)

    # -- training --------------------------------------------------------------------------
    def train(
        self,
        parent_pairs: Sequence[Tuple[Sequence[int], Sequence[int]]],
        reward_fn: RewardFunction,
        iterations: int = 1_000,
        batch_size: int = 4,
    ) -> TrainingHistory:
        """Train the agent on a dataset ``D`` of parent pairs with the given reward."""
        if not parent_pairs:
            raise ValueError("training requires at least one parent pair")
        if iterations <= 0 or batch_size <= 0:
            raise ValueError("iterations and batch_size must be positive")
        for _ in range(iterations):
            batch_rewards: List[float] = []
            feasible = 0
            actor_grads = None
            critic_grads = None
            for _ in range(batch_size):
                idx = int(self._rng.integers(0, len(parent_pairs)))
                parent_a, parent_b = parent_pairs[idx]
                state = self.state(parent_a, parent_b)
                out, actor_cache = self.actor.forward(state, keep_cache=True)
                if self._binary:
                    probs = np.clip(out, _PROB_CLIP, 1.0 - _PROB_CLIP)
                    child = (self._rng.random(self.n_components) < probs[0]).astype(int)
                else:
                    probs = self._softmax(
                        out[0].reshape(self.n_components, self.n_locations)
                    )
                    indices = self._sample_categorical(probs, self._rng)
                    child = np.asarray(
                        [self.locations[int(i)] for i in indices], dtype=int
                    )
                self._apply_constraints(child)
                reward = float(reward_fn([int(v) for v in child], parent_a, parent_b))
                batch_rewards.append(reward)
                if reward > 0:
                    feasible += 1

                value, critic_cache = self.critic.forward(state, keep_cache=True)
                advantage = reward - float(value[0, 0])

                # Policy gradient: minimize -advantage * log π(child | state).
                if self._binary:
                    dlogpi_dp = child / probs[0] - (1 - child) / (1 - probs[0])
                    actor_grad_out = (-advantage * dlogpi_dp / batch_size)[None, :]
                else:
                    # Softmax policy: d log π / d logits = onehot(child) - probs.
                    chosen = np.zeros_like(probs)
                    chosen[
                        np.arange(self.n_components),
                        [self._loc_index[int(v)] for v in child],
                    ] = 1.0
                    dlogpi_dlogits = (chosen - probs).reshape(1, -1)
                    actor_grad_out = -advantage * dlogpi_dlogits / batch_size
                grads_a = self.actor.backward(actor_cache, actor_grad_out)
                # Critic: minimize (value - reward)^2.
                critic_grad_out = np.array([[2.0 * (float(value[0, 0]) - reward) / batch_size]])
                grads_c = self.critic.backward(critic_cache, critic_grad_out)

                actor_grads = self._accumulate(actor_grads, grads_a)
                critic_grads = self._accumulate(critic_grads, grads_c)

            self.actor.apply_gradients(actor_grads, self._actor_opt)
            self.critic.apply_gradients(critic_grads, self._critic_opt)
            self.history.mean_rewards.append(float(np.mean(batch_rewards)))
            self.history.feasible_fractions.append(feasible / batch_size)
        return self.history

    @staticmethod
    def _accumulate(
        total: Optional[List[Tuple[np.ndarray, np.ndarray]]],
        grads: List[Tuple[np.ndarray, np.ndarray]],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        if total is None:
            return [(gw.copy(), gb.copy()) for gw, gb in grads]
        return [(tw + gw, tb + gb) for (tw, tb), (gw, gb) in zip(total, grads)]
