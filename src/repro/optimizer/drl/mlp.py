"""Minimal NumPy multilayer perceptron with Adam — the function approximator behind the
DRL crossover agent.

The paper trains its actor network (three ReLU layers with 128 hidden units) with
PyTorch; no deep-learning framework is available offline, so this module provides the
small amount of machinery actually needed: a feed-forward MLP with manual
backpropagation and an Adam optimizer.  It is deliberately general (arbitrary layer
sizes, linear or sigmoid heads) so the actor and the critic share the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MLP", "AdamOptimizer"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class MLP:
    """Fully connected network with ReLU hidden layers.

    ``head`` selects the output nonlinearity: ``"sigmoid"`` for per-gene probabilities
    (actor) or ``"linear"`` for value regression (critic).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        output_dim: int,
        head: str = "linear",
        seed: int = 0,
    ) -> None:
        if input_dim <= 0 or output_dim <= 0:
            raise ValueError("input and output dimensions must be positive")
        if head not in ("linear", "sigmoid"):
            raise ValueError("head must be 'linear' or 'sigmoid'")
        self.head = head
        rng = np.random.default_rng(seed)
        dims = [input_dim, *hidden_dims, output_dim]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # -- forward --------------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, keep_cache: bool = False
    ) -> Tuple[np.ndarray, Optional[List[np.ndarray]]]:
        """Forward pass; optionally returns the per-layer activations for backprop."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        activations = [x]
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            if i < last:
                h = _relu(z)
            else:
                h = _sigmoid(z) if self.head == "sigmoid" else z
            activations.append(h)
        return h, (activations if keep_cache else None)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out, _ = self.forward(x)
        return out

    # -- backward -------------------------------------------------------------------------
    def backward(
        self, activations: List[np.ndarray], output_grad: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Gradients of a scalar loss w.r.t. all parameters.

        ``output_grad`` must already be the gradient of the loss w.r.t. the network
        *output* (post-head).  For the sigmoid head the caller typically passes
        ``d loss / d probability``; the head derivative is applied here.
        """
        grads: List[Tuple[np.ndarray, np.ndarray]] = [None] * len(self.weights)  # type: ignore
        delta = np.atleast_2d(output_grad).astype(float)
        last = len(self.weights) - 1
        if self.head == "sigmoid":
            out = activations[-1]
            delta = delta * out * (1.0 - out)
        for i in range(last, -1, -1):
            a_prev = activations[i]
            grads[i] = (a_prev.T @ delta, delta.sum(axis=0))
            if i > 0:
                delta = delta @ self.weights[i].T
                delta = delta * (activations[i] > 0.0)
        return grads

    # -- parameter access ------------------------------------------------------------------
    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            params.extend((w, b))
        return params

    def apply_gradients(
        self, grads: Sequence[Tuple[np.ndarray, np.ndarray]], optimizer: "AdamOptimizer"
    ) -> None:
        flat: List[np.ndarray] = []
        for gw, gb in grads:
            flat.extend((gw, gb))
        optimizer.step(self.parameters(), flat)


@dataclass
class AdamOptimizer:
    """Adam [Kingma & Ba 2014], operating in place on a list of parameter arrays."""

    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    _m: List[np.ndarray] = field(default_factory=list)
    _v: List[np.ndarray] = field(default_factory=list)
    _t: int = 0

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("parameter and gradient lists must align")
        if not self._m:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        lr_t = self.learning_rate * np.sqrt(1 - self.beta2**self._t) / (1 - self.beta1**self._t)
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            p -= lr_t * m / (np.sqrt(v) + self.epsilon)
