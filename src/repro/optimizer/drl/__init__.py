"""Deep reinforcement learning crossover: NumPy MLP + actor-critic agent."""

from .agent import CrossoverAgent, TrainingHistory
from .mlp import MLP, AdamOptimizer

__all__ = ["MLP", "AdamOptimizer", "CrossoverAgent", "TrainingHistory"]
