"""Island-model parallel search over shared-memory plan matrices.

The GA population is sharded into W independent subpopulations ("islands"), each
running the unmodified serial loop of :class:`~repro.optimizer.atlas_ga.AtlasGA` in a
forked worker process.  The heavy read-only state — the compiled trace arrays, the
per-API Δ lookup tables and the scenario views' flat numpy state — is exported into
``multiprocessing.shared_memory`` *before* the fork (see
:meth:`~repro.quality.evaluator.QualityEvaluator.share_memory`), so every worker
scores candidate plans through ``QualityEvaluator.evaluate_vectors`` against
physically shared pages: no plan, trace or model is ever pickled.

Cross-island communication also goes through shared memory:

* **Migration** — every ``migration_period`` generations the islands meet at a
  barrier and exchange their top ``migration_elites`` plans on a fixed ring
  (island *i* receives from island *(i-1) mod W*).  The schedule is a fixed number
  of epochs computed up front (``max_generations // migration_period``); an island
  whose budget runs out keeps participating with its current elites until the last
  epoch, so the barriers can never deadlock on uneven progress.
* **Results** — each island writes its final Pareto-front plan matrix plus its
  evaluation/generation counters into a per-island result slot; the parent
  re-scores the union through its *own* evaluator (bitwise-identical models, and it
  fills the parent-side cache that scenario reporting reads) and merges the
  per-island fronts with the K-dim :func:`~repro.optimizer.pareto.merge_fronts`.

Determinism contract: a run is a pure function of ``(seed, islands,
migration_period, migration_elites)`` — island seeds and budget shares are derived
deterministically, migration happens at fixed generations with deterministically
selected elites, and the merge iterates islands in ring order.  ``islands=1``
never enters this module: :meth:`AtlasGA.run` dispatches straight to the serial
path, which the golden-fingerprint suite pins byte-for-byte.

Crash safety: workers exit non-zero on any exception (including barrier timeouts),
and the parent's poll loop terminates the remaining workers and raises
:class:`ParallelSearchError` instead of hanging.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..quality.compiled import ShmArena
from .nsga2 import survival_selection
from .pareto import merge_fronts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .atlas_ga import AtlasGA, GAConfig, SearchResult

__all__ = [
    "ParallelSearchError",
    "ShmArena",
    "run_forked",
    "derive_island_config",
    "derive_seed",
    "run_island_search",
]

#: Deterministic per-worker seed stride (a prime, so derived streams never collide
#: with the common "seed, seed+1, ..." experiment sweeps).
SEED_STRIDE = 7919

#: How long one island waits at a migration barrier before declaring the fleet
#: dead (a sibling crashed or hung) and exiting non-zero.
BARRIER_TIMEOUT_S = 300.0

#: Parent-side poll interval while waiting for the workers.
_POLL_INTERVAL_S = 0.05


class ParallelSearchError(RuntimeError):
    """A parallel search could not start or a worker died mid-run."""


def _entry(task: Callable[[], None]) -> None:
    """Worker process entry point: run the task, exit 0/1, never return."""
    try:
        task()
    except BaseException:
        traceback.print_exc()
        os._exit(1)
    os._exit(0)


def require_fork() -> multiprocessing.context.BaseContext:
    """The fork start method (the only one that shares state without pickling)."""
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ParallelSearchError(
            "parallel search needs the 'fork' start method (unavailable on this "
            "platform); run with islands=1"
        )
    return multiprocessing.get_context("fork")


def run_forked(
    tasks: Sequence[Callable[[], None]],
    timeout: Optional[float] = None,
    label: str = "worker",
) -> None:
    """Run the tasks in forked processes; raise :class:`ParallelSearchError` on failure.

    The parent polls the fleet: the first worker observed dead with a non-zero
    exit code (crash, unhandled exception, or a signal kill) terminates the
    remaining workers immediately — a killed worker surfaces as a clean error,
    never as a hang.  ``timeout`` bounds the whole run.
    """
    ctx = require_fork()
    processes = [ctx.Process(target=_entry, args=(task,), daemon=True) for task in tasks]
    for process in processes:
        process.start()
    deadline = None if timeout is None else time.monotonic() + timeout

    def fail(reason: str) -> None:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)
        raise ParallelSearchError(reason)

    try:
        while True:
            alive = False
            for index, process in enumerate(processes):
                if process.is_alive():
                    alive = True
                    continue
                process.join()
                if process.exitcode != 0:
                    fail(
                        f"{label} {index} died with exit code {process.exitcode} "
                        f"(see its traceback on stderr)"
                    )
            if not alive:
                return
            if deadline is not None and time.monotonic() > deadline:
                fail(f"{label} pool timed out after {timeout:.0f}s")
            time.sleep(_POLL_INTERVAL_S)
    except BaseException:
        for process in processes:
            if process.is_alive():
                process.terminate()
        raise


def derive_seed(seed: int, worker: int) -> int:
    """The deterministic RNG seed of one worker/island."""
    return int(seed) + SEED_STRIDE * (int(worker) + 1)


def derive_island_config(
    config: "GAConfig", island: int, islands: int, base_evaluations: int = 0
) -> "GAConfig":
    """The per-island :class:`GAConfig`: sharded population/offspring/budget, derived seed.

    The evaluation budget is an *absolute* evaluator-counter bound (the serial loop
    compares ``evaluator.evaluations < budget``), so each island's share is added
    on top of the counter value inherited at fork time.
    """
    if islands < 2:
        raise ValueError("derive_island_config needs islands >= 2")
    population = max(config.population_size // islands, 4)
    offspring = max(config.offspring_per_generation // islands, 2)
    immigrants = (
        -(-config.immigrants_per_generation // islands)
        if config.immigrants_per_generation > 0
        else 0
    )
    share = (config.evaluation_budget - base_evaluations) // islands
    if share <= population:
        raise ValueError(
            f"evaluation budget {config.evaluation_budget} is too small to shard "
            f"across {islands} islands of {population} plans each"
        )
    return replace(
        config,
        islands=1,
        population_size=population,
        offspring_per_generation=offspring,
        immigrants_per_generation=immigrants,
        evaluation_budget=base_evaluations + share,
        seed=derive_seed(config.seed, island),
    )


class _MigrationClient:
    """One island's end of the shared-memory elite-migration ring.

    ``after_generation`` runs at fixed generation numbers; ``drain`` keeps a
    finished island answering the remaining barrier epochs (contributing its
    current elites, discarding what it receives) so slower islands still get
    migrants and nobody deadlocks.
    """

    def __init__(
        self,
        island: int,
        islands: int,
        period: int,
        elites: int,
        total_epochs: int,
        plan_buffer: np.ndarray,
        counts: np.ndarray,
        barrier_a,
        barrier_b,
        timeout: float = BARRIER_TIMEOUT_S,
    ) -> None:
        self.island = island
        self.islands = islands
        self.period = period
        self.elites = elites
        self.total_epochs = total_epochs
        self._plans = plan_buffer
        self._counts = counts
        self._barrier_a = barrier_a
        self._barrier_b = barrier_b
        self._timeout = timeout
        self._epoch = 0
        self._pending: List[List[int]] = []

    def take_migrants(self) -> List[List[int]]:
        pending, self._pending = self._pending, []
        return pending

    def _exchange(self, population, qualities, collect: bool) -> None:
        from .atlas_ga import penalized_objectives

        objectives = [penalized_objectives(q) for q in qualities]
        elite_indices = survival_selection(objectives, min(self.elites, len(population)))
        count = len(elite_indices)
        self._counts[self.island] = count
        for row, index in enumerate(elite_indices):
            self._plans[self.island, row] = np.asarray(population[index], dtype=np.int64)
        self._barrier_a.wait(timeout=self._timeout)
        if collect:
            neighbour = (self.island - 1) % self.islands
            received = int(self._counts[neighbour])
            self._pending = [
                [int(v) for v in row] for row in self._plans[neighbour, :received]
            ]
        self._barrier_b.wait(timeout=self._timeout)
        self._epoch += 1

    def after_generation(self, generation: int, population, qualities) -> None:
        if self._epoch >= self.total_epochs or generation % self.period != 0:
            return
        self._exchange(population, qualities, collect=True)

    def drain(self, population, qualities) -> None:
        while self._epoch < self.total_epochs:
            self._exchange(population, qualities, collect=False)


def run_island_search(ga: "AtlasGA") -> "SearchResult":
    """Run one :class:`AtlasGA` search as ``ga.islands`` forked islands.

    The returned :class:`SearchResult` differs from the serial one only where the
    execution model forces it: ``pareto`` is the K-dim non-dominated merge of the
    per-island fronts (re-scored by the parent evaluator, so every quality carries
    full scenario breakdowns), ``evaluations`` sums the islands' budget spend,
    ``generations`` is the maximum island generation count, ``final_population``
    concatenates the island fronts, ``all_evaluated`` holds the re-scored union
    (shipping every island's full visit log would serialize the search again), and
    ``training_history`` is ``None`` (each island trains its own agent).
    """
    from .atlas_ga import AtlasGA, SearchResult

    start = time.perf_counter()
    ctx = require_fork()
    config = ga.config
    islands = ga.islands
    evaluator = ga.evaluator
    components = ga.components
    base_evaluations = evaluator.evaluations
    preexisting = evaluator.cache_size()
    derived = [
        derive_island_config(config, island, islands, base_evaluations)
        for island in range(islands)
    ]
    seed_shards = [list(ga.seed_vectors[island::islands]) for island in range(islands)]

    # Export the compiled evaluation state (trace arrays, Δ tables, scenario views)
    # into shared memory before forking, so worker pages are physically shared.
    evaluator.share_memory(n_locations=max(ga.locations) + 1)

    n_genes = len(components)
    capacity = max(
        max(island_config.population_size for island_config in derived),
        max((len(shard) for shard in seed_shards), default=0),
        1,
    )
    elites = max(int(config.migration_elites), 1)
    period = max(int(config.migration_period), 1)
    total_epochs = config.max_generations // period

    channels = ShmArena(chunk_bytes=1 << 20)
    try:
        migration_plans = channels.empty((islands, elites, n_genes), np.int64)
        migration_counts = channels.empty((islands,), np.int64)
        migration_counts[:] = 0
        result_plans = channels.empty((islands, capacity, n_genes), np.int64)
        result_counts = channels.empty((islands,), np.int64)
        result_counts[:] = 0
        result_stats = channels.empty((islands, 3), np.int64)
        result_stats[:] = 0
        barrier_a = ctx.Barrier(islands)
        barrier_b = ctx.Barrier(islands)

        def make_task(island: int) -> Callable[[], None]:
            def task() -> None:
                island_ga = AtlasGA(
                    evaluator,
                    components,
                    derived[island],
                    seed_vectors=seed_shards[island],
                    locations=ga.locations,
                )
                island_ga._migration = _MigrationClient(
                    island=island,
                    islands=islands,
                    period=period,
                    elites=elites,
                    total_epochs=total_epochs,
                    plan_buffer=migration_plans,
                    counts=migration_counts,
                    barrier_a=barrier_a,
                    barrier_b=barrier_b,
                )
                result = island_ga._run_serial()
                count = min(len(result.pareto), capacity)
                for row, quality in enumerate(result.pareto[:count]):
                    result_plans[island, row] = np.asarray(
                        quality.plan.to_vector(), dtype=np.int64
                    )
                result_counts[island] = count
                result_stats[island, 0] = result.evaluations - base_evaluations
                result_stats[island, 1] = result.generations
                result_stats[island, 2] = int(result.early_stopped)

            return task

        run_forked(
            [make_task(island) for island in range(islands)],
            label="island",
        )

        island_fronts: List[List] = []
        for island in range(islands):
            count = int(result_counts[island])
            vectors = [
                [int(v) for v in row] for row in result_plans[island, :count]
            ]
            island_fronts.append(
                evaluator.evaluate_vectors(vectors, components) if vectors else []
            )
        evaluations = base_evaluations + int(result_stats[:, 0].sum())
        generations = int(result_stats[:, 1].max())
        early_stopped = bool(result_stats[:, 2].any())
    finally:
        # Drop the local views before unmapping the channel segments.
        migration_plans = migration_counts = None
        result_plans = result_counts = result_stats = None
        channels.release()

    merged = merge_fronts(island_fronts, key=lambda q: q.objectives())
    merged.sort(key=lambda q: q.objectives())
    return SearchResult(
        pareto=merged,
        generations=generations,
        evaluations=evaluations,
        training_history=None,
        wall_clock_s=time.perf_counter() - start,
        all_evaluated=evaluator.evaluated_qualities()[preexisting:],
        final_population=[quality for front in island_fronts for quality in front],
        objective_names=evaluator.problem.objective_names,
        early_stopped=early_stopped,
    )
