"""Atlas's DRL-based genetic algorithm (Section 4.2.1, Figure 5 steps 1-5).

The search loop is a multi-objective GA built on NSGA-II machinery (non-dominated
sorting, crowding distance, binary tournament, elitist survival), but offspring are
produced by the trained :class:`~repro.optimizer.drl.agent.CrossoverAgent` instead of a
random crossover operator.  The agent is trained with the reward of Eq. 5 on a dataset
of parent pairs drawn from randomly sampled plans; at convergence it reliably produces
feasible children that beat their parents in several quality aspects, which accelerates
the evolution under a fixed budget of visited plans (10,000 in the paper, 0.0019% of the
social network's search space).

**N-location encoding.**  Chromosomes are integer *location vectors* — gene ``i`` holds
the location id of component ``i`` — not 0/1 bit vectors.  Pass ``locations`` (e.g.
``(0, 1, 2)`` for on-prem + two cloud regions) to search a multi-location topology:
random initialization spreads components over all remote sites, mutation flips genes to
any other location, and the memetic neighbourhood relocates components/pairs/API paths
to every site.  The default ``(ON_PREM, CLOUD)`` reproduces the paper's two-location
search bit-for-bit (identical RNG consumption, identical trajectories).

**K objectives.**  The loop is objective-count agnostic: NSGA-II ranking, the Deb
penalty, the elite local search (one sweep per objective of the evaluator's
:class:`~repro.quality.problem.PlacementProblem`) and the Eq. 5 reward (which counts
improved aspects over *all* K objectives) follow the problem's dimensionality, so a
K=4 problem widens the Pareto search with zero changes here.  The default
three-objective problem reproduces the paper's search bit-for-bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.placement import MigrationPlan
from ..cluster.topology import CLOUD, ON_PREM
from ..quality.evaluator import PlanQuality, QualityEvaluator
from .drl.agent import CrossoverAgent, TrainingHistory
from .nsga2 import (
    allowed_repair_targets,
    apply_allowed_repair,
    bitflip_mutation,
    random_location_vector,
    rank_population,
    survival_selection,
    tournament_pairs,
    uniform_crossover,
)
from .pareto import distance_to_ideal, knee_index, pareto_front

__all__ = [
    "GAConfig",
    "SearchResult",
    "AtlasGA",
    "penalized_objectives",
    "affinity_seed_vectors",
]

#: Penalty added per violated constraint so infeasible plans rank behind feasible ones.
_INFEASIBILITY_PENALTY = 1e6


def affinity_seed_vectors(
    components: Sequence[str],
    pinned: Dict[str, int],
    pair_traffic: Dict[Tuple[str, str], float],
    is_feasible,
    rng: np.random.Generator,
    count: int = 4,
    noise: float = 0.15,
    locations: Sequence[int] = (ON_PREM, CLOUD),
    allowed_locations: Optional[Mapping[str, Sequence[int]]] = None,
) -> List[List[int]]:
    """Population seeds derived from the learned traffic matrix.

    Each seed starts from the all-on-prem placement and greedily offloads the movable
    component whose move yields the smallest cross-datacenter traffic (with a little
    noise so the seeds differ) until the plan satisfies the constraints.  Seeding the
    initial population this way puts the genetic search directly into the traffic-
    efficient basin; the API-centric objectives then refine within and beyond it.  The
    seeds are ordinary visited plans and count against the evaluation budget like any
    other candidate.

    ``is_feasible`` receives the candidate *location vector* (ordered like
    ``components``) — seeding stays in vector space like the rest of the search, and
    callers typically pass a thin wrapper over
    :meth:`~repro.quality.evaluator.QualityEvaluator.feasible_mask`.

    With N locations the greedy offload targets the *primary* remote site (the first
    non-on-prem id in ``locations``): the cut-traffic objective cannot distinguish
    remote sites from one another, so the seeds stay two-sided and the GA's own
    operators spread load across the remaining regions.  Components whose
    ``allowed_locations`` whitelist excludes the primary remote are never offloaded by
    the seeding (the GA's own operators may still place them at their permitted
    sites).
    """
    remote = [loc for loc in locations if loc != ON_PREM]
    if not remote:
        raise ValueError("locations must include at least one remote site")
    primary_remote = remote[0]
    allowed_locations = allowed_locations or {}

    def may_use_primary(component: str) -> bool:
        allowed = allowed_locations.get(component)
        return allowed is None or primary_remote in allowed

    movable = [
        c for c in components if c not in pinned and may_use_primary(c)
    ]
    member = set(components)
    # Per-component incident traffic (both directions, self-edges excluded): flipping c
    # changes the cut by the incident weight toward same-side neighbours minus the
    # incident weight toward cross-side ones, so candidate scoring is O(deg(c)) instead
    # of a full O(E) recomputation per candidate flip.
    incident: Dict[str, List[Tuple[str, float]]] = {c: [] for c in components}
    for (src, dst), bytes_ in pair_traffic.items():
        if src == dst or src not in member or dst not in member:
            continue
        incident[src].append((dst, bytes_))
        incident[dst].append((src, bytes_))
    seeds: List[List[int]] = []
    for _ in range(count):
        assignment = {c: pinned.get(c, ON_PREM) for c in components}

        def cut_traffic() -> float:
            return sum(
                bytes_
                for (src, dst), bytes_ in pair_traffic.items()
                if src in assignment and dst in assignment
                and assignment[src] != assignment[dst]
            )

        def flip_delta(c: str) -> float:
            # Cut change of toggling c between on-prem and the primary remote.  A
            # neighbour pinned to a *third* site stays cross-location on both sides of
            # the toggle, so it must contribute zero — comparing against the actual
            # target location (not "any other side") handles that.
            side = assignment[c]
            target = primary_remote if side == ON_PREM else ON_PREM
            delta = 0.0
            for neighbour, bytes_ in incident[c]:
                neighbour_side = assignment[neighbour]
                crosses_now = neighbour_side != side
                crosses_after = neighbour_side != target
                if crosses_after and not crosses_now:
                    delta += bytes_
                elif crosses_now and not crosses_after:
                    delta -= bytes_
            return delta

        def vector() -> List[int]:
            return [assignment[c] for c in components]

        current_cut = cut_traffic()
        guard = len(components) + 1
        while not is_feasible(vector()) and guard > 0:
            guard -= 1
            candidates = [c for c in movable if assignment[c] == ON_PREM]
            if not candidates:
                break
            scored = [
                ((current_cut + flip_delta(c)) * (1.0 + noise * rng.random()), c)
                for c in candidates
            ]
            _score, chosen = min(scored)
            current_cut += flip_delta(chosen)
            assignment[chosen] = primary_remote
        # Keep flipping single components while it reduces the cut and stays feasible, so
        # the seed sits at a local optimum of the traffic objective (the basin affinity
        # methods search); the GA then refines it under the API-centric objectives.
        for _ in range(2):
            improved = False
            for c in movable:
                delta = flip_delta(c)
                if delta >= 0.0:
                    continue
                flipped = primary_remote if assignment[c] == ON_PREM else ON_PREM
                original = assignment[c]
                assignment[c] = flipped
                if is_feasible(vector()):
                    current_cut += delta
                    improved = True
                else:
                    assignment[c] = original
            if not improved:
                break
        seeds.append(vector())
    return seeds


def penalized_objectives(quality: PlanQuality) -> Tuple[float, ...]:
    """K-objective vector with constraint-violation penalties (Deb-style feasibility rule)."""
    if quality.feasible:
        return tuple(quality.objectives())
    penalty = _INFEASIBILITY_PENALTY * len(quality.violations)
    return tuple(value + penalty for value in quality.objectives())


@dataclass
class GAConfig:
    """Hyperparameters of the genetic search.

    ``immigrants_per_generation`` injects a few random plans every generation to
    preserve diversity, and ``local_search_period`` runs a single-flip improvement sweep
    on the per-objective elites every N generations (a memetic refinement; all plans it
    visits count against the evaluation budget).  Both are engineering additions on top
    of the paper's description that markedly improve convergence within the small
    evaluation budgets used in the benchmarks; they apply identically to the DRL and the
    uniform-crossover variants, so the Figure 21 ablation stays a like-for-like
    comparison of the crossover operator.
    """

    population_size: int = 100
    offspring_per_generation: int = 50
    evaluation_budget: int = 10_000
    max_generations: int = 400
    mutation_rate: float = 0.08
    immigrants_per_generation: int = 10
    local_search_period: int = 5
    train_iterations: int = 300
    train_batch_size: int = 4
    train_pairs: int = 64
    crossover: str = "drl"  # "drl" or "uniform" (the NSGA-II ablation of Figure 21)
    seed: int = 0
    #: Island-model parallelism: number of forked subpopulations (1 = the serial
    #: loop, byte-identical to the historical search), elite-migration period in
    #: generations, and how many elites each island sends around the ring.
    islands: int = 1
    migration_period: int = 10
    migration_elites: int = 2
    #: Anytime mode: stop once the feasible Pareto front has been *exactly* stable
    #: for this many consecutive generations (0 = off, run to budget).  Checking
    #: consumes no RNG, so ``patience=0`` is byte-identical to the historical
    #: search and any early exit truncates — never alters — the trajectory.
    patience: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ValueError("population_size must be at least 4")
        if self.crossover not in ("drl", "uniform"):
            raise ValueError("crossover must be 'drl' or 'uniform'")
        if self.evaluation_budget <= self.population_size:
            raise ValueError("evaluation_budget must exceed the population size")
        if self.islands < 1:
            raise ValueError("islands must be >= 1")
        if self.migration_period < 1:
            raise ValueError("migration_period must be >= 1")
        if self.migration_elites < 1:
            raise ValueError("migration_elites must be >= 1")
        if self.patience < 0:
            raise ValueError("patience must be >= 0")


@dataclass
class SearchResult:
    """Outcome of one recommendation run.

    ``all_evaluated`` holds every *distinct* plan the evaluator scored during the run
    (including agent-training probes and local-search candidates — the full "plans
    visited" accounting of the paper); ``final_population`` is just the surviving
    population of the last generation.  ``objective_names`` labels the K columns of
    every objective vector (the problem's column order).
    """

    pareto: List[PlanQuality]
    generations: int
    evaluations: int
    training_history: Optional[TrainingHistory]
    wall_clock_s: float
    all_evaluated: List[PlanQuality] = field(default_factory=list)
    final_population: List[PlanQuality] = field(default_factory=list)
    objective_names: Tuple[str, ...] = ("qperf", "qavai", "qcost")
    #: Whether the anytime mode (``GAConfig.patience``) cut the run short because
    #: the front converged before the budget/generation limits were reached.  On
    #: island runs: whether any island exited early.
    early_stopped: bool = False

    # -- plan selection shortcuts (Figures 12-14) ------------------------------------------
    def _best(self, index: int) -> PlanQuality:
        if not self.pareto:
            raise ValueError("no feasible plan was found")
        return min(self.pareto, key=lambda q: q.objectives()[index])

    def best_for(self, objective: str) -> PlanQuality:
        """The front's best plan along one named objective (any of ``objective_names``)."""
        try:
            index = self.objective_names.index(objective)
        except ValueError:
            raise KeyError(
                f"no objective named {objective!r} in {self.objective_names}"
            ) from None
        return self._best(index)

    def performance_optimized(self) -> PlanQuality:
        return self._best(0)

    def availability_optimized(self) -> PlanQuality:
        return self._best(1)

    def cost_optimized(self) -> PlanQuality:
        return self._best(2)

    def front_points(self) -> List[Tuple[float, ...]]:
        """The K-dimensional objective vectors of the Pareto front."""
        return [tuple(q.objectives()) for q in self.pareto]

    def knee_point(self) -> PlanQuality:
        """The front's balanced compromise: minimum distance-to-ideal on the
        normalized front (see :func:`~repro.optimizer.pareto.knee_index`)."""
        if not self.pareto:
            raise ValueError("no feasible plan was found")
        return self.pareto[knee_index(self.front_points())]

    def knee_ordered(self) -> List[PlanQuality]:
        """The front ordered by distance-to-ideal (knee first, stable on ties)."""
        if not self.pareto:
            return []
        distances = distance_to_ideal(self.front_points())
        order = np.argsort(distances, kind="stable")
        return [self.pareto[int(i)] for i in order]


class AtlasGA:
    """DRL-based genetic algorithm over migration plans.

    ``locations`` is the set of location ids the search may place components at; the
    default is the paper's two-location topology.  Multi-location searches use the same
    loop — only the sampling/mutation/neighbourhood operators widen to the extra sites.
    """

    def __init__(
        self,
        evaluator: QualityEvaluator,
        components: Sequence[str],
        config: Optional[GAConfig] = None,
        seed_vectors: Optional[Sequence[Sequence[int]]] = None,
        locations: Optional[Sequence[int]] = None,
        islands: Optional[int] = None,
    ) -> None:
        self.evaluator = evaluator
        self.components = list(components)
        self.config = config or GAConfig()
        #: Island-model parallelism (``islands`` overrides the config knob): W > 1
        #: shards the search into W forked subpopulations over shared memory (see
        #: ``optimizer/parallel.py``); W = 1 is the serial loop, byte-identical to
        #: the historical search.
        self.islands = int(islands) if islands is not None else int(self.config.islands)
        if self.islands < 1:
            raise ValueError("islands must be >= 1")
        #: Set by the island worker: this island's end of the migration ring.
        self._migration = None
        self.locations: Tuple[int, ...] = (
            tuple(int(loc) for loc in locations)
            if locations is not None
            else (ON_PREM, CLOUD)
        )
        if len(set(self.locations)) != len(self.locations) or len(self.locations) < 2:
            raise ValueError("locations must be at least two distinct ids")
        if ON_PREM not in self.locations:
            raise ValueError("locations must include the on-prem site (0)")
        self._remote_locations: Tuple[int, ...] = tuple(
            loc for loc in self.locations if loc != ON_PREM
        )
        #: The paper's two-location fast path: keeps RNG consumption (and therefore
        #: fixed-seed trajectories) bit-for-bit identical to the original bit-vector GA.
        self._binary = self.locations == (ON_PREM, CLOUD)
        self._rng = np.random.default_rng(self.config.seed)
        pins = evaluator.preferences.pinned_placement
        self._pinned_indices: Dict[int, int] = {
            self.components.index(c): loc for c, loc in pins.items() if c in self.components
        }
        if not self._binary:
            invalid = sorted(
                c
                for c, loc in pins.items()
                if c in self.components and loc not in self.locations
            )
            if invalid:
                raise ValueError(
                    f"components {invalid} are pinned to locations outside the search "
                    f"space {self.locations}"
                )
        # Per-gene allowed-location sets (the owner's whitelists restricted to the
        # search space) plus the shared deterministic repair map.
        self._allowed_indices: Dict[int, Tuple[int, ...]] = {}
        for component, allowed in evaluator.preferences.allowed_locations.items():
            if component not in self.components:
                continue
            index = self.components.index(component)
            if index in self._pinned_indices:
                continue
            self._allowed_indices[index] = tuple(
                loc for loc in self.locations if loc in allowed
            )
        self._allowed_repair = allowed_repair_targets(
            self._allowed_indices, self.locations, on_prem=ON_PREM
        )
        self.seed_vectors = [self._apply_constraints(list(v)) for v in (seed_vectors or [])]
        self.agent: Optional[CrossoverAgent] = None

    # -- plan helpers ---------------------------------------------------------------------
    def _apply_constraints(self, vector: List[int]) -> List[int]:
        """Force pinned genes to their location and repair whitelist violations.

        The repair is deterministic (no RNG): a gene drawn at a disallowed site moves
        to the component's first permitted remote site, keeping the offload intent,
        or back on-prem when no remote site is permitted.  With no whitelists this
        reduces to the historical pin application, so fixed-seed trajectories are
        unchanged.
        """
        for index, location in self._pinned_indices.items():
            vector[index] = location
        apply_allowed_repair(vector, self._allowed_repair, on_prem=ON_PREM)
        return vector

    def _gene_permits(self, index: int, target: int) -> bool:
        """Whether the component's whitelist allows the target location.

        Keeps the elite local search from spending evaluation budget on moves that
        the location-violation mask is guaranteed to reject.
        """
        if target == ON_PREM:
            return True
        permitted = self._allowed_indices.get(index)
        return permitted is None or target in permitted

    def _random_vector(self) -> List[int]:
        # Spread the initial population across offload ratios: when the on-prem cluster
        # is far over capacity only high-offload plans are feasible, while low-offload
        # plans matter when it is not.  Offloaded genes pick a remote site uniformly.
        offload_prob = self._rng.uniform(0.1, 0.95)
        if self._binary:
            vector = (self._rng.random(len(self.components)) < offload_prob).astype(int)
            return self._apply_constraints([int(v) for v in vector])
        vector = random_location_vector(
            self._rng, len(self.components), offload_prob, self.locations
        )
        return self._apply_constraints(vector)

    def _to_plan(self, vector: Sequence[int]) -> MigrationPlan:
        return MigrationPlan.from_vector(self.components, list(vector))

    # -- reward (Eq. 5) ----------------------------------------------------------------------
    def reward(
        self,
        child_vector: Sequence[int],
        parent_a: Sequence[int],
        parent_b: Sequence[int],
    ) -> float:
        child, qa, qb = self.evaluator.evaluate_vectors(
            [list(child_vector), list(parent_a), list(parent_b)], self.components
        )
        improved = 0
        for child_value, a_value, b_value in zip(
            child.objectives(), qa.objectives(), qb.objectives()
        ):
            if min(a_value, b_value) > child_value:
                improved += 1
        if child.feasible:
            return float(improved)
        return -float(max(improved, 1))

    # -- agent training ------------------------------------------------------------------------
    def train_agent(self) -> TrainingHistory:
        """Train the crossover agent on random parent pairs (application-learning phase)."""
        agent = CrossoverAgent(
            n_components=len(self.components),
            pinned=self._pinned_indices,
            seed=self.config.seed,
            locations=self.locations,
            allowed=self._allowed_indices,
        )
        pairs = [
            (self._random_vector(), self._random_vector())
            for _ in range(self.config.train_pairs)
        ]
        history = agent.train(
            pairs,
            self.reward,
            iterations=self.config.train_iterations,
            batch_size=self.config.train_batch_size,
        )
        self.agent = agent
        return history

    # -- memetic refinement -----------------------------------------------------------------------
    def _move_candidates(self, vector: Sequence[int]) -> List[List[int]]:
        """Neighbourhood of one plan: single moves plus joint moves of communicating pairs.

        The pair moves are workflow-aware: relocating a caller together with its callee
        keeps their interaction local, which single moves cannot express (e.g. moving a
        cache back on-prem together with the service that reads it synchronously).
        Every move targets each of the search's locations in turn, so on a 3-site
        topology a single gene yields two candidates (the two other sites) and a pair
        or API path can be consolidated onto any one site.
        """
        moves: List[List[int]] = []
        n = len(vector)
        for gene in range(n):
            if gene in self._pinned_indices:
                continue
            for target in self.locations:
                if vector[gene] == target or not self._gene_permits(gene, target):
                    continue
                candidate = list(vector)
                candidate[gene] = target
                moves.append(candidate)
        index = {name: i for i, name in enumerate(self.components)}
        for caller, callee in self.evaluator.performance.invocation_edges():
            i, j = index.get(caller), index.get(callee)
            if i is None or j is None:
                continue
            if i in self._pinned_indices or j in self._pinned_indices:
                continue
            for target in self.locations:
                if vector[i] == target and vector[j] == target:
                    continue
                if not (self._gene_permits(i, target) and self._gene_permits(j, target)):
                    continue
                candidate = list(vector)
                candidate[i] = target
                candidate[j] = target
                moves.append(candidate)
        # API-path moves: relocate every (movable) component one API touches to the same
        # site.  This is the API-centric counterpart of the pair moves above — e.g. keep
        # the whole media path on-prem so /getMedia never crosses datacenters.
        for members in self.evaluator.performance.api_components().values():
            indices = [
                index[name]
                for name in members
                if name in index and index[name] not in self._pinned_indices
            ]
            if not indices:
                continue
            for target in self.locations:
                if all(vector[i] == target for i in indices):
                    continue
                if not all(self._gene_permits(i, target) for i in indices):
                    continue
                candidate = list(vector)
                for i in indices:
                    candidate[i] = target
                moves.append(candidate)
        return moves

    def _elite_local_search(
        self, population: Sequence[Sequence[int]], qualities: Sequence[PlanQuality]
    ) -> List[List[int]]:
        """One improvement sweep on the best feasible plan per objective.

        Every candidate move goes through the (cached, budget-counted) evaluator, so the
        refinement respects the "plans visited" accounting of the paper's comparison.
        """
        improved: List[List[int]] = []
        feasible = [
            (vector, quality)
            for vector, quality in zip(population, qualities)
            if quality.feasible
        ]
        if not feasible:
            return improved
        for objective_index in range(self.evaluator.problem.K):
            vector, quality = min(feasible, key=lambda vq: vq[1].objectives()[objective_index])
            best_vector = list(vector)
            best_value = quality.objectives()[objective_index]
            # Batch-evaluate the neighbourhood in chunks bounded by the remaining
            # budget: each uncached plan costs exactly one evaluation, so a chunk of
            # `remaining` candidates can never overshoot, and cache hits let the next
            # chunk pick up the leftovers — the same candidates are visited as the
            # sequential check-then-evaluate loop.
            moves = self._move_candidates(vector)
            position = 0
            while position < len(moves):
                remaining = self.config.evaluation_budget - self.evaluator.evaluations
                if remaining <= 0:
                    break
                chunk = moves[position : position + remaining]
                position += len(chunk)
                qualities_chunk = self.evaluator.evaluate_vectors(chunk, self.components)
                for candidate, candidate_quality in zip(chunk, qualities_chunk):
                    if (
                        candidate_quality.feasible
                        and candidate_quality.objectives()[objective_index] < best_value
                    ):
                        best_vector = candidate
                        best_value = candidate_quality.objectives()[objective_index]
            if best_vector != list(vector):
                improved.append(best_vector)
        return improved

    # -- main loop -------------------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Run the search: the serial loop, or W forked islands when ``islands > 1``.

        The parallel path shards the population into ``islands`` subpopulations in
        worker processes scoring against shared-memory compiled state, with periodic
        elite migration on a fixed ring and a K-dim non-dominated merge of the
        per-island fronts (see ``optimizer/parallel.py`` for the execution model and
        the determinism contract).  ``islands=1`` is the unmodified serial path.
        """
        if self.islands > 1:
            from .parallel import run_island_search

            return run_island_search(self)
        return self._run_serial()

    def _run_serial(self) -> SearchResult:
        start = time.perf_counter()
        # Plans cached on the evaluator before this run started (e.g. by a previous
        # run() on a shared evaluator) are not part of this run's "plans visited".
        preexisting = self.evaluator.cache_size()
        history: Optional[TrainingHistory] = None
        if self.config.crossover == "drl":
            history = self.train_agent()

        population: List[List[int]] = [list(v) for v in self.seed_vectors]
        population += [
            self._random_vector()
            for _ in range(max(self.config.population_size - len(population), 0))
        ]
        qualities: List[PlanQuality] = self.evaluator.evaluate_vectors(
            population, self.components
        )
        generations = 0
        early_stopped = False
        front_signal: Optional[Tuple] = None
        stall = 0
        while (
            self.evaluator.evaluations < self.config.evaluation_budget
            and generations < self.config.max_generations
        ):
            generations += 1
            objectives = [penalized_objectives(q) for q in qualities]
            ranked = rank_population(objectives)
            pairs = tournament_pairs(ranked, self.config.offspring_per_generation, self._rng)
            offspring: List[List[int]] = []
            for idx_a, idx_b in pairs:
                parent_a, parent_b = population[idx_a], population[idx_b]
                if self.config.crossover == "drl" and self.agent is not None:
                    child = self.agent.crossover(parent_a, parent_b, self._rng)
                else:
                    child = uniform_crossover(parent_a, parent_b, self._rng)
                child = bitflip_mutation(
                    child, self._rng, self.config.mutation_rate, locations=self.locations
                )
                offspring.append(self._apply_constraints(child))
            for _ in range(self.config.immigrants_per_generation):
                offspring.append(self._random_vector())
            if self._migration is not None:
                # Elites received from the ring neighbour last epoch compete as
                # extra offspring (deterministic, no RNG consumed; never taken in
                # the serial path, so fixed-seed trajectories are untouched).
                for migrant in self._migration.take_migrants():
                    offspring.append(self._apply_constraints(list(migrant)))
            if (
                self.config.local_search_period > 0
                and generations % self.config.local_search_period == 0
            ):
                offspring.extend(self._elite_local_search(population, qualities))
            offspring_quality = self.evaluator.evaluate_vectors(
                offspring, self.components
            )

            combined = population + offspring
            combined_quality = qualities + offspring_quality
            combined_objectives = [penalized_objectives(q) for q in combined_quality]
            survivors = survival_selection(combined_objectives, self.config.population_size)
            population = [combined[i] for i in survivors]
            qualities = [combined_quality[i] for i in survivors]
            if self._migration is not None:
                self._migration.after_generation(generations, population, qualities)
            if self.config.patience > 0:
                # Anytime mode: the convergence signal is the exact multiset of
                # feasible-front objective vectors (repr keeps full float
                # precision, so any knee/hypervolume movement changes it).  The
                # check consumes no RNG — trajectories up to the exit generation
                # stay byte-identical to a patience-less run.
                front = pareto_front(
                    [q for q in qualities if q.feasible], key=lambda q: q.objectives()
                )
                signal = tuple(sorted(repr(tuple(q.objectives())) for q in front))
                if front and signal == front_signal:
                    stall += 1
                    if stall >= self.config.patience:
                        early_stopped = True
                        break
                else:
                    stall = 0
                front_signal = signal

        if self._migration is not None:
            # Keep answering the remaining migration epochs (the schedule is fixed
            # fleet-wide) so slower islands never block on this one's barriers.
            self._migration.drain(population, qualities)
        feasible = [q for q in qualities if q.feasible]
        front = pareto_front(feasible, key=lambda q: q.objectives())
        front.sort(key=lambda q: q.objectives())
        return SearchResult(
            pareto=front,
            generations=generations,
            evaluations=self.evaluator.evaluations,
            training_history=history,
            wall_clock_s=time.perf_counter() - start,
            all_evaluated=self.evaluator.evaluated_qualities()[preexisting:],
            final_population=qualities,
            objective_names=self.evaluator.problem.objective_names,
            early_stopped=early_stopped,
        )
