"""The continuous re-planning loop as a restartable, checkpointed service.

The paper's serving story is a loop, not a function call: after a plan is
executed, Atlas keeps polling the monitoring plane, checks the measured latency
distributions for drift, splices re-profiled traces into its learned state,
re-certifies the executed plan and — when the footprints are outdated — runs a
fresh recommendation round.  :class:`AdvisorDaemon` is that loop as a scheduled
service over an :class:`~repro.recommend.advisor.AdvisorService`:

* **Stage machine** — each tenant's cycle advances through
  ``poll -> drift -> splice -> recertify -> recommend -> done``; after every
  stage the loop state (cycle index, stage, executed plan vector, drift-detector
  baselines) is checkpointed to the service's durable store, and the polled
  monitor sample is persisted alongside it.
* **Restartability** — a daemon killed mid-cycle resumes from the checkpoint on
  restart: the in-flight cycle replays its remaining stages from the *persisted*
  sample (never a re-poll), every stage is idempotent and deterministic given
  that sample, and the re-recommend lands on the service's request memo /
  durable journal — so the resumed run's answers are bitwise-identical to an
  uninterrupted run, and the compiled world is recovered from the artifact
  store instead of rebuilt.

Monitors implement one method, ``poll(tenant, cycle) -> Optional[MonitorSample]``.
The cycle index is passed so scripted monitors (tests, the kill-and-restart
smoke) can be pure functions of ``(tenant, cycle)`` — a restarted process then
observes exactly the samples the killed one did.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING

from ..cluster.placement import MigrationPlan
from ..monitoring.drift import DriftDetector
from ..telemetry.tracing import Trace
from ..workload.profiles import WorkloadScenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..recommend.advisor import AdvisorService, Atlas, Recommendation
    from .store import ArtifactStore

__all__ = [
    "MonitorSample",
    "ScriptedMonitor",
    "TenantCycleReport",
    "AdvisorDaemon",
]

#: Stage order of one tenant cycle (``drift``..``recertify`` are skipped while
#: bootstrapping, i.e. before a first recommendation established baselines).
STAGES = ("poll", "drift", "splice", "recertify", "recommend", "done")


@dataclass
class MonitorSample:
    """One observation window from the monitoring plane for one tenant.

    ``recent_latencies`` are the per-API latency samples measured since the last
    cycle (what drift is judged on); ``traces_by_api`` optionally carries the
    re-profiled trace window per API (the splice payload); ``scenario`` the
    workload description the tenant currently runs under (enables
    recertification against a drift-refreshed scenario).
    """

    recent_latencies: Dict[str, List[float]]
    traces_by_api: Dict[str, List[Trace]] = field(default_factory=dict)
    scenario: Optional[WorkloadScenario] = None


class ScriptedMonitor:
    """Deterministic monitor: a fixed sample per ``(tenant, cycle)`` position.

    ``samples[tenant][cycle - 1]`` is returned for cycle ``cycle`` (cycles are
    1-based); positions past the script's end return ``None`` (idle).  Being a
    pure function of its arguments, a restarted process scripting the same
    samples observes exactly what the killed one did — the property the
    kill-and-restart smoke relies on.
    """

    def __init__(self, samples: Mapping[str, Sequence[Optional[MonitorSample]]]) -> None:
        self._samples = {tenant: list(seq) for tenant, seq in samples.items()}

    def poll(self, tenant: str, cycle: int) -> Optional[MonitorSample]:
        script = self._samples.get(tenant, [])
        index = cycle - 1
        if 0 <= index < len(script):
            return script[index]
        return None


@dataclass
class TenantCycleReport:
    """What one tenant's cycle did (observability; the durable record is the checkpoint)."""

    tenant: str
    cycle: int
    stages: List[str] = field(default_factory=list)
    idle: bool = False
    drifted: List[str] = field(default_factory=list)
    spliced: List[str] = field(default_factory=list)
    recertified: bool = False
    recommended: bool = False
    front_sha: Optional[str] = None
    error: Optional[str] = None


def front_digest(recommendation: "Recommendation") -> str:
    """Content digest of a recommendation's front (plan vectors + repr-exact objectives)."""
    payload = [
        (quality.plan.to_vector(), [repr(v) for v in quality.objectives()])
        for quality in recommendation.plans
    ]
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _new_record() -> Dict[str, object]:
    return {
        "cycle": 0,
        "stage": "done",
        "executed": None,
        "components": None,
        "detector": None,
        "drifted": [],
        "front_sha": None,
    }


@dataclass
class _Tenant:
    atlas: "Atlas"
    kwargs: Dict[str, object]


class AdvisorDaemon:
    """Scheduled continuous re-planning over an :class:`AdvisorService`.

    ``service.store`` (when set) makes the daemon restartable: loop state is
    checkpointed after every stage under ``state/daemon-<name>.json`` and polled
    samples are persisted as store objects, so a new process constructing the
    daemon over the same store resumes the in-flight cycle instead of starting
    over.  Without a store the daemon still runs — state just dies with the
    process.

    ``certify_budget`` (optional) re-certifies the executed plan against the
    drift-refreshed scenario before re-recommending (the loop's ``recertify``
    stage); it needs the previous round's live recommendation, so the stage is
    recorded as skipped on the first cycle after a restart.

    ``run_cycle()`` advances every tenant synchronously (what tests call);
    :meth:`start` runs it on a background thread every ``interval_s`` seconds.
    """

    def __init__(
        self,
        service: "AdvisorService",
        monitor,
        name: str = "atlas",
        interval_s: float = 60.0,
        certify_budget: Optional[int] = None,
    ) -> None:
        self.service = service
        self.monitor = monitor
        self.name = name
        self.interval_s = float(interval_s)
        self.certify_budget = certify_budget
        self.store: Optional["ArtifactStore"] = service.store
        self._tenants: Dict[str, _Tenant] = {}
        self._records: Dict[str, Dict[str, object]] = {}
        self._live: Dict[str, "Recommendation"] = {}
        self._mu = threading.RLock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.last_error: Optional[str] = None
        #: Test seam: called as ``hook(tenant, stage)`` after each stage checkpoint
        #: (the kill-and-restart smoke uses it to die mid-cycle at a chosen stage).
        self._after_stage: Optional[Callable[[str, str], None]] = None
        self._load_checkpoint()

    # -- tenants -----------------------------------------------------------------------
    def register(self, name: str, atlas: "Atlas", **recommend_kwargs) -> None:
        """Add one tenant to the loop; ``recommend_kwargs`` parameterize its rounds.

        A checkpointed record for ``name`` (from a previous process) is kept —
        registration re-attaches the live :class:`Atlas` to the durable state.
        """
        with self._mu:
            self._tenants[name] = _Tenant(atlas=atlas, kwargs=dict(recommend_kwargs))
            self._records.setdefault(name, _new_record())

    @property
    def tenants(self) -> List[str]:
        with self._mu:
            return sorted(self._tenants)

    def record(self, name: str) -> Dict[str, object]:
        """A copy of one tenant's checkpointed loop record (observability)."""
        with self._mu:
            return dict(self._records[name])

    # -- the loop ----------------------------------------------------------------------
    def run_cycle(self) -> List[TenantCycleReport]:
        """Advance every registered tenant by one cycle (or finish its in-flight one)."""
        with self._mu:
            names = sorted(self._tenants)
        return [self._advance(name) for name in names]

    def start(self) -> None:
        """Run :meth:`run_cycle` every ``interval_s`` seconds on a daemon thread."""
        with self._mu:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name=f"advisor-daemon-{self.name}", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_cycle()
            except Exception:  # keep the service alive; surface via last_error
                self.last_error = traceback.format_exc()
            self._stop.wait(self.interval_s)

    # -- one tenant cycle --------------------------------------------------------------
    def _advance(self, name: str) -> TenantCycleReport:
        with self._mu:
            tenant = self._tenants[name]
            record = self._records.setdefault(name, _new_record())
        if record["stage"] == "done":
            record["cycle"] = int(record["cycle"]) + 1
            record["stage"] = "poll"
        cycle = int(record["cycle"])
        report = TenantCycleReport(tenant=name, cycle=cycle)

        # poll: live monitors are consulted exactly once per cycle; a resumed
        # cycle replays from the persisted sample, never from a second poll.
        if record["stage"] == "poll":
            report.stages.append("poll")
            sample = self.monitor.poll(name, cycle)
            if sample is None:
                record["stage"] = "done"
                report.idle = True
                self._checkpoint(name, "poll")
                return report
            self._save_sample(name, cycle, sample)
            record["stage"] = "drift" if record["detector"] is not None else "recommend"
            self._checkpoint(name, "poll")
        else:
            sample = self._load_sample(name, cycle)
            if sample is None:
                # The durable sample is gone (wiped store): abandon the in-flight
                # cycle; the next cycle re-polls.  Degraded, never crashed.
                record["stage"] = "done"
                report.error = "persisted sample lost; cycle abandoned"
                self._checkpoint(name, "abandon")
                return report
            if record["drifted"] and record["stage"] in ("recertify", "recommend"):
                # Resuming past the splice checkpoint in a fresh process: the
                # splice's effect lived in the dead process's knowledge, so it is
                # re-applied here (idempotent by content) before continuing.
                self._splice(tenant.atlas, record, sample)

        if record["stage"] == "drift":
            report.stages.append("drift")
            detector = DriftDetector.from_state(record["detector"])
            reports = detector.check_all(sample.recent_latencies)
            report.drifted = sorted(
                api for api, outcome in reports.items() if outcome.drift_detected
            )
            record["drifted"] = list(report.drifted)
            record["stage"] = "splice" if report.drifted else "done"
            self._checkpoint(name, "drift")
            if not report.drifted:
                return report

        if record["stage"] == "splice":
            report.stages.append("splice")
            report.spliced = self._splice(tenant.atlas, record, sample)
            record["stage"] = "recertify"
            self._checkpoint(name, "splice")

        if record["stage"] == "recertify":
            report.stages.append("recertify")
            report.recertified = self._recertify(name, tenant, record, sample)
            record["stage"] = "recommend"
            self._checkpoint(name, "recertify")

        if record["stage"] == "recommend":
            report.stages.append("recommend")
            recommendation = self.service.recommend(tenant.atlas, **tenant.kwargs)
            knee = recommendation.knee_point().plan
            record["executed"] = [int(v) for v in knee.to_vector()]
            record["components"] = list(knee.components)
            record["detector"] = self._baseline_state(
                tenant.atlas, recommendation, knee, sample
            )
            record["front_sha"] = front_digest(recommendation)
            record["drifted"] = []
            record["stage"] = "done"
            with self._mu:
                self._live[name] = recommendation
            report.recommended = True
            report.front_sha = record["front_sha"]
            self._checkpoint(name, "recommend")
        return report

    # -- stage bodies ------------------------------------------------------------------
    @staticmethod
    def _splice(
        atlas: "Atlas", record: Dict[str, object], sample: MonitorSample
    ) -> List[str]:
        """Install the drifted APIs' re-profiled trace windows into the learned state.

        Replacing ``ApiProfile.sample_traces`` changes the knowledge's content
        fingerprint for exactly those APIs, so the following re-recommend compiles
        only them (splice path) and lands on a new request-memo key.  Idempotent:
        a resumed cycle installing the same persisted traces is a no-op by content.
        """
        knowledge = atlas.knowledge
        if knowledge is None:
            return []
        spliced: List[str] = []
        for api in record["drifted"]:
            traces = sample.traces_by_api.get(api)
            profile = knowledge.api_profiles.get(api)
            if traces and profile is not None:
                knowledge.api_profiles[api] = dataclasses.replace(
                    profile, sample_traces=list(traces)
                )
                spliced.append(api)
        return spliced

    def _recertify(
        self,
        name: str,
        tenant: _Tenant,
        record: Dict[str, object],
        sample: MonitorSample,
    ) -> bool:
        """Re-certify the executed plan under the refreshed workload (best-effort).

        Runs only when certification is configured and the previous round's live
        recommendation (with its certificate) is still in memory — certificates
        describe the *outgoing* plan, so after a restart the stage is skipped and
        the incoming re-recommend simply supersedes it.
        """
        last = self._live.get(name)
        if (
            not self.certify_budget
            or last is None
            or last.certificate is None
            or sample.scenario is None
            or not record["executed"]
        ):
            return False
        try:
            detector = DriftDetector.from_state(record["detector"])
            update = detector.check_all(
                sample.recent_latencies,
                scenario=sample.scenario,
                traces_by_api=sample.traces_by_api,
            )
            executed = MigrationPlan.from_vector(
                list(record["components"]), list(record["executed"])
            )
            tenant.atlas.recertify(
                last, executed, update, budget=int(self.certify_budget)
            )
            return True
        except Exception:
            self.last_error = traceback.format_exc()
            return False

    @staticmethod
    def _baseline_state(
        atlas: "Atlas",
        recommendation: "Recommendation",
        executed: MigrationPlan,
        sample: MonitorSample,
    ) -> Dict[str, object]:
        """Fresh drift baselines for the newly executed plan.

        ``approx`` is the advisor's own latency preview of the plan; ``real`` is
        proxied by the cycle's measured window (the best ground truth available
        until the next sample arrives) — the construction of
        :meth:`Atlas.drift_detector <repro.recommend.advisor.Atlas.drift_detector>`.
        """
        measured = {api: list(v) for api, v in sample.recent_latencies.items()}
        return atlas.drift_detector(recommendation, executed, measured).state()

    # -- durable state -----------------------------------------------------------------
    def _state_name(self) -> str:
        return f"daemon-{self.name}"

    def _sample_key(self, tenant: str, cycle: int):
        return ("daemon-sample", self.name, tenant, int(cycle))

    def _save_sample(self, tenant: str, cycle: int, sample: MonitorSample) -> None:
        if self.store is not None:
            self.store.save(self._sample_key(tenant, cycle), sample)

    def _load_sample(self, tenant: str, cycle: int) -> Optional[MonitorSample]:
        if self.store is None:
            return None
        sample = self.store.load(self._sample_key(tenant, cycle))
        return sample if isinstance(sample, MonitorSample) else None

    def _checkpoint(self, tenant: str, stage: str) -> None:
        if self.store is not None:
            with self._mu:
                state = {"version": 1, "tenants": self._records}
                self.store.save_state(self._state_name(), state)
        hook = self._after_stage
        if hook is not None:
            hook(tenant, stage)

    def _load_checkpoint(self) -> None:
        if self.store is None:
            return
        state = self.store.load_state(self._state_name())
        if (
            isinstance(state, dict)
            and state.get("version") == 1
            and isinstance(state.get("tenants"), dict)
        ):
            defaults = _new_record()
            self._records = {
                tenant: {**defaults, **record}
                for tenant, record in state["tenants"].items()
                if isinstance(record, dict)
            }
