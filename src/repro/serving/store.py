"""Content-addressed durable store for compiled serving artifacts.

The :class:`~repro.quality.artifacts.ArtifactCache` keys are already
content-complete — sha256 fingerprints of exactly the inputs each artifact is a
pure function of — so a durable second tier is a drop-in: hash the key to a
file name, serialize the artifact, and a *different process* asking for the
same content gets the bitwise-identical artifact without recompiling.

Two failure disciplines govern every byte on disk:

* **Atomicity** — artifacts are written to a temporary file in the target
  directory, fsync'd, then published with :func:`os.replace`.  Readers never
  observe a half-written object; concurrent writers of the same key race
  benignly (both write identical content, last rename wins).
* **Degrade, never crash** — :meth:`ArtifactStore.load` returns ``None`` on
  *any* defect: missing file, bad magic, unknown format version, truncated
  payload, checksum mismatch, unpicklable bytes.  A defective object is a cache
  miss that falls back to a clean recompile; corruption can cost time, never
  correctness.

Each object file is framed as one ASCII header line followed by the pickled
payload::

    atlas-store/<version> <sha256 of payload> <payload length>\\n<payload bytes>

The header makes version mismatches and truncation detectable before a single
payload byte is interpreted, and the checksum rejects torn or bit-rotted
payloads.  The same discipline backs :meth:`save_state`/:meth:`load_state`,
the JSON checkpoint channel the :class:`~repro.serving.daemon.AdvisorDaemon`
uses for its loop state.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Tuple, Union

__all__ = ["ArtifactStore", "STORE_DIR_DEFAULT"]

#: Default on-disk location (repo-relative); covered by the repository .gitignore.
STORE_DIR_DEFAULT = ".atlas_store"

_MAGIC = "atlas-store"
_VERSION = 1


def _key_digest(key: Tuple) -> str:
    """Stable file-name digest of one cache key.

    Cache keys are tuples of primitives (fingerprint strings, names, numbers)
    whose ``repr`` is content-stable, so hashing the repr addresses the object
    by content — the same property the in-memory cache relies on.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class ArtifactStore:
    """Durable, content-addressed object store under one root directory.

    ``<root>/objects/<aa>/<digest>.art`` holds pickled artifacts (``aa`` is the
    digest's first byte, fanning the directory out); ``<root>/state/<name>.json``
    holds small JSON state documents (daemon checkpoints).  Instances are
    thread- and process-safe by construction: writes are atomic renames and
    reads validate the full frame before deserializing.
    """

    def __init__(self, root: Union[str, Path] = STORE_DIR_DEFAULT) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._state = self.root / "state"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._state.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"

    # -- object tier -----------------------------------------------------------------
    def path_for(self, key: Tuple) -> Path:
        digest = _key_digest(key)
        return self._objects / digest[:2] / f"{digest}.art"

    def __contains__(self, key: Tuple) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._objects.glob("*/*.art"))

    def save(self, key: Tuple, value: object) -> bool:
        """Durably publish ``value`` under ``key``; False when it cannot be stored.

        Unpicklable values (live evaluator graphs hold weakrefs) and filesystem
        errors both degrade to "not stored": the in-memory tier still serves the
        object for this process's lifetime.
        """
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        header = (
            f"{_MAGIC}/{_VERSION} {hashlib.sha256(payload).hexdigest()} "
            f"{len(payload)}\n"
        ).encode("ascii")
        return self._publish(self.path_for(key), header + payload)

    def load(self, key: Tuple) -> Optional[object]:
        """The stored artifact, or ``None`` on any defect (missing/corrupt/stale)."""
        try:
            blob = self.path_for(key).read_bytes()
        except OSError:
            return None
        try:
            newline = blob.index(b"\n")
            magic_version, digest, length = blob[:newline].decode("ascii").split(" ")
            magic, _, version = magic_version.partition("/")
            payload = blob[newline + 1 :]
            if (
                magic != _MAGIC
                or int(version) != _VERSION
                or len(payload) != int(length)
                or hashlib.sha256(payload).hexdigest() != digest
            ):
                return None
            return pickle.loads(payload)
        except Exception:
            return None

    def discard(self, key: Tuple) -> None:
        """Drop one stored object (absence is not an error)."""
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    # -- JSON state tier (daemon checkpoints) ------------------------------------------
    def state_path(self, name: str) -> Path:
        return self._state / f"{name}.json"

    def save_state(self, name: str, state: dict) -> bool:
        """Atomically publish one JSON state document (daemon loop checkpoints)."""
        try:
            body = json.dumps(state, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError):
            return False
        return self._publish(self.state_path(name), body)

    def load_state(self, name: str) -> Optional[dict]:
        """The checkpointed state document, or ``None`` when absent or unreadable."""
        try:
            loaded = json.loads(self.state_path(name).read_text())
        except Exception:
            return None
        return loaded if isinstance(loaded, dict) else None

    # -- internals ---------------------------------------------------------------------
    @staticmethod
    def _publish(path: Path, blob: bytes) -> bool:
        """Write-then-rename publication: readers see the old object or the new one."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True
