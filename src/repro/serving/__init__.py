"""Durable fleet serving: the on-disk artifact tier and the continuous re-planning daemon.

:mod:`repro.quality.artifacts` made repeated serving warm *within* one process;
this package makes that warmth survive process restarts and concurrent access:

* :class:`ArtifactStore` -- content-addressed, versioned, atomic-rename on-disk
  second tier behind :class:`~repro.quality.artifacts.ArtifactCache` (and the
  durable journal behind the :class:`~repro.recommend.advisor.AdvisorService`
  request memo);
* :class:`AdvisorDaemon` -- the continuous re-planning loop (poll monitors ->
  drift check -> splice -> recertify -> re-recommend) as a scheduled, restartable
  service with checkpointed loop state.
"""

from .daemon import AdvisorDaemon, MonitorSample, ScriptedMonitor, TenantCycleReport
from .store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "AdvisorDaemon",
    "MonitorSample",
    "ScriptedMonitor",
    "TenantCycleReport",
]
