"""Workload-level simulation runner.

Ties the pieces together: a request stream (from :mod:`repro.workload`), an application
model, a migration plan, the hybrid-cluster topology and network model go in; telemetry
(traces + metrics + mesh counters) and per-request outcomes come out.  This is the
"testbed" every experiment runs on — both to collect learning data for Atlas and to
measure ground-truth post-migration behaviour that Atlas's estimates are compared
against (Figure 18).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..apps.model import Application
from ..cluster.network import NetworkModel, default_network_model
from ..cluster.placement import MigrationPlan
from ..cluster.topology import CLOUD, ON_PREM, HybridCluster, default_hybrid_cluster
from ..telemetry.server import TelemetryServer
from ..workload.generator import ApiRequest
from .engine import RequestOutcome, SimulationEngine

__all__ = [
    "SimulationResult",
    "ContentionModel",
    "component_operation_counts",
    "simulate_workload",
]


def component_operation_counts(application: Application) -> Dict[str, Dict[str, int]]:
    """Per API, how many operations each component executes for one request."""
    counts: Dict[str, Dict[str, int]] = {}
    for api in application.apis:
        per_component: Dict[str, int] = {}
        for node in api.root.walk():
            per_component[node.component] = per_component.get(node.component, 0) + 1
        counts[api.name] = per_component
    return counts


class ContentionModel:
    """CPU-contention slowdown derived from expected demand vs. datacenter capacity.

    The on-prem datacenter has fixed capacity; when the expected CPU demand of the
    components placed there exceeds a utilization threshold, local processing slows
    down (and far beyond capacity, requests effectively fail) — this is what produces
    the latency spikes and failures of Figure 2.  Elastic (cloud) datacenters never
    slow down because the cluster autoscaler adds nodes.
    """

    def __init__(
        self,
        application: Application,
        plan: MigrationPlan,
        cluster: HybridCluster,
        requests: Sequence[ApiRequest],
        window_ms: float = 10_000.0,
        knee_utilization: float = 0.75,
        slope: float = 8.0,
        max_slowdown: float = 30.0,
    ) -> None:
        self.window_ms = window_ms
        self.knee = knee_utilization
        self.slope = slope
        self.max_slowdown = max_slowdown
        self._factors: Dict[Tuple[int, int], float] = {}
        self._build(application, plan, cluster, requests)

    def _build(
        self,
        application: Application,
        plan: MigrationPlan,
        cluster: HybridCluster,
        requests: Sequence[ApiRequest],
    ) -> None:
        if not requests:
            return
        op_counts = component_operation_counts(application)
        max_time = max(r.time_ms for r in requests)
        n_windows = int(max_time // self.window_ms) + 1
        # API request counts per window.
        api_counts: Dict[int, Dict[str, int]] = {}
        for req in requests:
            w = int(req.time_ms // self.window_ms)
            api_counts.setdefault(w, {}).setdefault(req.api, 0)
            api_counts[w][req.api] += 1
        for dc in cluster.datacenters:
            capacity = dc.cpu_capacity_millicores()
            for w in range(n_windows):
                if dc.elastic or capacity == float("inf"):
                    self._factors[(dc.location_id, w)] = 1.0
                    continue
                counts = api_counts.get(w, {})
                demand = 0.0
                for component in plan.components_at(dc.location_id):
                    if not application.has_component(component):
                        continue
                    profile = application.component(component).resources
                    rps = 0.0
                    for api_name, count in counts.items():
                        ops = op_counts.get(api_name, {}).get(component, 0)
                        rps += ops * count / (self.window_ms / 1_000.0)
                    demand += profile.expected_cpu(rps)
                rho = demand / capacity if capacity > 0 else float("inf")
                self._factors[(dc.location_id, w)] = self._slowdown_for(rho)

    def _slowdown_for(self, rho: float) -> float:
        if rho <= self.knee:
            return 1.0
        factor = 1.0 + self.slope * (rho - self.knee) ** 2
        if rho > 1.0:
            factor += self.slope * (rho - 1.0)
        return min(factor, self.max_slowdown)

    def __call__(self, location: int, time_ms: float) -> float:
        window = int(time_ms // self.window_ms)
        return self._factors.get((location, window), 1.0)

    def peak_utilization_factor(self) -> float:
        """Largest slowdown factor seen anywhere (diagnostic)."""
        return max(self._factors.values(), default=1.0)


@dataclass
class SimulationResult:
    """Outcome of simulating one workload under one migration plan."""

    application: Application
    plan: MigrationPlan
    telemetry: TelemetryServer
    outcomes: List[RequestOutcome]
    window_ms: float

    # -- derived views ---------------------------------------------------------------
    def api_latencies(self) -> Dict[str, List[float]]:
        latencies: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            latencies.setdefault(outcome.request.api, []).append(outcome.latency_ms)
        return latencies

    def mean_latency(self, api: str) -> float:
        values = [o.latency_ms for o in self.outcomes if o.request.api == api]
        if not values:
            raise KeyError(f"no requests observed for API {api!r}")
        return float(statistics.fmean(values))

    def latency_percentile(self, api: str, pct: float) -> float:
        values = [o.latency_ms for o in self.outcomes if o.request.api == api]
        if not values:
            raise KeyError(f"no requests observed for API {api!r}")
        return float(np.percentile(values, pct))

    def mean_latencies(self) -> Dict[str, float]:
        return {api: float(statistics.fmean(v)) for api, v in self.api_latencies().items()}

    def failure_rate(self, api: Optional[str] = None) -> float:
        pool = [
            o for o in self.outcomes if api is None or o.request.api == api
        ]
        if not pool:
            return 0.0
        return sum(1 for o in pool if o.failed) / len(pool)

    def request_count(self, api: Optional[str] = None) -> int:
        return sum(1 for o in self.outcomes if api is None or o.request.api == api)

    def cross_dc_invocations(self) -> int:
        return sum(o.cross_dc_invocations for o in self.outcomes)


def _add_idle_usage(
    application: Application,
    telemetry: TelemetryServer,
    requests: Sequence[ApiRequest],
) -> None:
    """Add idle CPU/memory baselines so metrics reflect total (not just busy) usage."""
    windows = telemetry.metrics.windows()
    if not windows:
        return
    op_counts = component_operation_counts(application)
    window_s = telemetry.window_ms / 1_000.0
    # Requests per API per window, to derive per-component rps for memory scaling.
    api_counts: Dict[int, Dict[str, int]] = {}
    for req in requests:
        w = telemetry.metrics.window_of(req.time_ms)
        api_counts.setdefault(w, {}).setdefault(req.api, 0)
        api_counts[w][req.api] += 1
    for component in application.components:
        profile = component.resources
        for w in windows:
            counts = api_counts.get(w, {})
            rps = sum(
                op_counts.get(api_name, {}).get(component.name, 0) * count / window_s
                for api_name, count in counts.items()
            )
            telemetry.metrics.record(
                component.name,
                w * telemetry.window_ms,
                cpu_millicores=profile.cpu_millicores_idle,
                memory_mb=profile.expected_memory(rps),
            )


def simulate_workload(
    application: Application,
    requests: Sequence[ApiRequest],
    plan: Optional[MigrationPlan] = None,
    cluster: Optional[HybridCluster] = None,
    network: Optional[NetworkModel] = None,
    telemetry_window_ms: float = 5_000.0,
    contention: bool = True,
    seed: int = 23,
) -> SimulationResult:
    """Execute a request stream and return telemetry plus per-request outcomes.

    ``plan`` defaults to the all-on-prem placement, ``cluster`` to the paper's
    two-datacenter setup and ``network`` to its measured link characteristics.
    """
    if plan is None:
        plan = MigrationPlan.all_on_prem(application.component_names)
    cluster = cluster or default_hybrid_cluster()
    network = network or default_network_model()
    telemetry = TelemetryServer(window_ms=telemetry_window_ms)
    requests = sorted(requests, key=lambda r: r.time_ms)
    slowdown = (
        ContentionModel(application, plan, cluster, requests) if contention else None
    )
    engine = SimulationEngine(
        application=application,
        plan=plan,
        network=network,
        telemetry=telemetry,
        slowdown=slowdown,
        seed=seed,
    )
    outcomes = [engine.execute(req) for req in requests]
    _add_idle_usage(application, telemetry, requests)
    return SimulationResult(
        application=application,
        plan=plan,
        telemetry=telemetry,
        outcomes=outcomes,
        window_ms=telemetry_window_ms,
    )
