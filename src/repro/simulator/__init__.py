"""Execution simulator: the ground-truth substrate replacing the paper's testbed."""

from .engine import RequestOutcome, SimulationEngine
from .run import (
    ContentionModel,
    SimulationResult,
    component_operation_counts,
    simulate_workload,
)

__all__ = [
    "SimulationEngine",
    "RequestOutcome",
    "ContentionModel",
    "SimulationResult",
    "component_operation_counts",
    "simulate_workload",
]
