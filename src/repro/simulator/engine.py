"""Request execution engine.

This is the ground-truth substrate that replaces the paper's Kubernetes/CloudLab
testbed: it executes the call tree of an API request under a concrete
:class:`~repro.cluster.placement.MigrationPlan`, charging network transfer time for
every invocation whose caller and callee live in different datacenters, and emits the
same telemetry a real deployment would (spans, component metrics, mesh byte counters).

Execution semantics of a :class:`~repro.apps.model.CallNode` (mirrors Figure 6):

* the node performs ``(1 - post_work_fraction) * work_ms`` of local work,
* then issues its child invocations in declaration order —
  consecutive *parallel* children share a fork point and run concurrently,
  a *sequential* child waits for every previously issued foreground child,
  a *background* child is fired but never delays the node's completion,
* finally the node performs the remaining local work and returns.

Each invocation costs a request transfer before the child starts and a response
transfer before the parent observes completion, both computed by the
:class:`~repro.cluster.network.NetworkModel` from the sampled payload sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..apps.model import Application, CallNode, ExecutionMode
from ..cluster.network import NetworkModel
from ..cluster.placement import MigrationPlan
from ..telemetry.server import TelemetryServer
from ..telemetry.tracing import Span, Trace, new_trace_id
from ..workload.generator import ApiRequest

__all__ = ["RequestOutcome", "SimulationEngine", "SlowdownModel"]

#: Signature of the CPU-contention slowdown callback: (location, time_ms) -> factor >= 1.
SlowdownModel = Callable[[int, float], float]


@dataclass
class RequestOutcome:
    """Result of executing one API request."""

    request: ApiRequest
    trace: Trace
    latency_ms: float
    failed: bool = False
    cross_dc_invocations: int = 0


class SimulationEngine:
    """Executes API requests against an application + placement and records telemetry."""

    def __init__(
        self,
        application: Application,
        plan: MigrationPlan,
        network: NetworkModel,
        telemetry: Optional[TelemetryServer] = None,
        slowdown: Optional[SlowdownModel] = None,
        seed: int = 23,
        failure_latency_ms: float = 10_000.0,
    ) -> None:
        missing = set(application.component_names) - set(plan.components)
        if missing:
            raise ValueError(f"plan is missing components: {sorted(missing)}")
        self.application = application
        self.plan = plan
        self.network = network
        self.telemetry = telemetry if telemetry is not None else TelemetryServer()
        self.slowdown = slowdown or (lambda _loc, _t: 1.0)
        self.failure_latency_ms = failure_latency_ms
        self._rng = np.random.default_rng(seed)
        self._span_counter = itertools.count(1)

    # -- public API -----------------------------------------------------------------
    def execute(self, request: ApiRequest) -> RequestOutcome:
        """Execute one request, record its telemetry and return the outcome."""
        api = self.application.api(request.api)
        trace_id = new_trace_id()
        spans: List[Span] = []
        stats = {"cross_dc": 0}
        root_start = request.time_ms
        root_end = self._execute_node(
            node=api.root,
            parent_location=None,
            start_ms=root_start,
            request=request,
            trace_id=trace_id,
            parent_span_id=None,
            spans=spans,
            stats=stats,
            extra_work_ms=request.extra_work_ms,
        )
        trace = Trace(trace_id, request.api, spans)
        self.telemetry.ingest_trace(trace)
        latency = root_end - root_start
        failed = latency >= self.failure_latency_ms
        return RequestOutcome(
            request=request,
            trace=trace,
            latency_ms=latency,
            failed=failed,
            cross_dc_invocations=stats["cross_dc"],
        )

    # -- internals ----------------------------------------------------------------------
    def _next_span_id(self) -> str:
        return f"span-{next(self._span_counter):010d}"

    def _sample_work_ms(self, node: CallNode, location: int, time_ms: float) -> float:
        noise = self._rng.normal(1.0, node.work_cv) if node.work_cv > 0 else 1.0
        factor = self.slowdown(location, time_ms)
        if factor < 1.0:
            factor = 1.0
        return max(0.0, node.work_ms * max(noise, 0.1) * factor)

    def _execute_node(
        self,
        node: CallNode,
        parent_location: Optional[int],
        start_ms: float,
        request: ApiRequest,
        trace_id: str,
        parent_span_id: Optional[str],
        spans: List[Span],
        stats: Dict[str, int],
        extra_work_ms: float = 0.0,
    ) -> float:
        """Execute one call-tree node starting at ``start_ms``.

        ``start_ms`` is the time at which the node begins processing (i.e. after the
        request transfer from the parent).  Returns the node's internal end time; the
        caller adds the response transfer.
        """
        location = self.plan[node.component]
        span_id = self._next_span_id()
        total_work = self._sample_work_ms(node, location, start_ms) + extra_work_ms
        pre_work = total_work * (1.0 - node.post_work_fraction)
        post_work = total_work * node.post_work_fraction

        cursor = start_ms + pre_work
        parallel_ends: List[float] = []

        for spec in node.calls:
            child = spec.node
            child_location = self.plan[child.component]
            req_bytes, resp_bytes = child.payload.sample(self._rng)
            req_bytes *= request.payload_scale
            resp_bytes *= request.payload_scale
            cross_dc = child_location != location
            if cross_dc:
                stats["cross_dc"] += 1

            if spec.mode is ExecutionMode.SEQUENTIAL and parallel_ends:
                cursor = max(cursor, max(parallel_ends))
                parallel_ends = []

            issue_time = cursor + spec.gap_ms
            request_transfer = self.network.transfer_time_ms(location, child_location, req_bytes)
            child_start = issue_time + request_transfer
            child_end = self._execute_node(
                node=child,
                parent_location=location,
                start_ms=child_start,
                request=request,
                trace_id=trace_id,
                parent_span_id=span_id,
                spans=spans,
                stats=stats,
            )
            response_transfer = self.network.transfer_time_ms(
                child_location, location, resp_bytes
            )
            observed_end = child_end + response_transfer

            self._record_invocation(
                caller=node.component,
                callee=child.component,
                time_ms=issue_time,
                request_bytes=req_bytes,
                response_bytes=resp_bytes,
            )

            if spec.mode is ExecutionMode.PARALLEL:
                parallel_ends.append(observed_end)
            elif spec.mode is ExecutionMode.SEQUENTIAL:
                cursor = observed_end
            # BACKGROUND children neither update the cursor nor join parallel_ends.

        if parallel_ends:
            cursor = max(cursor, max(parallel_ends))
        end_ms = cursor + post_work

        spans.append(
            Span(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent_span_id,
                component=node.component,
                operation=node.operation,
                start_ms=start_ms,
                duration_ms=end_ms - start_ms,
            )
        )
        # Convert CPU-milliseconds of work into the average millicores contributed to the
        # enclosing metrics window (1 ms of busy CPU over a window of W ms = 1000/W mc).
        cpu_millicores = total_work / self.telemetry.window_ms * 1000.0
        self.telemetry.metrics.record(
            node.component,
            start_ms,
            cpu_millicores=cpu_millicores,
            requests=1.0,
        )
        return end_ms

    def _record_invocation(
        self,
        caller: str,
        callee: str,
        time_ms: float,
        request_bytes: float,
        response_bytes: float,
    ) -> None:
        self.telemetry.mesh.record(caller, callee, time_ms, request_bytes, response_bytes)
        self.telemetry.metrics.record(
            caller, time_ms, egress_bytes=request_bytes, ingress_bytes=response_bytes
        )
        self.telemetry.metrics.record(
            callee, time_ms, ingress_bytes=request_bytes, egress_bytes=response_bytes
        )
