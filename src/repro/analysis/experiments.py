"""Experiment pipelines reproducing every figure of the paper's evaluation.

Each ``figure*`` function runs one experiment on a :class:`~repro.analysis.testbed.Testbed`
and returns plain dictionaries / row lists, which the corresponding benchmark under
``benchmarks/`` prints (and asserts the headline shape of).  The mapping between
functions and paper artifacts is listed in DESIGN.md's per-experiment index.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.placement import MigrationPlan
from ..cluster.topology import CLOUD, ON_PREM
from ..monitoring.drift import DriftReport
from ..optimizer.atlas_ga import AtlasGA, GAConfig, SearchResult
from ..optimizer.baselines import (
    AffinityNSGA2Baseline,
    GreedyBusiestBaseline,
    GreedySmallestBaseline,
    IntMABaseline,
    RandomSearchBaseline,
    REMaPBaseline,
)
from ..optimizer.drl.agent import CrossoverAgent
from ..optimizer.pareto import pareto_front
from ..quality.evaluator import PlanQuality, QualityEvaluator
from ..quality.scenarios import ScenarioSet, ScenarioSpec
from ..recommend.advisor import Recommendation
from ..simulator.run import simulate_workload
from ..workload.generator import ApiRequest, WorkloadGenerator, default_scenario
from ..workload.profiles import BehaviorChange
from .testbed import Testbed

__all__ = [
    "MethodResult",
    "run_methods",
    "figure2_burst_motivation",
    "figure3_poor_choice",
    "figure7_latency_distribution",
    "figure11_single_plan",
    "figure12_14_optimized_plans",
    "figure15_pareto_front",
    "figure16_personalization",
    "figure17_drift_detection",
    "figure18_latency_estimation",
    "figure19_footprint_register",
    "figure20_footprint_accuracy",
    "figure21_drl_vs_nsga2",
    "figure22_breach_detection",
    "scalability_report",
    "measure_real_footprint",
]

SINGLE_PLAN_METHODS = ("greedy-largest", "greedy-smallest", "remap", "intma")
MULTI_PLAN_METHODS = ("atlas", "affinity-ga", "random-search")


# ---------------------------------------------------------------------------
# Method execution
# ---------------------------------------------------------------------------

@dataclass
class MethodResult:
    """Plans recommended by one method, all re-evaluated under a shared evaluator.

    ``internal_objectives`` holds the method's *own* objective values per plan (e.g. the
    affinity GA's cross-datacenter traffic and cost).  When present, they drive the
    selection of that method's "X-optimized" plan, mirroring how an owner using that
    method would pick a plan — without access to Atlas's quality model.
    """

    name: str
    plans: List[PlanQuality]
    recommendation: Optional[Recommendation] = None
    wall_clock_s: float = 0.0
    internal_objectives: Optional[List[Tuple[float, ...]]] = None

    def best_by(self, objective_index: int) -> PlanQuality:
        feasible = [q for q in self.plans if q.feasible] or self.plans
        if not feasible:
            raise ValueError(f"method {self.name} produced no plans")
        if (
            self.internal_objectives is not None
            and len(self.internal_objectives) == len(self.plans)
            and objective_index in (0, 2)
        ):
            # 0 -> the method's performance proxy, 2 -> the method's cost objective.
            internal_index = 0 if objective_index == 0 else 1
            paired = [
                (quality, internal)
                for quality, internal in zip(self.plans, self.internal_objectives)
                if quality.feasible
            ] or list(zip(self.plans, self.internal_objectives))
            return min(paired, key=lambda qi: qi[1][internal_index])[0]
        return min(feasible, key=lambda q: q.objectives()[objective_index])

    def performance_optimized(self) -> PlanQuality:
        return self.best_by(0)

    def availability_optimized(self) -> PlanQuality:
        return self.best_by(1)

    def cost_optimized(self) -> PlanQuality:
        return self.best_by(2)


def run_methods(
    testbed: Testbed,
    methods: Sequence[str] = SINGLE_PLAN_METHODS + MULTI_PLAN_METHODS,
    search_budget: Optional[int] = None,
    reference_evaluator: Optional[QualityEvaluator] = None,
) -> Dict[str, MethodResult]:
    """Run Atlas and the requested baselines; return plans under one shared evaluator."""
    reference = reference_evaluator or testbed.evaluator()
    budget = search_budget or testbed.atlas.config.ga.evaluation_budget
    results: Dict[str, MethodResult] = {}

    for name in methods:
        start = time.perf_counter()
        recommendation: Optional[Recommendation] = None
        internal_objectives: Optional[List[Tuple[float, ...]]] = None
        if name == "atlas":
            ga_config = GAConfig(
                population_size=testbed.atlas.config.ga.population_size,
                offspring_per_generation=testbed.atlas.config.ga.offspring_per_generation,
                evaluation_budget=budget,
                train_iterations=testbed.atlas.config.ga.train_iterations,
                train_batch_size=testbed.atlas.config.ga.train_batch_size,
                train_pairs=testbed.atlas.config.ga.train_pairs,
                seed=testbed.atlas.config.ga.seed,
            )
            recommendation = testbed.atlas.recommend(
                expected_scale=testbed.expected_scale, ga_config=ga_config
            )
            plans = [q.plan for q in recommendation.plans]
        elif name in ("affinity-ga", "random-search", *SINGLE_PLAN_METHODS):
            search_eval = testbed.evaluator()
            context = testbed.baseline_context(search_eval)
            if name == "greedy-largest":
                plans = [GreedyBusiestBaseline(context).recommend()]
            elif name == "greedy-smallest":
                plans = [GreedySmallestBaseline(context).recommend()]
            elif name == "remap":
                plans = [REMaPBaseline(context).recommend()]
            elif name == "intma":
                plans = [IntMABaseline(context).recommend()]
            elif name == "affinity-ga":
                affinity_result = AffinityNSGA2Baseline(
                    context, evaluation_budget=budget, seed=testbed.seed
                ).recommend()
                plans = affinity_result.plans
                internal_objectives = [tuple(obj) for obj in affinity_result.objectives]
            else:  # random-search
                qualities = RandomSearchBaseline(
                    context, evaluation_budget=budget, seed=testbed.seed
                ).recommend()
                plans = [q.plan for q in qualities]
        else:
            raise ValueError(f"unknown method {name!r}")
        # One batched pass through the shared reference evaluator (identical to
        # per-plan evaluate calls, including cache/counter behaviour).
        evaluated = reference.evaluate_batch(plans)
        results[name] = MethodResult(
            name=name,
            plans=evaluated,
            recommendation=recommendation,
            wall_clock_s=time.perf_counter() - start,
            internal_objectives=internal_objectives,
        )
    return results


# ---------------------------------------------------------------------------
# Figure 2 / Figure 3 — motivation
# ---------------------------------------------------------------------------

def figure2_burst_motivation(testbed: Testbed) -> Dict[str, object]:
    """Latency spikes and failures when the burst hits an all-on-prem deployment.

    The burst is expressed as a *scenario*: the advisor's own quality stack scores
    the all-on-prem placement over the (observed, burst) scenario axis in one
    ``evaluate_vectors`` call — the burst scenario's violated on-prem capacity
    constraint is the formal statement of the figure's motivation — and the measured
    rows re-simulate the burst as ground truth, as before.
    """
    scenario_set = testbed.scenario_set()
    evaluator = testbed.evaluator(scale=1.0)
    baseline_vector = testbed.baseline_plan.to_vector()
    robust = evaluator.evaluate_vectors([baseline_vector], scenarios=scenario_set)[0]
    scenario_rows: List[Dict[str, object]] = [
        {
            "scenario": scenario.scenario,
            "perf": scenario.perf,
            "avail": scenario.avail,
            "cost": scenario.cost,
            "feasible": scenario.feasible,
            "violations": "; ".join(scenario.violations),
        }
        for scenario in robust.scenarios
    ]

    burst = testbed.measure_plan(testbed.baseline_plan)
    reference = testbed.no_stress_latencies()
    rows: List[Dict[str, object]] = []
    for api in sorted(reference):
        rows.append(
            {
                "api": api,
                "latency_1x_ms": reference[api],
                "latency_burst_ms": burst.mean_latency(api),
                "slowdown": burst.mean_latency(api) / reference[api],
                "failure_rate_burst": burst.failure_rate(api),
            }
        )
    return {
        "rows": rows,
        "scenario_rows": scenario_rows,
        "onprem_feasible_under_burst": robust.feasible,
    }


def figure3_poor_choice(
    testbed: Testbed, methods: Optional[Dict[str, MethodResult]] = None
) -> List[Dict[str, object]]:
    """A poor offloading choice degrades APIs far more than Atlas's recommendation."""
    methods = methods or run_methods(testbed, methods=("atlas", "greedy-largest"))
    atlas_plan = methods["atlas"].performance_optimized().plan
    poor_plan = methods["greedy-largest"].plans[0].plan
    atlas_measown = testbed.measure_plan(atlas_plan)
    poor_meas = testbed.measure_plan(poor_plan)
    reference = testbed.no_stress_latencies()
    rows = []
    for api in sorted(reference):
        rows.append(
            {
                "api": api,
                "poor_choice_slowdown": poor_meas.mean_latency(api) / reference[api],
                "atlas_slowdown": atlas_measown.mean_latency(api) / reference[api],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 7 / Figure 18 — latency estimation accuracy
# ---------------------------------------------------------------------------

def figure7_latency_distribution(
    testbed: Testbed,
    recommendation: Recommendation,
    api: str = "/homeTimeline",
) -> Dict[str, object]:
    """Estimated post-migration latency distribution vs. the measured one."""
    plan = recommendation.performance_optimized().plan
    estimated = recommendation.latency_preview(plan)[api].estimated_latencies_ms
    measured = [
        outcome.latency_ms
        for outcome in testbed.measure_plan(plan, scale=1.0).outcomes
        if outcome.request.api == api
    ]
    return {
        "api": api,
        "estimated_latencies_ms": estimated,
        "measured_latencies_ms": measured,
        "estimated_mean_ms": float(np.mean(estimated)) if estimated else 0.0,
        "measured_mean_ms": float(np.mean(measured)) if measured else 0.0,
    }


def figure18_latency_estimation(
    testbed: Testbed, methods: Dict[str, MethodResult]
) -> List[Dict[str, object]]:
    """Per-API estimated vs. measured latency for the perf- and cost-optimized plans."""
    atlas = methods["atlas"]
    rows: List[Dict[str, object]] = []
    for label, quality in (
        ("performance-optimized", atlas.performance_optimized()),
        ("cost-optimized", atlas.cost_optimized()),
    ):
        preview = atlas.recommendation.latency_preview(quality.plan)
        measured = testbed.measure_plan(quality.plan, scale=1.0).mean_latencies()
        for api in sorted(preview):
            if api not in measured:
                continue
            estimate = preview[api].estimated_mean_ms
            rows.append(
                {
                    "plan": label,
                    "api": api,
                    "estimated_ms": estimate,
                    "measured_ms": measured[api],
                    "error_ms": abs(estimate - measured[api]),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 11-14 — comparison with single- and multi-plan approaches
# ---------------------------------------------------------------------------

def figure11_single_plan(
    testbed: Testbed, methods: Dict[str, MethodResult]
) -> Dict[str, object]:
    """Measured per-API latency and daily cost: Atlas vs the four single-plan methods."""
    reference = testbed.no_stress_latencies()
    evaluator = testbed.evaluator()
    selected = {"atlas": methods["atlas"].performance_optimized().plan}
    for name in SINGLE_PLAN_METHODS:
        if name in methods:
            selected[name] = methods[name].plans[0].plan
    latency_rows: List[Dict[str, object]] = []
    cost_rows: List[Dict[str, object]] = []
    measured: Dict[str, Dict[str, float]] = {}
    for name, plan in selected.items():
        result = testbed.measure_plan(plan)
        measured[name] = result.mean_latencies()
        cost_rows.append(
            {
                "method": name,
                "cost_per_day_usd": evaluator.cost.estimate_cost(plan).per_day_usd(),
                "offloaded_components": len(plan.offloaded()),
            }
        )
    for api in sorted(reference):
        row: Dict[str, object] = {"api": api, "baseline_ms": reference[api]}
        for name in selected:
            row[f"{name}_ms"] = measured[name].get(api, float("nan"))
        latency_rows.append(row)
    return {"latency_rows": latency_rows, "cost_rows": cost_rows}


def figure12_14_optimized_plans(
    testbed: Testbed,
    methods: Dict[str, MethodResult],
    objective: str = "performance",
    measure: bool = True,
) -> List[Dict[str, object]]:
    """Figures 12 (performance-), 13 (availability-) and 14 (cost-) optimized plans.

    For every method we pick its best plan for the requested objective and report all
    three quality aspects: the API performance impact factor (estimated and, optionally,
    measured on the simulator), the number of disrupted APIs and the daily cost.
    """
    index = {"performance": 0, "availability": 1, "cost": 2}[objective]
    evaluator = testbed.evaluator()
    rows: List[Dict[str, object]] = []
    for name, result in methods.items():
        quality = result.best_by(index)
        plan = quality.plan
        row: Dict[str, object] = {
            "method": name,
            "estimated_impact_factor": statistics.fmean(
                evaluator.performance.impact_factors(plan).values()
            ),
            "disrupted_apis": len(evaluator.availability.disrupted_apis(plan)),
            "cost_per_day_usd": evaluator.cost.estimate_cost(plan).per_day_usd(),
            "offloaded_components": len(plan.offloaded()),
        }
        if measure:
            measured = testbed.measure_plan(plan)
            row["measured_impact_factor"] = testbed.measured_impact_factor(measured)
        rows.append(row)
    return rows


def figure15_pareto_front(
    testbed: Testbed, methods: Dict[str, MethodResult]
) -> Dict[str, List[Tuple[float, float]]]:
    """Cost-vs-performance Pareto fronts of the multi-plan approaches."""
    fronts: Dict[str, List[Tuple[float, float]]] = {}
    for name in MULTI_PLAN_METHODS:
        if name not in methods:
            continue
        points = [
            (q.perf, q.cost) for q in methods[name].plans if q.feasible
        ]
        front = pareto_front(points, key=lambda p: p)
        fronts[name] = sorted(front)
    return fronts


# ---------------------------------------------------------------------------
# Figure 16 — personalized recommendations
# ---------------------------------------------------------------------------

def figure16_personalization(
    testbed: Testbed,
    scenarios: Mapping[str, Sequence[str]],
    search_budget: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Estimated per-API latency of the performance-optimized plan per critical-API set."""
    reference = testbed.no_stress_latencies()
    rows: List[Dict[str, object]] = []
    previews: Dict[str, Dict[str, float]] = {}
    critical_sets: Dict[str, Sequence[str]] = {}
    for label, critical in scenarios.items():
        prefs = testbed.preferences.with_critical_apis(list(critical))
        recommendation = testbed.atlas.recommend(
            expected_scale=testbed.expected_scale,
            preferences=prefs,
            ga_config=_scaled_ga_config(testbed, search_budget),
        )
        plan = recommendation.performance_optimized().plan
        preview = recommendation.latency_preview(plan)
        previews[label] = {api: est.estimated_mean_ms for api, est in preview.items()}
        critical_sets[label] = critical
    for api in sorted(reference):
        row: Dict[str, object] = {"api": api, "no_stress_ms": reference[api]}
        for label in scenarios:
            row[f"{label}_ms"] = previews[label].get(api, float("nan"))
            row[f"{label}_critical"] = api in critical_sets[label]
        rows.append(row)
    return rows


def _scaled_ga_config(testbed: Testbed, budget: Optional[int]) -> GAConfig:
    base = testbed.atlas.config.ga
    if budget is None:
        return base
    return GAConfig(
        population_size=base.population_size,
        offspring_per_generation=base.offspring_per_generation,
        evaluation_budget=budget,
        train_iterations=base.train_iterations,
        train_batch_size=base.train_batch_size,
        train_pairs=base.train_pairs,
        seed=base.seed,
    )


# ---------------------------------------------------------------------------
# Figure 17 — post-migration monitoring
# ---------------------------------------------------------------------------

def figure17_drift_detection(
    testbed: Testbed,
    recommendation: Optional[Recommendation] = None,
    drift_api: str = "/composePost",
    payload_scale: float = 3.0,
) -> Dict[str, object]:
    """User behaviour changes mid-day; Atlas detects the drift and re-optimizes."""
    if recommendation is None:
        recommendation = testbed.atlas.recommend(expected_scale=testbed.expected_scale)
    executed = recommendation.performance_optimized().plan

    # Right after the migration: measure the plan under unchanged behaviour (b_real).
    post_migration = testbed.measure_plan(executed, scale=1.0)
    measured_latencies = post_migration.api_latencies()
    detector = testbed.atlas.drift_detector(recommendation, executed, measured_latencies)

    # Later, users become mention-happy: /composePost payloads grow mid-day.
    duration = testbed.scenario.profile.duration_ms
    change = BehaviorChange(
        start_ms=duration / 2.0, apis=[drift_api], payload_scale=payload_scale
    )
    drift_scenario = default_scenario(
        testbed.application,
        base_rps=testbed.scenario.profile.base_rps,
        peak_rps=testbed.scenario.profile.peak_rps,
        duration_ms=duration,
        name="behaviour-drift",
    )
    drift_scenario.changes.append(change)
    drift_requests = WorkloadGenerator(
        testbed.application, drift_scenario, seed=testbed.seed + 5
    ).generate(duration)
    drifted = testbed.measure_plan(executed, requests=drift_requests)

    before = [
        o.latency_ms
        for o in drifted.outcomes
        if o.request.api == drift_api and o.request.time_ms < change.start_ms
    ]
    after = [
        o.latency_ms
        for o in drifted.outcomes
        if o.request.api == drift_api and o.request.time_ms >= change.start_ms
    ]
    report_before = detector.check(drift_api, before) if before else None
    report_after = detector.check(drift_api, after) if after else None

    # Drift → scenario bridge: the detector compiles the drifted behaviour into a
    # refreshed WorkloadScenario, and the stale evaluator caches (the drifted API's
    # compiled projections and every result depending on them) are dropped.
    update = detector.check_all(
        {drift_api: after} if after else {}, scenario=testbed.scenario
    )
    refreshed_scenario = update.scenario
    scenarios = None
    if refreshed_scenario is not None:
        scenarios = ScenarioSet(
            (
                ScenarioSpec(name="observed"),
                ScenarioSpec.from_workload(
                    refreshed_scenario, testbed.scenario, name="drift"
                ),
            )
        )
    rescored_executed = None
    if update.drifted_apis:
        recommendation.evaluator.invalidate_for_scenario(apis=update.drifted_apis)
        # Re-score the executed plan through the invalidated caches over the
        # (observed, drifted) scenario axis — the cheap first response before the
        # full re-learning round below (the incremental-recompilation path).
        if scenarios is not None:
            rescored_executed = recommendation.evaluator.evaluate_batch(
                [executed], scenarios=scenarios
            )[0]

    # New round: learn from the drifted telemetry and re-optimize from the executed
    # plan — scenario-robustly when the detector emitted a refreshed scenario, so the
    # new plan stays good for both the observed mix and the drifted one.
    new_atlas = testbed.atlas.__class__(
        testbed.application,
        testbed.preferences,
        network=testbed.network,
        config=testbed.atlas.config,
        current_plan=executed,
    )
    new_atlas.learn(drifted.telemetry)
    new_recommendation = new_atlas.recommend(expected_scale=1.0, scenarios=scenarios)
    new_plan = new_recommendation.performance_optimized().plan
    reoptimized = testbed.measure_plan(new_plan, requests=drift_requests, seed_offset=3)
    reoptimized_after = [
        o.latency_ms
        for o in reoptimized.outcomes
        if o.request.api == drift_api and o.request.time_ms >= change.start_ms
    ]

    return {
        "api": drift_api,
        "post_migration_mean_ms": float(np.mean(measured_latencies[drift_api])),
        "before_change_mean_ms": float(np.mean(before)) if before else float("nan"),
        "after_change_mean_ms": float(np.mean(after)) if after else float("nan"),
        "report_before": report_before,
        "report_after": report_after,
        "reoptimized_mean_ms": (
            float(np.mean(reoptimized_after)) if reoptimized_after else float("nan")
        ),
        "executed_plan": executed,
        "new_plan": new_plan,
        "drifted_apis": update.drifted_apis,
        "refreshed_scenario": refreshed_scenario,
        "rescored_executed": rescored_executed,
        "scenario_robust_reoptimization": scenarios is not None,
    }


# ---------------------------------------------------------------------------
# Figure 19 / 20 — network footprint accuracy
# ---------------------------------------------------------------------------

def measure_real_footprint(
    testbed: Testbed, api: str, requests: int = 200
) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Ground-truth per-invocation request/response sizes via a single-API custom workload."""
    stream = [
        ApiRequest(time_ms=50.0 * i, api=api, payload_scale=1.0) for i in range(requests)
    ]
    result = simulate_workload(
        testbed.application,
        stream,
        cluster=testbed.cluster,
        network=testbed.network,
        contention=False,
        seed=testbed.seed + 11,
    )
    telemetry = result.telemetry
    invocations = telemetry.invocation_counts(api)
    real: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for pair, counts in invocations.items():
        total_invocations = sum(counts.values())
        if total_invocations == 0:
            continue
        req = sum(telemetry.mesh.request_series(*pair))
        resp = sum(telemetry.mesh.response_series(*pair))
        real[pair] = (req / total_invocations, resp / total_invocations)
    return real


def figure19_footprint_register(
    testbed: Testbed, api: str = "/register"
) -> List[Dict[str, object]]:
    """Learned vs real request/response sizes for every edge of one API."""
    footprint = testbed.atlas.knowledge.footprint
    real = measure_real_footprint(testbed, api)
    rows: List[Dict[str, object]] = []
    for (src, dst), (real_req, real_resp) in sorted(real.items()):
        rows.append(
            {
                "edge": f"{src}->{dst}",
                "estimated_request_bytes": footprint.request_bytes(api, src, dst),
                "real_request_bytes": real_req,
                "estimated_response_bytes": footprint.response_bytes(api, src, dst),
                "real_response_bytes": real_resp,
            }
        )
    return rows


def figure20_footprint_accuracy(testbed: Testbed) -> List[Dict[str, object]]:
    """Footprint accuracy per API (percentage, as in Figure 20)."""
    footprint = testbed.atlas.knowledge.footprint
    reference = {
        api: measure_real_footprint(testbed, api, requests=150)
        for api in testbed.application.api_names
    }
    accuracy = footprint.accuracy_against(reference)
    return [
        {"api": api, "accuracy_pct": accuracy.get(api, 0.0)}
        for api in sorted(accuracy)
    ]


# ---------------------------------------------------------------------------
# Figure 21 — effectiveness of the DRL-based GA
# ---------------------------------------------------------------------------

def figure21_drl_vs_nsga2(
    testbed: Testbed, evaluation_budget: Optional[int] = None
) -> Dict[str, object]:
    """Pareto fronts of Atlas's DRL-GA vs. plain NSGA-II, plus the reward curve."""
    budget = evaluation_budget or testbed.atlas.config.ga.evaluation_budget
    base = testbed.atlas.config.ga

    def make_config(crossover: str, seed: int) -> GAConfig:
        return GAConfig(
            population_size=base.population_size,
            offspring_per_generation=base.offspring_per_generation,
            evaluation_budget=budget,
            train_iterations=base.train_iterations,
            train_batch_size=base.train_batch_size,
            train_pairs=base.train_pairs,
            crossover=crossover,
            seed=seed,
        )

    drl_eval = testbed.evaluator()
    drl_result = AtlasGA(
        drl_eval,
        testbed.application.component_names,
        make_config("drl", base.seed),
        locations=testbed.locations,
    ).run()
    nsga_eval = testbed.evaluator()
    nsga_result = AtlasGA(
        nsga_eval,
        testbed.application.component_names,
        make_config("uniform", base.seed),
        locations=testbed.locations,
    ).run()
    return {
        "drl_front": sorted((q.perf, q.cost) for q in drl_result.pareto),
        "nsga2_front": sorted((q.perf, q.cost) for q in nsga_result.pareto),
        "drl_front_3d": [q.objectives() for q in drl_result.pareto],
        "nsga2_front_3d": [q.objectives() for q in nsga_result.pareto],
        "reward_curve": (
            drl_result.training_history.smoothed_rewards()
            if drl_result.training_history
            else []
        ),
        "drl_result": drl_result,
        "nsga2_result": nsga_result,
    }


# ---------------------------------------------------------------------------
# Figure 22 — data-breach detection
# ---------------------------------------------------------------------------

def figure22_breach_detection(
    testbed: Testbed,
    victim: str = "PostStorageMongoDB",
    accomplice: str = "PostStorageService",
    days: int = 3,
    breach_day: int = 2,
    exfiltrated_bytes: float = 5e7,
) -> Dict[str, object]:
    """Inject an exfiltration on one day and detect it from footprint expectations."""
    duration = testbed.scenario.profile.duration_ms
    generator = WorkloadGenerator(
        testbed.application, testbed.scenario, seed=testbed.seed + 21
    )
    requests = generator.generate(duration * days)
    result = simulate_workload(
        testbed.application,
        requests,
        cluster=testbed.cluster,
        network=testbed.network,
        seed=testbed.seed + 22,
    )
    telemetry = result.telemetry
    # The attacker copies data out of the victim store during the breach day, spread
    # over that day's windows.
    breach_start = breach_day * duration
    breach_windows = 10
    for i in range(breach_windows):
        telemetry.mesh.record(
            victim,
            accomplice,
            breach_start + i * (duration / breach_windows),
            request_bytes=0.0,
            response_bytes=exfiltrated_bytes / breach_windows,
        )

    detector = testbed.atlas.breach_detector()
    window_ms = telemetry.window_ms
    windows = telemetry.common_windows()
    counts_by_window: Dict[int, Dict[str, float]] = {w: {} for w in windows}
    request_counts = telemetry.traces.request_counts(window_ms)
    for api, buckets in request_counts.items():
        for bucket, count in buckets.items():
            counts_by_window.setdefault(bucket, {})[api] = float(count)
    pair = (victim, accomplice)
    reverse_pair = (accomplice, victim)
    observed_by_window: Dict[int, Dict[Tuple[str, str], float]] = {}
    for w in windows:
        observed_by_window[w] = {
            reverse_pair: (
                telemetry.mesh.request_bytes(*reverse_pair, w)
                + telemetry.mesh.response_bytes(*reverse_pair, w)
            ),
            pair: (
                telemetry.mesh.request_bytes(*pair, w)
                + telemetry.mesh.response_bytes(*pair, w)
            ),
        }
    anomalies = detector.scan(counts_by_window, observed_by_window)
    flagged_days = sorted({int(a.window * window_ms // duration) for a in anomalies})
    daily_observed: List[float] = []
    daily_expected: List[float] = []
    for day in range(days):
        day_windows = [w for w in windows if day * duration <= w * window_ms < (day + 1) * duration]
        observed = sum(sum(observed_by_window[w].values()) for w in day_windows)
        expected = 0.0
        for w in day_windows:
            exp = detector.expected_traffic(counts_by_window.get(w, {}))
            expected += exp.get(pair, 0.0) + exp.get(reverse_pair, 0.0)
        daily_observed.append(observed)
        daily_expected.append(expected)
    return {
        "anomalies": anomalies,
        "flagged_days": flagged_days,
        "breach_day": breach_day,
        "daily_observed_bytes": daily_observed,
        "daily_expected_bytes": daily_expected,
    }


# ---------------------------------------------------------------------------
# Scalability numbers (Section 5.6 / 6)
# ---------------------------------------------------------------------------

def scalability_report(testbed: Testbed, crossover_samples: int = 200) -> Dict[str, float]:
    """Training time, per-offspring inference time and end-to-end recommendation time."""
    evaluator = testbed.evaluator()
    ga = AtlasGA(
        evaluator,
        testbed.application.component_names,
        testbed.atlas.config.ga,
        locations=testbed.locations,
    )
    start = time.perf_counter()
    ga.train_agent()
    training_s = time.perf_counter() - start

    rng = np.random.default_rng(0)
    parents = [(ga._random_vector(), ga._random_vector()) for _ in range(crossover_samples)]
    start = time.perf_counter()
    for parent_a, parent_b in parents:
        ga.agent.crossover(parent_a, parent_b, rng)
    inference_ms = (time.perf_counter() - start) / crossover_samples * 1e3

    start = time.perf_counter()
    result = AtlasGA(
        testbed.evaluator(),
        testbed.application.component_names,
        testbed.atlas.config.ga,
        locations=testbed.locations,
    ).run()
    recommendation_s = time.perf_counter() - start
    return {
        "crossover_training_s": training_s,
        "crossover_inference_ms": inference_ms,
        "recommendation_s": recommendation_s,
        "plans_visited": float(result.evaluations),
        "pareto_plans": float(len(result.pareto)),
    }
