"""Evaluation testbed: the shared setup behind every experiment and benchmark.

The paper's evaluation deploys the applications on a two-datacenter hybrid cloud,
collects two days of telemetry for application learning, and then asks each method to
recommend a migration for a period in which the API traffic is 5x larger than observed
and exceeds the on-prem capacity.  :func:`build_testbed` reproduces that setup on the
simulator:

1. build the application and a compressed-day workload;
2. simulate it with every component on-prem to collect learning telemetry;
3. fit Atlas's knowledge (profiles, footprints, resource estimator);
4. derive the on-prem CPU limit from the expected burst so that the scaled traffic
   overshoots it (default limit fraction 0.8, i.e. ≈125% peak utilization; the paper
   reports 264%), making offloading mandatory;
5. pin the user-data stores on-prem, mirroring the paper's regulatory constraint.

Ground truth ("actual migration") is obtained by re-running the simulator with the
candidate plan applied and the scaled workload.

``build_testbed(n_locations=3)`` swaps the topology for the built-in three-location
testbed — on-prem plus two cloud regions with distinct pricing, network distances and
failure-domain weights — while keeping the same applications, workloads and learning
pipeline; ``n_locations=2`` (the default) reproduces the paper's setup bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..apps.model import Application
from ..apps.hotel_reservation import build_hotel_reservation
from ..apps.social_network import build_social_network
from ..cluster.network import (
    NetworkModel,
    default_multi_location_network,
    default_network_model,
)
from ..cluster.placement import MigrationPlan
from ..cluster.topology import (
    CLOUD,
    HybridCluster,
    NodeSpec,
    default_hybrid_cluster,
    default_multi_location_cluster,
)
from ..optimizer.atlas_ga import GAConfig
from ..optimizer.baselines import BaselineContext
from ..quality.cost import PricingCatalog
from ..quality.evaluator import QualityEvaluator
from ..quality.preferences import MigrationPreferences
from ..quality.scenarios import ScenarioSet
from ..recommend.advisor import Atlas, AtlasConfig
from ..simulator.run import SimulationResult, simulate_workload
from ..telemetry.server import TelemetryServer
from ..workload.generator import ApiRequest, WorkloadGenerator, default_scenario
from ..workload.profiles import BehaviorChange, WorkloadScenario

__all__ = [
    "Testbed",
    "build_testbed",
    "get_testbed",
    "PINNED_COMPONENTS",
    "multi_location_pricing",
]

#: Stateful components that must not leave the on-prem site (Section 5.1).
PINNED_COMPONENTS: Dict[str, List[str]] = {
    "social-network": ["UserMongoDB", "PostStorageMongoDB", "MediaMongoDB"],
    "hotel-reservation": ["UserMongoDB", "ReserveMongoDB"],
}


def multi_location_pricing(n_locations: int) -> Dict[int, PricingCatalog]:
    """Per-region pricing of the built-in N-location testbed.

    Location 1 ("cloud-east") uses the paper's Appendix A catalog; location 2+
    ("cloud-west", ...) are cheaper per node/GB but farther away — the classic
    price/latency trade-off the multi-region placement search has to navigate.
    """
    if n_locations < 2:
        raise ValueError("a testbed needs at least two locations")
    catalogs: Dict[int, PricingCatalog] = {CLOUD: PricingCatalog()}
    west = PricingCatalog(
        node_spec=NodeSpec(
            name="m5.large-west",
            cpu_millicores=2_000.0,
            memory_mb=8_192.0,
            hourly_price_usd=0.082,
        ),
        storage_usd_per_gb_month=0.068,
        egress_usd_per_gb=0.08,
    )
    for location in range(2, n_locations):
        catalogs[location] = west
    return catalogs


@dataclass
class Testbed:
    """Everything an experiment needs: app, workload, telemetry, learned Atlas, limits."""

    application: Application
    scenario: WorkloadScenario
    requests: List[ApiRequest]
    learning_result: SimulationResult
    atlas: Atlas
    preferences: MigrationPreferences
    cluster: HybridCluster
    network: NetworkModel
    expected_scale: float
    seed: int
    onprem_cpu_limit: float
    _scaled_requests: Dict[float, List[ApiRequest]] = field(default_factory=dict)
    _no_stress_latencies: Optional[Dict[str, float]] = None

    # -- derived accessors -----------------------------------------------------------------
    @property
    def telemetry(self) -> TelemetryServer:
        return self.learning_result.telemetry

    @property
    def locations(self) -> List[int]:
        """Location ids of the testbed topology (``[0, 1]`` for the paper's 2-DC setup)."""
        return self.cluster.location_ids

    @property
    def baseline_plan(self) -> MigrationPlan:
        return MigrationPlan.all_on_prem(self.application.component_names)

    def evaluator(
        self, preferences: Optional[MigrationPreferences] = None, scale: Optional[float] = None
    ) -> QualityEvaluator:
        """A fresh quality evaluator for the testbed's period of interest."""
        return self.atlas.build_evaluator(
            expected_scale=scale if scale is not None else self.expected_scale,
            preferences=preferences or self.preferences,
        )

    def baseline_context(self, evaluator: QualityEvaluator) -> BaselineContext:
        return self.atlas.baseline_context(evaluator)

    def scenario_set(
        self,
        scales: Optional[Sequence[float]] = None,
        include_baseline: bool = True,
    ) -> ScenarioSet:
        """The testbed's workload family as a scenario axis.

        Defaults to the paper's evaluation setting expressed as scenarios: the
        observed workload plus one burst scenario at ``expected_scale``.  Use it with
        an evaluator built at scale 1 (``testbed.evaluator(scale=1.0)``) or
        ``atlas.recommend(expected_scale=1.0, scenarios=...)`` so the burst rides the
        scenario axis instead of being baked into the period of interest.
        """
        scales = tuple(scales) if scales is not None else (self.expected_scale,)
        return ScenarioSet.with_bursts(scales, include_baseline=include_baseline)

    # -- workloads ------------------------------------------------------------------------------
    def scaled_requests(self, scale: Optional[float] = None) -> List[ApiRequest]:
        """The expected (burst) request stream: the learning workload scaled up."""
        scale = scale if scale is not None else self.expected_scale
        if scale not in self._scaled_requests:
            scenario = default_scenario(
                self.application,
                base_rps=self.scenario.profile.base_rps * scale,
                peak_rps=self.scenario.profile.peak_rps * scale,
                duration_ms=self.scenario.profile.duration_ms,
                name=f"{self.scenario.name}-x{scale:g}",
            )
            generator = WorkloadGenerator(self.application, scenario, seed=self.seed + 1000)
            self._scaled_requests[scale] = generator.generate(
                scenario.profile.duration_ms
            )
        return self._scaled_requests[scale]

    # -- ground truth measurement ------------------------------------------------------------------
    def measure_plan(
        self,
        plan: MigrationPlan,
        scale: Optional[float] = None,
        requests: Optional[Sequence[ApiRequest]] = None,
        seed_offset: int = 0,
    ) -> SimulationResult:
        """Actually 'migrate' (re-simulate) and measure the plan under the burst traffic."""
        requests = list(requests) if requests is not None else self.scaled_requests(scale)
        return simulate_workload(
            self.application,
            requests,
            plan=plan,
            cluster=self.cluster,
            network=self.network,
            seed=self.seed + 77 + seed_offset,
        )

    def no_stress_latencies(self) -> Dict[str, float]:
        """Per-API mean latency with everything on-prem and no resource stress.

        This is the reference of the paper's "API performance impact factor": a factor
        of K means the API is K times slower than this measurement.
        """
        if self._no_stress_latencies is None:
            self._no_stress_latencies = self.learning_result.mean_latencies()
        return dict(self._no_stress_latencies)

    def measured_impact_factor(
        self, result: SimulationResult, apis: Optional[Sequence[str]] = None
    ) -> float:
        """Mean measured slowdown of the APIs relative to the no-stress baseline."""
        reference = self.no_stress_latencies()
        apis = list(apis) if apis is not None else sorted(reference)
        factors = []
        measured = result.mean_latencies()
        for api in apis:
            if api in measured and reference.get(api, 0.0) > 0:
                factors.append(measured[api] / reference[api])
        return sum(factors) / len(factors) if factors else 0.0


def _build_cluster(
    n_locations: int,
    on_prem_nodes: int = 10,
    on_prem_cpu_cores: float = 20.0,
    on_prem_memory_gb: float = 160.0,
) -> HybridCluster:
    """The testbed topology: the paper's 2-DC hybrid, or on-prem + N-1 cloud regions."""
    if n_locations == 2:
        return default_hybrid_cluster(
            on_prem_nodes=on_prem_nodes,
            on_prem_cpu_cores=on_prem_cpu_cores,
            on_prem_memory_gb=on_prem_memory_gb,
        )
    extra = [
        {"name": f"cloud-region-{i}", "region": f"region-{i}"}
        for i in range(3, n_locations)
    ]
    return default_multi_location_cluster(
        on_prem_nodes=on_prem_nodes,
        on_prem_cpu_cores=on_prem_cpu_cores,
        on_prem_memory_gb=on_prem_memory_gb,
        extra_regions=extra,
    )


def build_testbed(
    application: str = "social-network",
    seed: int = 7,
    duration_ms: float = 120_000.0,
    base_rps: float = 15.0,
    peak_rps: float = 30.0,
    expected_scale: float = 5.0,
    onprem_limit_fraction: float = 0.8,
    critical_apis: Sequence[str] = (),
    traces_per_api: int = 15,
    evaluation_budget: int = 1_500,
    population_size: int = 60,
    train_iterations: int = 150,
    ga_seed: int = 1,
    n_locations: int = 2,
) -> Testbed:
    """Build the standard evaluation testbed (defaults sized for quick benchmark runs).

    ``onprem_limit_fraction`` sets the on-prem CPU limit as a fraction of the expected
    peak demand at ``expected_scale``: 0.8 keeps the burst above capacity (peak utilization ≈ 125%; the paper reports 264%) while leaving a rich trade-off space between latency- and traffic-optimal placements — see EXPERIMENTS.md for the sensitivity discussion.

    ``n_locations`` selects the topology: 2 (default) is the paper's two-datacenter
    hybrid cloud, reproduced bit-for-bit; 3 adds a cheaper-but-farther "cloud-west"
    region (with its own pricing catalog, autoscaler and availability failure domain),
    and larger values append further regions.  Both built-in applications (social
    network and hotel reservation) run on every topology.
    """
    if n_locations < 2:
        raise ValueError("the testbed needs at least two locations")
    if application in ("social", "social-network"):
        app = build_social_network()
        app_key = "social-network"
    elif application in ("hotel", "hotel-reservation"):
        app = build_hotel_reservation()
        app_key = "hotel-reservation"
    else:
        raise ValueError(f"unknown application {application!r}")

    scenario = default_scenario(
        app, base_rps=base_rps, peak_rps=peak_rps, duration_ms=duration_ms
    )
    generator = WorkloadGenerator(app, scenario, seed=seed)
    requests = generator.generate(duration_ms)
    cluster = _build_cluster(n_locations)
    if n_locations == 2:
        network = default_network_model()
    else:
        network = default_multi_location_network(locations=cluster.location_ids)
    learning_result = simulate_workload(
        app, requests, cluster=cluster, network=network, seed=seed
    )

    ga = GAConfig(
        population_size=population_size,
        offspring_per_generation=max(population_size // 2, 4),
        evaluation_budget=evaluation_budget,
        train_iterations=train_iterations,
        train_batch_size=2,
        train_pairs=48,
        seed=ga_seed,
    )
    if n_locations == 2:
        # The paper's setup: a single cloud priced by the default catalog.  The Atlas
        # advisor is deliberately built without an explicit cluster here so the code
        # path (and every fixed-seed RNG draw) is byte-identical to the pre-N-location
        # implementation.
        config = AtlasConfig(traces_per_api=traces_per_api, ga=ga)
        atlas = Atlas(app, MigrationPreferences(), network=network, config=config)
    else:
        config = AtlasConfig(
            traces_per_api=traces_per_api,
            ga=ga,
            pricing_by_location=multi_location_pricing(n_locations),
            # Farther regions are heavier failure domains: migrating state there takes
            # the dependent APIs offline for longer.
            availability_location_weights={
                loc: 1.0 + 0.25 * (loc - 1) for loc in cluster.location_ids if loc != 0
            },
        )
        atlas = Atlas(
            app, MigrationPreferences(), network=network, config=config, cluster=cluster
        )
    atlas.learn(learning_result.telemetry)

    estimate = atlas.knowledge.estimator.predict_scaled(expected_scale)
    peak_cpu = estimate.peak("cpu_millicores", app.component_names)
    onprem_cpu_limit = max(onprem_limit_fraction * peak_cpu, 1.0)
    preferences = MigrationPreferences.pin_on_prem(
        PINNED_COMPONENTS[app_key],
        critical_apis=list(critical_apis),
        onprem_limits={"cpu_millicores": onprem_cpu_limit},
    )
    atlas.preferences = preferences
    # Size the physical on-prem capacity to the owner's limit so that ground-truth
    # measurements (Figures 2/3/11/12) experience real contention when a plan keeps more
    # CPU demand on-prem than the site can serve during the burst.
    cluster = _build_cluster(
        n_locations,
        on_prem_nodes=1,
        on_prem_cpu_cores=max(onprem_cpu_limit / 1000.0, 0.5),
        on_prem_memory_gb=256.0,
    )
    if atlas.cluster is not None:
        atlas.cluster = cluster

    return Testbed(
        application=app,
        scenario=scenario,
        requests=requests,
        learning_result=learning_result,
        atlas=atlas,
        preferences=preferences,
        cluster=cluster,
        network=network,
        expected_scale=expected_scale,
        seed=seed,
        onprem_cpu_limit=onprem_cpu_limit,
    )


_TESTBED_CACHE: Dict[Tuple, Testbed] = {}


def get_testbed(**kwargs) -> Testbed:
    """Cached :func:`build_testbed` so several benchmarks can share one setup."""
    key = tuple(sorted(kwargs.items()))
    if key not in _TESTBED_CACHE:
        _TESTBED_CACHE[key] = build_testbed(**kwargs)
    return _TESTBED_CACHE[key]
