"""Small reporting helpers shared by examples and benchmarks.

The benchmark harness reproduces the paper's figures as *printed tables and series*
(there is no plotting dependency offline); these helpers keep that output readable and
consistent across experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_mapping"]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    formatted = [
        {col: _format_value(row.get(col, ""), precision) for col in columns} for row in rows
    ]
    widths = {
        col: max(len(col), *(len(row[col]) for row in formatted)) for col in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in formatted:
        lines.append(" | ".join(row[col].ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    precision: int = 2,
    title: Optional[str] = None,
    max_points: int = 20,
) -> str:
    """Render named numeric series (e.g. a Pareto front or a reward curve) compactly."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, values in series.items():
        values = list(values)
        if len(values) > max_points:
            step = len(values) / max_points
            values = [values[int(i * step)] for i in range(max_points)]
        rendered = ", ".join(f"{v:.{precision}f}" for v in values)
        lines.append(f"{name}: [{rendered}]")
    return "\n".join(lines)


def format_mapping(
    mapping: Mapping[str, object], precision: int = 2, title: Optional[str] = None
) -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in mapping.items():
        lines.append(f"{key}: {_format_value(value, precision)}")
    return "\n".join(lines)
