"""Hybrid cloud topology: datacenters, node types and the cluster as a whole.

The paper's evaluation uses a two-datacenter hybrid cloud: a ten-node on-premises
cluster (CloudLab Wisconsin) and a public-cloud datacenter (Massachusetts) whose nodes
are allocated on demand through a cluster autoscaler.  This module captures that setup
— which locations exist, what hardware a node provides, how many nodes the on-prem
site owns — without prescribing where components run (that is a
:class:`repro.cluster.placement.MigrationPlan`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "ON_PREM",
    "CLOUD",
    "NodeSpec",
    "Datacenter",
    "HybridCluster",
    "default_hybrid_cluster",
]

#: Canonical location indices used throughout the code base (paper Sec. 4.1).
ON_PREM = 0
CLOUD = 1


@dataclass(frozen=True)
class NodeSpec:
    """Hardware specification of one node type.

    ``cpu_millicores`` uses the Kubernetes convention (1 core = 1000 millicores).
    """

    name: str
    cpu_millicores: float
    memory_mb: float
    storage_gb: float = 480.0
    hourly_price_usd: float = 0.096

    def __post_init__(self) -> None:
        if self.cpu_millicores <= 0 or self.memory_mb <= 0:
            raise ValueError("node CPU and memory must be positive")
        if self.hourly_price_usd < 0:
            raise ValueError("node price must be non-negative")

    @property
    def cpu_cores(self) -> float:
        return self.cpu_millicores / 1000.0


@dataclass
class Datacenter:
    """One datacenter (location) of the hybrid cloud."""

    name: str
    location_id: int
    node_spec: NodeSpec
    node_count: Optional[int] = None
    elastic: bool = False
    region: str = ""

    def __post_init__(self) -> None:
        if self.node_count is None and not self.elastic:
            raise ValueError(
                f"datacenter {self.name!r} must either be elastic or have a node_count"
            )
        if self.node_count is not None and self.node_count <= 0:
            raise ValueError("node_count must be positive when provided")

    # -- capacity ---------------------------------------------------------------
    def cpu_capacity_millicores(self) -> float:
        """Total CPU capacity; infinite for elastic (cloud) datacenters."""
        if self.elastic:
            return float("inf")
        return self.node_spec.cpu_millicores * (self.node_count or 0)

    def memory_capacity_mb(self) -> float:
        if self.elastic:
            return float("inf")
        return self.node_spec.memory_mb * (self.node_count or 0)

    def storage_capacity_gb(self) -> float:
        if self.elastic:
            return float("inf")
        return self.node_spec.storage_gb * (self.node_count or 0)

    def capacity(self, resource: str) -> float:
        """Capacity for a named resource: ``cpu`` / ``memory`` / ``storage``."""
        if resource == "cpu":
            return self.cpu_capacity_millicores()
        if resource == "memory":
            return self.memory_capacity_mb()
        if resource == "storage":
            return self.storage_capacity_gb()
        raise KeyError(f"unknown resource {resource!r}")


class HybridCluster:
    """A collection of datacenters forming the hybrid cloud.

    The default (and the paper's) configuration has exactly two: an inelastic on-prem
    datacenter and an elastic public cloud.  The class supports more locations so the
    multi-cloud/sky-computing extension discussed in Section 6 can be expressed.
    """

    def __init__(self, datacenters: List[Datacenter]) -> None:
        if not datacenters:
            raise ValueError("a hybrid cluster needs at least one datacenter")
        ids = [dc.location_id for dc in datacenters]
        if len(set(ids)) != len(ids):
            raise ValueError("datacenter location ids must be unique")
        self._by_id: Dict[int, Datacenter] = {dc.location_id: dc for dc in datacenters}

    # -- accessors --------------------------------------------------------------
    @property
    def datacenters(self) -> List[Datacenter]:
        return [self._by_id[i] for i in sorted(self._by_id)]

    @property
    def location_ids(self) -> List[int]:
        return sorted(self._by_id)

    def datacenter(self, location_id: int) -> Datacenter:
        try:
            return self._by_id[location_id]
        except KeyError:
            raise KeyError(f"unknown location id {location_id}") from None

    @property
    def on_prem(self) -> Datacenter:
        """The on-premises datacenter (location 0)."""
        return self.datacenter(ON_PREM)

    @property
    def cloud(self) -> Datacenter:
        """The (first) public-cloud datacenter (location 1)."""
        return self.datacenter(CLOUD)

    def on_prem_capacity(self, resource: str) -> float:
        return self.on_prem.capacity(resource)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        parts = ", ".join(
            f"{dc.name}(id={dc.location_id}, elastic={dc.elastic})" for dc in self.datacenters
        )
        return f"HybridCluster({parts})"


def default_hybrid_cluster(
    on_prem_nodes: int = 10,
    on_prem_cpu_cores: float = 20.0,
    on_prem_memory_gb: float = 160.0,
    cloud_cpu_cores: float = 4.0,
    cloud_memory_gb: float = 16.0,
    cloud_hourly_price_usd: float = 0.096 * 2,
) -> HybridCluster:
    """The paper's evaluation setup.

    On-prem: ten CloudLab c220g2 nodes, each with 2x10 cores and 160 GB memory.
    Cloud: elastic m5.xlarge-class nodes allocated by the cluster autoscaler.
    """
    on_prem_spec = NodeSpec(
        name="c220g2",
        cpu_millicores=on_prem_cpu_cores * 1000.0,
        memory_mb=on_prem_memory_gb * 1024.0,
        storage_gb=480.0,
        hourly_price_usd=0.0,
    )
    cloud_spec = NodeSpec(
        name="cloud-node",
        cpu_millicores=cloud_cpu_cores * 1000.0,
        memory_mb=cloud_memory_gb * 1024.0,
        storage_gb=900.0,
        hourly_price_usd=cloud_hourly_price_usd,
    )
    return HybridCluster(
        [
            Datacenter(
                name="on-prem",
                location_id=ON_PREM,
                node_spec=on_prem_spec,
                node_count=on_prem_nodes,
                elastic=False,
                region="wisconsin",
            ),
            Datacenter(
                name="cloud",
                location_id=CLOUD,
                node_spec=cloud_spec,
                node_count=None,
                elastic=True,
                region="massachusetts",
            ),
        ]
    )
