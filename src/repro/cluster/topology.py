"""Multi-location topology: datacenters, node types and the cluster as a whole.

The paper's evaluation uses a two-datacenter hybrid cloud: a ten-node on-premises
cluster (CloudLab Wisconsin) and a public-cloud datacenter (Massachusetts) whose nodes
are allocated on demand through a cluster autoscaler.  This module captures that setup
— which locations exist, what hardware a node provides, how many nodes each site owns
— without prescribing where components run (that is a
:class:`repro.cluster.placement.MigrationPlan`).

The cluster is *not* limited to two sites: a :class:`HybridCluster` holds an arbitrary
list of :class:`Datacenter` objects with per-site node specs and elasticity, which is
how the N-location topologies (on-prem + several cloud regions, edge sites, ...) of the
sky-computing extension are expressed.  :func:`default_hybrid_cluster` builds the
paper's two-site testbed; :func:`default_multi_location_cluster` adds a second,
cheaper-but-farther cloud region as the built-in three-location testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "ON_PREM",
    "CLOUD",
    "NodeSpec",
    "Datacenter",
    "HybridCluster",
    "default_hybrid_cluster",
    "default_multi_location_cluster",
]

#: Canonical location indices used throughout the code base (paper Sec. 4.1).  Location
#: 0 is always the on-premises site; every id >= 1 is a remote location (the paper's
#: single public cloud is id 1; additional regions/edge sites take ids 2, 3, ...).
ON_PREM = 0
CLOUD = 1


@dataclass(frozen=True)
class NodeSpec:
    """Hardware specification of one node type.

    ``cpu_millicores`` uses the Kubernetes convention (1 core = 1000 millicores).
    """

    name: str
    cpu_millicores: float
    memory_mb: float
    storage_gb: float = 480.0
    hourly_price_usd: float = 0.096

    def __post_init__(self) -> None:
        if self.cpu_millicores <= 0 or self.memory_mb <= 0:
            raise ValueError("node CPU and memory must be positive")
        if self.hourly_price_usd < 0:
            raise ValueError("node price must be non-negative")

    @property
    def cpu_cores(self) -> float:
        return self.cpu_millicores / 1000.0

    def scaled(
        self,
        capacity_factor: float = 1.0,
        price_factor: float = 1.0,
    ) -> "NodeSpec":
        """A sibling spec with scaled capacity and/or price (the fault hook).

        ``capacity_factor`` shrinks/grows the node's CPU and memory together — a
        partial node-pool loss (:class:`~repro.quality.faults.CapacityCut`) models
        "each node effectively packs fewer pods", so the autoscaler allocates more
        nodes for the same demand.  ``price_factor`` scales the hourly rate
        (:class:`~repro.quality.faults.PriceShock`).
        """
        if capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")
        if price_factor < 0:
            raise ValueError("price_factor must be non-negative")
        return NodeSpec(
            name=self.name,
            cpu_millicores=self.cpu_millicores * capacity_factor,
            memory_mb=self.memory_mb * capacity_factor,
            storage_gb=self.storage_gb,
            hourly_price_usd=self.hourly_price_usd * price_factor,
        )


@dataclass
class Datacenter:
    """One datacenter (location) of the cluster.

    ``elastic`` datacenters allocate nodes on demand through a cluster autoscaler and
    are billed per allocated node; inelastic ones own a fixed ``node_count``.  Any
    number of either kind can coexist in one :class:`HybridCluster`.
    """

    name: str
    location_id: int
    node_spec: NodeSpec
    node_count: Optional[int] = None
    elastic: bool = False
    region: str = ""

    def __post_init__(self) -> None:
        if self.node_count is None and not self.elastic:
            raise ValueError(
                f"datacenter {self.name!r} must either be elastic or have a node_count"
            )
        if self.node_count is not None and self.node_count <= 0:
            raise ValueError("node_count must be positive when provided")

    # -- capacity ---------------------------------------------------------------
    def cpu_capacity_millicores(self) -> float:
        """Total CPU capacity; infinite for elastic (cloud) datacenters."""
        if self.elastic:
            return float("inf")
        return self.node_spec.cpu_millicores * (self.node_count or 0)

    def memory_capacity_mb(self) -> float:
        if self.elastic:
            return float("inf")
        return self.node_spec.memory_mb * (self.node_count or 0)

    def storage_capacity_gb(self) -> float:
        if self.elastic:
            return float("inf")
        return self.node_spec.storage_gb * (self.node_count or 0)

    def capacity(self, resource: str) -> float:
        """Capacity for a named resource: ``cpu`` / ``memory`` / ``storage``."""
        if resource == "cpu":
            return self.cpu_capacity_millicores()
        if resource == "memory":
            return self.memory_capacity_mb()
        if resource == "storage":
            return self.storage_capacity_gb()
        raise KeyError(f"unknown resource {resource!r}")


class HybridCluster:
    """A collection of datacenters forming the (multi-location) cluster.

    The default (and the paper's) configuration has exactly two: an inelastic on-prem
    datacenter and an elastic public cloud.  Arbitrary datacenter lists are supported —
    the placement search, quality models and simulator all operate on location ids, so
    the multi-cloud/sky-computing extension of Section 6 is just a longer list here
    plus a denser :class:`~repro.cluster.network.NetworkModel` link matrix.
    """

    def __init__(self, datacenters: List[Datacenter]) -> None:
        if not datacenters:
            raise ValueError("a hybrid cluster needs at least one datacenter")
        ids = [dc.location_id for dc in datacenters]
        if len(set(ids)) != len(ids):
            raise ValueError("datacenter location ids must be unique")
        self._by_id: Dict[int, Datacenter] = {dc.location_id: dc for dc in datacenters}

    # -- accessors --------------------------------------------------------------
    @property
    def datacenters(self) -> List[Datacenter]:
        return [self._by_id[i] for i in sorted(self._by_id)]

    @property
    def location_ids(self) -> List[int]:
        return sorted(self._by_id)

    def datacenter(self, location_id: int) -> Datacenter:
        try:
            return self._by_id[location_id]
        except KeyError:
            raise KeyError(f"unknown location id {location_id}") from None

    @property
    def on_prem(self) -> Datacenter:
        """The on-premises datacenter (location 0)."""
        return self.datacenter(ON_PREM)

    @property
    def cloud(self) -> Datacenter:
        """The first public-cloud datacenter (location 1).

        With more than two locations this is only *one* of the remote sites — use
        :meth:`elastic_datacenters` / :meth:`remote_datacenters` to enumerate all of
        them instead of assuming "not on-prem" means "the cloud".
        """
        return self.datacenter(CLOUD)

    def elastic_datacenters(self) -> List[Datacenter]:
        """Every autoscaled (pay-per-node) datacenter, in location-id order."""
        return [dc for dc in self.datacenters if dc.elastic]

    def remote_datacenters(self) -> List[Datacenter]:
        """Every datacenter other than the on-prem site, in location-id order."""
        return [dc for dc in self.datacenters if dc.location_id != ON_PREM]

    @property
    def n_locations(self) -> int:
        return len(self._by_id)

    def on_prem_capacity(self, resource: str) -> float:
        return self.on_prem.capacity(resource)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        parts = ", ".join(
            f"{dc.name}(id={dc.location_id}, elastic={dc.elastic})" for dc in self.datacenters
        )
        return f"HybridCluster({parts})"


def default_hybrid_cluster(
    on_prem_nodes: int = 10,
    on_prem_cpu_cores: float = 20.0,
    on_prem_memory_gb: float = 160.0,
    cloud_cpu_cores: float = 4.0,
    cloud_memory_gb: float = 16.0,
    cloud_hourly_price_usd: float = 0.096 * 2,
) -> HybridCluster:
    """The paper's evaluation setup.

    On-prem: ten CloudLab c220g2 nodes, each with 2x10 cores and 160 GB memory.
    Cloud: elastic m5.xlarge-class nodes allocated by the cluster autoscaler.
    """
    on_prem_spec = NodeSpec(
        name="c220g2",
        cpu_millicores=on_prem_cpu_cores * 1000.0,
        memory_mb=on_prem_memory_gb * 1024.0,
        storage_gb=480.0,
        hourly_price_usd=0.0,
    )
    cloud_spec = NodeSpec(
        name="cloud-node",
        cpu_millicores=cloud_cpu_cores * 1000.0,
        memory_mb=cloud_memory_gb * 1024.0,
        storage_gb=900.0,
        hourly_price_usd=cloud_hourly_price_usd,
    )
    return HybridCluster(
        [
            Datacenter(
                name="on-prem",
                location_id=ON_PREM,
                node_spec=on_prem_spec,
                node_count=on_prem_nodes,
                elastic=False,
                region="wisconsin",
            ),
            Datacenter(
                name="cloud",
                location_id=CLOUD,
                node_spec=cloud_spec,
                node_count=None,
                elastic=True,
                region="massachusetts",
            ),
        ]
    )


def default_multi_location_cluster(
    on_prem_nodes: int = 10,
    on_prem_cpu_cores: float = 20.0,
    on_prem_memory_gb: float = 160.0,
    extra_regions: Optional[List[Dict]] = None,
) -> HybridCluster:
    """The built-in three-location testbed: on-prem + two elastic cloud regions.

    Location 1 ("cloud-east") is the paper's Massachusetts datacenter; location 2
    ("cloud-west") is a farther but cheaper region.  ``extra_regions`` appends more
    elastic sites (each a dict of :class:`Datacenter` overrides with at least a
    ``name``), taking location ids 3, 4, ... in order.
    """
    base = default_hybrid_cluster(
        on_prem_nodes=on_prem_nodes,
        on_prem_cpu_cores=on_prem_cpu_cores,
        on_prem_memory_gb=on_prem_memory_gb,
    )
    datacenters = list(base.datacenters)
    datacenters[CLOUD].name = "cloud-east"
    west_spec = NodeSpec(
        name="cloud-node-west",
        cpu_millicores=4_000.0,
        memory_mb=16.0 * 1024.0,
        storage_gb=900.0,
        hourly_price_usd=0.096 * 1.6,
    )
    datacenters.append(
        Datacenter(
            name="cloud-west",
            location_id=2,
            node_spec=west_spec,
            node_count=None,
            elastic=True,
            region="oregon",
        )
    )
    for offset, overrides in enumerate(extra_regions or []):
        overrides = dict(overrides)
        name = overrides.pop("name")
        datacenters.append(
            Datacenter(
                name=name,
                location_id=3 + offset,
                node_spec=overrides.pop("node_spec", west_spec),
                node_count=overrides.pop("node_count", None),
                elastic=overrides.pop("elastic", True),
                region=overrides.pop("region", ""),
            )
        )
        if overrides:
            raise ValueError(
                f"unknown extra-region keys for {name!r}: {sorted(overrides)}"
            )
    return HybridCluster(datacenters)
