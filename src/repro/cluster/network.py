"""Network performance model between datacenters.

The paper reports the measured characteristics of its testbed:

* intra-datacenter (collocated nodes): 0.168 ms average latency, 941 Mbps bandwidth;
* inter-datacenter (Wisconsin <-> Massachusetts): 23.015 ms latency, 921 Mbps bandwidth.

:class:`NetworkModel` stores a symmetric latency/bandwidth matrix over an arbitrary
number of locations and converts a payload size into a one-way transfer time.  It is
used both by the execution simulator (ground truth) and by Atlas's delay-injection
estimator (Eq. 2), which only needs the *difference* between the before/after link
characteristics.  :func:`default_network_model` builds the paper's two-location matrix;
:func:`default_multi_location_network` builds the dense pairwise matrix of the built-in
N-location testbed (on-prem + several cloud regions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .topology import CLOUD, ON_PREM

__all__ = [
    "LinkSpec",
    "NetworkModel",
    "default_network_model",
    "default_multi_location_network",
]

_BITS_PER_BYTE = 8.0
_MBPS_TO_BYTES_PER_MS = 1e6 / _BITS_PER_BYTE / 1e3  # 1 Mbps = 125 bytes/ms


@dataclass(frozen=True)
class LinkSpec:
    """Latency/bandwidth of the path between two locations.

    ``latency_ms`` is the *round-trip* time, matching how the paper reports its testbed
    measurements (0.168 ms intra-DC, 23.015 ms inter-DC); a one-way transfer therefore
    pays half of it plus the serialization time of the payload.
    """

    latency_ms: float
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def bytes_per_ms(self) -> float:
        return self.bandwidth_mbps * _MBPS_TO_BYTES_PER_MS

    def transfer_time_ms(self, payload_bytes: float) -> float:
        """One-way time to push ``payload_bytes`` over this link (half RTT + serialization)."""
        if payload_bytes < 0:
            raise ValueError("payload size must be non-negative")
        return 0.5 * self.latency_ms + payload_bytes / self.bytes_per_ms


class NetworkModel:
    """Symmetric latency/bandwidth matrix over datacenter locations."""

    def __init__(self, links: Dict[Tuple[int, int], LinkSpec]) -> None:
        self._links: Dict[Tuple[int, int], LinkSpec] = {}
        for (a, b), spec in links.items():
            self._links[self._key(a, b)] = spec

    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def locations(self) -> List[int]:
        """Every location id that appears in at least one link."""
        seen = set()
        for a, b in self._links:
            seen.add(a)
            seen.add(b)
        return sorted(seen)

    def has_link(self, loc_a: int, loc_b: int) -> bool:
        return self._key(loc_a, loc_b) in self._links

    def link(self, loc_a: int, loc_b: int) -> LinkSpec:
        try:
            return self._links[self._key(loc_a, loc_b)]
        except KeyError:
            raise KeyError(f"no link between locations {loc_a} and {loc_b}") from None

    def latency_ms(self, loc_a: int, loc_b: int) -> float:
        return self.link(loc_a, loc_b).latency_ms

    def bandwidth_mbps(self, loc_a: int, loc_b: int) -> float:
        return self.link(loc_a, loc_b).bandwidth_mbps

    def transfer_time_ms(self, loc_a: int, loc_b: int, payload_bytes: float) -> float:
        """One-way transfer time of a payload between two locations."""
        return self.link(loc_a, loc_b).transfer_time_ms(payload_bytes)

    def round_trip_ms(
        self, loc_a: int, loc_b: int, request_bytes: float, response_bytes: float
    ) -> float:
        """Request + response transfer time for one invocation between two locations."""
        link = self.link(loc_a, loc_b)
        return link.transfer_time_ms(request_bytes) + link.transfer_time_ms(response_bytes)

    def extra_delay_ms(
        self,
        before: Tuple[int, int],
        after: Tuple[int, int],
        request_bytes: float,
        response_bytes: float,
    ) -> float:
        """Delay Δ of Eq. 2: the additional round-trip time caused by relocating the pair.

        ``before``/``after`` are (caller location, callee location) pairs.  The latency
        term uses the round-trip difference once per invocation (γ is an RTT), and the
        serialization term covers both the request and the response payloads, matching
        the simulator's per-invocation accounting.  The result is clamped at zero:
        moving a pair onto the same datacenter never *adds* latency in the estimator.
        """
        before_link = self.link(*before)
        after_link = self.link(*after)
        total_bytes = request_bytes + response_bytes
        delta = (after_link.latency_ms - before_link.latency_ms) + total_bytes * (
            1.0 / after_link.bytes_per_ms - 1.0 / before_link.bytes_per_ms
        )
        return max(delta, 0.0)

    # -- fault hooks -----------------------------------------------------------------------
    def derive(
        self, overrides: Mapping[Tuple[int, int], LinkSpec]
    ) -> "NetworkModel":
        """A sibling network with some links replaced (the fault-injection hook).

        ``overrides`` maps (location, location) pairs — in either order — to the
        replacement :class:`LinkSpec`; every other link is carried over unchanged.
        """
        links = dict(self._links)
        for (a, b), spec in overrides.items():
            key = self._key(a, b)
            if key not in links:
                raise KeyError(f"no link between locations {a} and {b} to override")
            links[key] = spec
        return NetworkModel(links)

    def degraded(
        self,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
        latency_factor: float = 1.0,
        bandwidth_factor: float = 1.0,
        extra_latency_ms: float = 0.0,
    ) -> "NetworkModel":
        """A sibling network with scaled/penalized link characteristics.

        ``pairs`` selects which links degrade (default: every *inter*-location link);
        each selected link's round-trip latency becomes
        ``latency_ms * latency_factor + extra_latency_ms`` and its bandwidth
        ``bandwidth_mbps * bandwidth_factor``.  This is how
        :class:`~repro.quality.faults.LinkDegradation` and
        :class:`~repro.quality.faults.LocationOutage` compile into the delay
        injector: the degraded model feeds a performance scenario view whose Δ
        tables price every cross-site edge against the faulted links.
        """
        if latency_factor < 0:
            raise ValueError("latency_factor must be non-negative")
        if bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        if extra_latency_ms < 0:
            raise ValueError("extra_latency_ms must be non-negative")
        if pairs is None:
            keys = [key for key in self._links if key[0] != key[1]]
        else:
            keys = []
            for a, b in pairs:
                key = self._key(a, b)
                if key in self._links and key not in keys:
                    keys.append(key)
        overrides = {}
        for key in keys:
            link = self._links[key]
            overrides[key] = LinkSpec(
                latency_ms=link.latency_ms * latency_factor + extra_latency_ms,
                bandwidth_mbps=link.bandwidth_mbps * bandwidth_factor,
            )
        return self.derive(overrides) if overrides else self


def default_network_model(
    intra_latency_ms: float = 0.168,
    intra_bandwidth_mbps: float = 941.0,
    inter_latency_ms: float = 23.015,
    inter_bandwidth_mbps: float = 921.0,
) -> NetworkModel:
    """The two-location network of the paper's testbed."""
    intra = LinkSpec(intra_latency_ms, intra_bandwidth_mbps)
    inter = LinkSpec(inter_latency_ms, inter_bandwidth_mbps)
    return NetworkModel(
        {
            (ON_PREM, ON_PREM): intra,
            (CLOUD, CLOUD): intra,
            (ON_PREM, CLOUD): inter,
        }
    )


#: Round-trip latencies (ms) of the built-in three-location testbed: on-prem
#: (Wisconsin), cloud-east (Massachusetts, the paper's measured 23.015 ms) and
#: cloud-west (Oregon) — the west region is roughly twice as far from both.
_DEFAULT_3DC_LATENCIES_MS: Dict[Tuple[int, int], float] = {
    (ON_PREM, CLOUD): 23.015,
    (ON_PREM, 2): 44.5,
    (CLOUD, 2): 61.0,
}


def default_multi_location_network(
    locations: Sequence[int] = (ON_PREM, CLOUD, 2),
    intra_latency_ms: float = 0.168,
    intra_bandwidth_mbps: float = 941.0,
    inter_latencies_ms: Optional[Mapping[Tuple[int, int], float]] = None,
    inter_bandwidth_mbps: float = 921.0,
    default_inter_latency_ms: float = 44.5,
) -> NetworkModel:
    """A dense pairwise network over N locations.

    Every location gets the measured intra-DC link to itself; every location pair gets
    an inter-DC link whose latency comes from ``inter_latencies_ms`` (falling back to
    the built-in three-location table, then to ``default_inter_latency_ms``) at the
    paper's measured inter-DC bandwidth.  With the default two-location prefix the
    matrix restricted to locations 0 and 1 is exactly :func:`default_network_model`.
    """
    latencies = dict(_DEFAULT_3DC_LATENCIES_MS)
    if inter_latencies_ms:
        for (a, b), value in inter_latencies_ms.items():
            latencies[(a, b) if a <= b else (b, a)] = value
    intra = LinkSpec(intra_latency_ms, intra_bandwidth_mbps)
    links: Dict[Tuple[int, int], LinkSpec] = {}
    ordered = sorted(set(locations))
    for i, a in enumerate(ordered):
        links[(a, a)] = intra
        for b in ordered[i + 1 :]:
            latency = latencies.get((a, b), default_inter_latency_ms)
            links[(a, b)] = LinkSpec(latency, inter_bandwidth_mbps)
    return NetworkModel(links)
