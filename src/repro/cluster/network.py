"""Network performance model between datacenters.

The paper reports the measured characteristics of its testbed:

* intra-datacenter (collocated nodes): 0.168 ms average latency, 941 Mbps bandwidth;
* inter-datacenter (Wisconsin <-> Massachusetts): 23.015 ms latency, 921 Mbps bandwidth.

:class:`NetworkModel` stores a latency/bandwidth matrix over locations and converts a
payload size into a one-way transfer time.  It is used both by the execution simulator
(ground truth) and by Atlas's delay-injection estimator (Eq. 2), which only needs the
*difference* between the before/after link characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .topology import CLOUD, ON_PREM

__all__ = ["LinkSpec", "NetworkModel", "default_network_model"]

_BITS_PER_BYTE = 8.0
_MBPS_TO_BYTES_PER_MS = 1e6 / _BITS_PER_BYTE / 1e3  # 1 Mbps = 125 bytes/ms


@dataclass(frozen=True)
class LinkSpec:
    """Latency/bandwidth of the path between two locations.

    ``latency_ms`` is the *round-trip* time, matching how the paper reports its testbed
    measurements (0.168 ms intra-DC, 23.015 ms inter-DC); a one-way transfer therefore
    pays half of it plus the serialization time of the payload.
    """

    latency_ms: float
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def bytes_per_ms(self) -> float:
        return self.bandwidth_mbps * _MBPS_TO_BYTES_PER_MS

    def transfer_time_ms(self, payload_bytes: float) -> float:
        """One-way time to push ``payload_bytes`` over this link (half RTT + serialization)."""
        if payload_bytes < 0:
            raise ValueError("payload size must be non-negative")
        return 0.5 * self.latency_ms + payload_bytes / self.bytes_per_ms


class NetworkModel:
    """Symmetric latency/bandwidth matrix over datacenter locations."""

    def __init__(self, links: Dict[Tuple[int, int], LinkSpec]) -> None:
        self._links: Dict[Tuple[int, int], LinkSpec] = {}
        for (a, b), spec in links.items():
            self._links[self._key(a, b)] = spec

    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def link(self, loc_a: int, loc_b: int) -> LinkSpec:
        try:
            return self._links[self._key(loc_a, loc_b)]
        except KeyError:
            raise KeyError(f"no link between locations {loc_a} and {loc_b}") from None

    def latency_ms(self, loc_a: int, loc_b: int) -> float:
        return self.link(loc_a, loc_b).latency_ms

    def bandwidth_mbps(self, loc_a: int, loc_b: int) -> float:
        return self.link(loc_a, loc_b).bandwidth_mbps

    def transfer_time_ms(self, loc_a: int, loc_b: int, payload_bytes: float) -> float:
        """One-way transfer time of a payload between two locations."""
        return self.link(loc_a, loc_b).transfer_time_ms(payload_bytes)

    def round_trip_ms(
        self, loc_a: int, loc_b: int, request_bytes: float, response_bytes: float
    ) -> float:
        """Request + response transfer time for one invocation between two locations."""
        link = self.link(loc_a, loc_b)
        return link.transfer_time_ms(request_bytes) + link.transfer_time_ms(response_bytes)

    def extra_delay_ms(
        self,
        before: Tuple[int, int],
        after: Tuple[int, int],
        request_bytes: float,
        response_bytes: float,
    ) -> float:
        """Delay Δ of Eq. 2: the additional round-trip time caused by relocating the pair.

        ``before``/``after`` are (caller location, callee location) pairs.  The latency
        term uses the round-trip difference once per invocation (γ is an RTT), and the
        serialization term covers both the request and the response payloads, matching
        the simulator's per-invocation accounting.  The result is clamped at zero:
        moving a pair onto the same datacenter never *adds* latency in the estimator.
        """
        before_link = self.link(*before)
        after_link = self.link(*after)
        total_bytes = request_bytes + response_bytes
        delta = (after_link.latency_ms - before_link.latency_ms) + total_bytes * (
            1.0 / after_link.bytes_per_ms - 1.0 / before_link.bytes_per_ms
        )
        return max(delta, 0.0)


def default_network_model(
    intra_latency_ms: float = 0.168,
    intra_bandwidth_mbps: float = 941.0,
    inter_latency_ms: float = 23.015,
    inter_bandwidth_mbps: float = 921.0,
) -> NetworkModel:
    """The two-location network of the paper's testbed."""
    intra = LinkSpec(intra_latency_ms, intra_bandwidth_mbps)
    inter = LinkSpec(inter_latency_ms, inter_bandwidth_mbps)
    return NetworkModel(
        {
            (ON_PREM, ON_PREM): intra,
            (CLOUD, CLOUD): intra,
            (ON_PREM, CLOUD): inter,
        }
    )
