"""Cluster and storage autoscaler simulation (Appendix A, Eq. 6 and Eq. 8).

An elastic datacenter charges only for allocated nodes and provisioned storage.  These
two small simulators convert a time series of expected resource demand into a time
series of allocated capacity, which the cost model (:mod:`repro.quality.cost`) then
prices.  Each elastic datacenter runs its *own* autoscaler sized to that site's node
spec — the cost model instantiates one :class:`ClusterAutoscaler` per elastic location,
so N-location clusters scale every region independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np

from .topology import NodeSpec

__all__ = ["ClusterAutoscaler", "StorageAutoscaler", "AutoscalerConfig"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Headroom fractions (δ in Eq. 6/8) that trigger scale-up."""

    cpu_headroom: float = 0.20
    memory_headroom: float = 0.20
    storage_headroom: float = 0.20

    def __post_init__(self) -> None:
        for name in ("cpu_headroom", "memory_headroom", "storage_headroom"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")


class ClusterAutoscaler:
    """Computes the number of nodes one elastic datacenter allocates over time (Eq. 6).

    ``n_t = max_r ceil((1 + δ_r) * demand_r[t] / Ω_r)`` for r ∈ {CPU, memory}.
    """

    def __init__(self, node_spec: NodeSpec, config: AutoscalerConfig | None = None) -> None:
        self.node_spec = node_spec
        self.config = config or AutoscalerConfig()

    def nodes_for(self, cpu_millicores: float, memory_mb: float) -> int:
        """Nodes needed to host the given instantaneous demand."""
        if cpu_millicores < 0 or memory_mb < 0:
            raise ValueError("resource demand must be non-negative")
        if cpu_millicores == 0 and memory_mb == 0:
            return 0
        by_cpu = math.ceil(
            (1.0 + self.config.cpu_headroom) * cpu_millicores / self.node_spec.cpu_millicores
        )
        by_mem = math.ceil(
            (1.0 + self.config.memory_headroom) * memory_mb / self.node_spec.memory_mb
        )
        # Any non-zero demand needs at least one node: the quotient of a subnormal
        # demand can underflow to 0.0, which would otherwise ceil to zero nodes.
        return max(by_cpu, by_mem, 1)

    def node_series(
        self,
        cpu_series: Sequence[float],
        memory_series: Sequence[float],
    ) -> List[int]:
        """Node counts for aligned CPU/memory demand time series."""
        if len(cpu_series) != len(memory_series):
            raise ValueError("cpu and memory series must have the same length")
        return [self.nodes_for(c, m) for c, m in zip(cpu_series, memory_series)]

    def nodes_for_series(
        self, cpu_demand: np.ndarray, memory_demand: np.ndarray
    ) -> np.ndarray:
        """Node counts for a whole demand matrix at once (vectorized Eq. 6).

        ``cpu_demand``/``memory_demand`` are aligned arrays of any matching shape —
        typically a ``(plans, steps)`` matrix covering an entire GA generation.  Each
        output element equals :meth:`nodes_for` of the corresponding demand pair
        exactly (same float64 arithmetic, so the batched cost pipeline is bitwise
        identical to the per-plan walk).
        """
        cpu = np.asarray(cpu_demand, dtype=np.float64)
        mem = np.asarray(memory_demand, dtype=np.float64)
        if cpu.shape != mem.shape:
            raise ValueError("cpu and memory demand must have the same shape")
        if cpu.size and (cpu.min() < 0 or mem.min() < 0):
            raise ValueError("resource demand must be non-negative")
        by_cpu = np.ceil(
            (1.0 + self.config.cpu_headroom) * cpu / self.node_spec.cpu_millicores
        )
        by_mem = np.ceil(
            (1.0 + self.config.memory_headroom) * mem / self.node_spec.memory_mb
        )
        nodes = np.maximum(np.maximum(by_cpu, by_mem), 1.0)
        return np.where((cpu == 0.0) & (mem == 0.0), 0.0, nodes).astype(np.int64)


class StorageAutoscaler:
    """Computes the provisioned cloud storage capacity over time (Eq. 8).

    The initial capacity is twice the data size transferred during migration, and the
    capacity grows by the headroom factor whenever free space falls below the headroom
    fraction.  Capacity never shrinks (cloud volumes cannot be shrunk online).
    """

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()

    def initial_capacity_gb(self, migrated_data_gb: float) -> float:
        if migrated_data_gb < 0:
            raise ValueError("migrated data size must be non-negative")
        return 2.0 * migrated_data_gb

    def capacity_series(
        self, usage_series_gb: Sequence[float], migrated_data_gb: float
    ) -> List[float]:
        """Provisioned capacity at each time step for the given usage series."""
        delta = self.config.storage_headroom
        capacity = self.initial_capacity_gb(migrated_data_gb)
        series: List[float] = []
        for usage in usage_series_gb:
            if usage < 0:
                raise ValueError("storage usage must be non-negative")
            if capacity > 0 and (1.0 - usage / capacity) <= delta:
                capacity = float(math.ceil((1.0 + delta) * capacity))
            elif capacity == 0 and usage > 0:
                capacity = float(math.ceil((1.0 + delta) * usage))
            series.append(capacity)
        return series

    def capacity_matrix(
        self, usage_matrix: np.ndarray, migrated_gb: np.ndarray
    ) -> np.ndarray:
        """Provisioned capacity for a batch of usage series at once (vectorized Eq. 8).

        ``usage_matrix`` is ``(plans, steps)`` and ``migrated_gb`` the per-plan
        migrated data size; row ``p`` of the result equals
        ``capacity_series(usage_matrix[p], migrated_gb[p])`` element for element (the
        stateful capacity walk runs over the step axis with all plans advanced in
        lock-step, using the exact scalar float arithmetic).
        """
        usage = np.asarray(usage_matrix, dtype=np.float64)
        migrated = np.asarray(migrated_gb, dtype=np.float64)
        if usage.ndim != 2 or migrated.shape != (usage.shape[0],):
            raise ValueError("need a (plans, steps) usage matrix and one migrated size per plan")
        if usage.size and usage.min() < 0:
            raise ValueError("storage usage must be non-negative")
        if migrated.size and migrated.min() < 0:
            raise ValueError("migrated data size must be non-negative")
        delta = self.config.storage_headroom
        capacity = 2.0 * migrated
        out = np.empty_like(usage)
        for step in range(usage.shape[1]):
            used = usage[:, step]
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                grow = (capacity > 0) & ((1.0 - used / capacity) <= delta)
            seed = (capacity == 0) & (used > 0)
            capacity = np.where(
                grow,
                np.ceil((1.0 + delta) * capacity),
                np.where(seed, np.ceil((1.0 + delta) * used), capacity),
            )
            out[:, step] = capacity
        return out
