"""Migration plans: where each application component runs.

A :class:`MigrationPlan` is the unit of search in Atlas — a mapping from component name
to a location id.  Location 0 is always the on-prem site; ids >= 1 are remote sites
(exactly one of them — the public cloud — in the paper's two-location setup, several
cloud regions/edge sites in the N-location topologies).  The class offers the
location-vector view used by the genetic algorithm and the DRL crossover agent,
set-style accessors used by the quality models, and (de)serialization helpers used by
the examples.

A historical trap this class deliberately avoids: with more than one remote location
"not on-prem" no longer means "the cloud".  :meth:`offloaded` therefore documents
itself as *any remote location*, and callers that bill or count a specific site must
use :meth:`components_at` with that site's location id (see
:class:`repro.quality.cost.CloudCostModel`, which bills each elastic datacenter
separately).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .topology import CLOUD, ON_PREM

__all__ = ["MigrationPlan"]


class MigrationPlan(Mapping[str, int]):
    """An immutable assignment of every component to a location.

    The component order is fixed at construction time so that :meth:`to_vector` /
    :meth:`from_vector` round-trip deterministically — the genetic algorithm and the DRL
    agent operate on the vector representation.
    """

    __slots__ = ("_components", "_locations", "_index")

    def __init__(self, assignment: Mapping[str, int], order: Optional[Sequence[str]] = None):
        if order is None:
            order = list(assignment)
        else:
            order = list(order)
            missing = set(order) ^ set(assignment)
            if missing:
                raise ValueError(f"order and assignment disagree on components: {sorted(missing)}")
        self._components: Tuple[str, ...] = tuple(order)
        self._locations: Tuple[int, ...] = tuple(int(assignment[c]) for c in self._components)
        for comp, loc in zip(self._components, self._locations):
            if loc < 0:
                raise ValueError(f"negative location for component {comp!r}")
        self._index: Dict[str, int] = {c: i for i, c in enumerate(self._components)}

    # -- Mapping interface --------------------------------------------------------
    def __getitem__(self, component: str) -> int:
        try:
            return self._locations[self._index[component]]
        except KeyError:
            raise KeyError(f"component {component!r} not in plan") from None

    def __iter__(self):
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __hash__(self) -> int:
        return hash((self._components, self._locations))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MigrationPlan):
            return NotImplemented
        return self._components == other._components and self._locations == other._locations

    # -- constructors --------------------------------------------------------------
    @classmethod
    def all_on_prem(cls, components: Sequence[str]) -> "MigrationPlan":
        """The status-quo plan with every component on-premises."""
        return cls({c: ON_PREM for c in components}, order=components)

    @classmethod
    def all_cloud(cls, components: Sequence[str]) -> "MigrationPlan":
        return cls({c: CLOUD for c in components}, order=components)

    @classmethod
    def from_offloaded(
        cls, components: Sequence[str], offloaded: Iterable[str], location: int = CLOUD
    ) -> "MigrationPlan":
        """Plan that offloads exactly the given components to one remote location.

        ``location`` defaults to the paper's single cloud (id 1); pass another id to
        target a different region of a multi-location topology.
        """
        if int(location) == ON_PREM:
            raise ValueError("offload location must be a remote site, not on-prem (0)")
        offloaded = set(offloaded)
        unknown = offloaded - set(components)
        if unknown:
            raise ValueError(f"offloaded components not in application: {sorted(unknown)}")
        return cls(
            {c: (int(location) if c in offloaded else ON_PREM) for c in components},
            order=components,
        )

    @classmethod
    def from_vector(
        cls, components: Sequence[str], vector: Sequence[int]
    ) -> "MigrationPlan":
        if len(components) != len(vector):
            raise ValueError(
                f"vector length {len(vector)} does not match component count {len(components)}"
            )
        return cls({c: int(v) for c, v in zip(components, vector)}, order=components)

    # -- views -----------------------------------------------------------------------
    @property
    def components(self) -> List[str]:
        return list(self._components)

    def to_vector(self) -> List[int]:
        """Location vector in the plan's canonical component order."""
        return list(self._locations)

    def location_of(self, component: str) -> int:
        return self[component]

    def offloaded(self) -> List[str]:
        """Components placed at *any* remote location (not necessarily location 1).

        With a single remote site this is exactly "the components in the cloud"; with
        several it is their union — use :meth:`components_at` to bill or count one
        specific site.
        """
        return [c for c, loc in zip(self._components, self._locations) if loc != ON_PREM]

    def on_prem(self) -> List[str]:
        """Components placed at the on-prem site (location 0)."""
        return [c for c, loc in zip(self._components, self._locations) if loc == ON_PREM]

    def components_at(self, location: int) -> List[str]:
        """Components placed at exactly the given location id."""
        return [c for c, loc in zip(self._components, self._locations) if loc == location]

    def locations_used(self) -> List[int]:
        """Sorted distinct location ids this plan places at least one component on."""
        return sorted(set(self._locations))

    def offload_count(self) -> int:
        return len(self.offloaded())

    def is_cross_location(self, comp_a: str, comp_b: str) -> bool:
        """Whether the two components live in different datacenters under this plan."""
        return self[comp_a] != self[comp_b]

    def moved_components(self, baseline: "MigrationPlan") -> List[str]:
        """Components whose location differs from ``baseline`` (usually all-on-prem)."""
        if set(baseline.components) != set(self._components):
            raise ValueError("plans describe different component sets")
        return [c for c in self._components if self[c] != baseline[c]]

    # -- derivation --------------------------------------------------------------------
    def with_location(self, component: str, location: int) -> "MigrationPlan":
        """A copy of this plan with one component reassigned."""
        if component not in self._index:
            raise KeyError(f"component {component!r} not in plan")
        assignment = dict(zip(self._components, self._locations))
        assignment[component] = int(location)
        return MigrationPlan(assignment, order=self._components)

    def with_pinned(self, pins: Mapping[str, int]) -> "MigrationPlan":
        """A copy of this plan with the given components forced to fixed locations."""
        assignment = dict(zip(self._components, self._locations))
        for comp, loc in pins.items():
            if comp not in assignment:
                raise KeyError(f"component {comp!r} not in plan")
            assignment[comp] = int(loc)
        return MigrationPlan(assignment, order=self._components)

    # -- serialization -------------------------------------------------------------------
    def to_dict(self) -> Dict[str, int]:
        return dict(zip(self._components, self._locations))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str, order: Optional[Sequence[str]] = None) -> "MigrationPlan":
        data = json.loads(payload)
        if not isinstance(data, dict):
            raise ValueError("plan JSON must be an object mapping component -> location")
        return cls({str(k): int(v) for k, v in data.items()}, order=order)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MigrationPlan(offloaded={self.offload_count()}/{len(self)}: "
            f"{sorted(self.offloaded())})"
        )
