"""Multi-location cluster substrate: datacenters, network model, placements, autoscalers."""

from .autoscaler import AutoscalerConfig, ClusterAutoscaler, StorageAutoscaler
from .network import (
    LinkSpec,
    NetworkModel,
    default_multi_location_network,
    default_network_model,
)
from .placement import MigrationPlan
from .topology import (
    CLOUD,
    ON_PREM,
    Datacenter,
    HybridCluster,
    NodeSpec,
    default_hybrid_cluster,
    default_multi_location_cluster,
)

__all__ = [
    "ON_PREM",
    "CLOUD",
    "NodeSpec",
    "Datacenter",
    "HybridCluster",
    "default_hybrid_cluster",
    "default_multi_location_cluster",
    "LinkSpec",
    "NetworkModel",
    "default_network_model",
    "default_multi_location_network",
    "MigrationPlan",
    "AutoscalerConfig",
    "ClusterAutoscaler",
    "StorageAutoscaler",
]
