"""Hybrid cloud substrate: datacenters, network model, placements and autoscalers."""

from .autoscaler import AutoscalerConfig, ClusterAutoscaler, StorageAutoscaler
from .network import LinkSpec, NetworkModel, default_network_model
from .placement import MigrationPlan
from .topology import (
    CLOUD,
    ON_PREM,
    Datacenter,
    HybridCluster,
    NodeSpec,
    default_hybrid_cluster,
)

__all__ = [
    "ON_PREM",
    "CLOUD",
    "NodeSpec",
    "Datacenter",
    "HybridCluster",
    "default_hybrid_cluster",
    "LinkSpec",
    "NetworkModel",
    "default_network_model",
    "MigrationPlan",
    "AutoscalerConfig",
    "ClusterAutoscaler",
    "StorageAutoscaler",
]
