"""Scenario factory: named stress families and forecast-weighted scenario sets.

Hand-authoring :class:`~repro.quality.scenarios.ScenarioSpec`s covers the futures the
owner thought of; the factory generates the ones every placement review should check.
:class:`ScenarioFactory` derives, from an evaluator's learned artifacts (API rate
series, locations, billable sites), a portfolio of named stress families:

* **flash crowd** — a uniform traffic burst (the paper's Thanksgiving spike);
* **regional outage** — one :class:`~repro.quality.faults.LocationOutage` scenario
  per remote site;
* **egress price shock** — the provider repricing cross-site traffic
  (:class:`~repro.quality.faults.PriceShock`);
* **payload inflation** — uniform payload growth (internal drift);
* **API-mix inversion** — today's cold APIs become hot and vice versa, with factors
  chosen to preserve total traffic volume.

:meth:`ScenarioFactory.seasonal` additionally decomposes the observed rate series
into quantile bands — each band becomes a scenario whose weight is the fraction of
time the workload spends there, the forecast-probability input
:class:`~repro.quality.scenarios.WeightedMean` / :class:`~repro.quality.scenarios.CVaR`
aggregate over.

The families double as the seed population of the adversarial certifier
(:mod:`repro.quality.adversary`): the worst-case search starts from them, so a
certificate's worst-case spec is never weaker than the enumerated families.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.topology import ON_PREM
from .faults import LocationOutage, PriceShock
from .scenarios import ScenarioSet, ScenarioSpec

__all__ = ["ScenarioFactory"]


class ScenarioFactory:
    """Generates named stress families from learned workload + topology artifacts."""

    def __init__(
        self,
        locations: Sequence[int],
        api_rates: Mapping[str, Sequence[float]],
        baseline_name: str = "observed",
    ) -> None:
        """``locations`` is the topology's location-id list (on-prem first by
        convention); ``api_rates`` the observed per-API request-rate series the
        mix/seasonal families are derived from."""
        self.locations = tuple(int(loc) for loc in locations)
        self.api_rates = {api: list(series) for api, series in api_rates.items()}
        self.baseline_name = baseline_name

    @classmethod
    def from_evaluator(
        cls,
        evaluator,
        locations: Optional[Sequence[int]] = None,
        baseline_name: str = "observed",
    ) -> "ScenarioFactory":
        """Derive a factory from a :class:`~repro.quality.evaluator.QualityEvaluator`."""
        if locations is None:
            locations = evaluator.performance.network.locations()
        return cls(
            locations=locations,
            api_rates=evaluator.estimate.api_rates,
            baseline_name=baseline_name,
        )

    @classmethod
    def from_testbed(cls, testbed, **kwargs) -> "ScenarioFactory":
        """Derive a factory from an :class:`~repro.analysis.testbed.Testbed`."""
        return cls.from_evaluator(testbed.evaluator(), **kwargs)

    # -- derived workload statistics ---------------------------------------------------------
    @property
    def remote_locations(self) -> Tuple[int, ...]:
        return tuple(loc for loc in self.locations if loc != ON_PREM)

    def api_shares(self) -> Dict[str, float]:
        """Each API's share of total observed traffic (empty when nothing observed)."""
        totals = {api: float(sum(series)) for api, series in self.api_rates.items()}
        grand_total = sum(totals.values())
        if grand_total <= 0:
            return {}
        return {api: total / grand_total for api, total in totals.items()}

    def total_rate_series(self) -> List[float]:
        """The observed total request-rate series (elementwise API sum)."""
        series_list = [series for series in self.api_rates.values() if series]
        if not series_list:
            return []
        steps = min(len(series) for series in series_list)
        return [
            sum(series[step] for series in series_list) for step in range(steps)
        ]

    # -- stress families ----------------------------------------------------------------------
    def flash_crowd(self, scale: float = 3.0, weight: float = 1.0) -> ScenarioSpec:
        """A uniform traffic burst (the paper's seasonal-spike motivation)."""
        return ScenarioSpec(
            name=f"flash-crowd-x{scale:g}", rate_scale=scale, weight=weight
        )

    def regional_outages(
        self, weight: float = 1.0, **fault_kwargs
    ) -> List[ScenarioSpec]:
        """One :class:`~repro.quality.faults.LocationOutage` scenario per remote site."""
        return [
            ScenarioSpec(
                name=f"outage-loc{location}",
                weight=weight,
                faults=(LocationOutage(location, **fault_kwargs),),
            )
            for location in self.remote_locations
        ]

    def egress_price_shock(
        self, factor: float = 2.0, weight: float = 1.0
    ) -> ScenarioSpec:
        """The provider multiplying every region's egress price by ``factor``."""
        return ScenarioSpec(
            name=f"egress-shock-x{factor:g}",
            weight=weight,
            faults=(PriceShock(egress_factor=factor),),
        )

    def payload_inflation(
        self, factor: float = 2.0, weight: float = 1.0
    ) -> ScenarioSpec:
        """Uniform payload growth — internal drift inflating every API's footprint."""
        return ScenarioSpec(
            name=f"payload-x{factor:g}", payload_scale=factor, weight=weight
        )

    def api_mix_inversion(self, weight: float = 1.0) -> Optional[ScenarioSpec]:
        """Cold APIs become hot and vice versa, preserving total traffic volume.

        Each API's rate factor is ``mean_share / share`` — the inverse-share tilt,
        normalized so the expected total request volume matches the observed one
        (``Σ share·factor = 1``).  Returns ``None`` when shares are unavailable or
        the mix is a single API (inversion is the identity there).
        """
        shares = self.api_shares()
        positive = {api: share for api, share in shares.items() if share > 0}
        if len(positive) < 2:
            return None
        mean_share = sum(positive.values()) / len(positive)
        factors = {api: mean_share / share for api, share in positive.items()}
        if all(abs(factor - 1.0) < 1e-12 for factor in factors.values()):
            return None
        return ScenarioSpec(
            name="api-mix-inversion", api_rate_factors=factors, weight=weight
        )

    def stress_families(
        self,
        include_baseline: bool = True,
        flash_crowd_scale: float = 3.0,
        payload_factor: float = 2.0,
        egress_factor: float = 2.0,
    ) -> ScenarioSet:
        """The full portfolio of named stress families as one scenario set."""
        specs: List[ScenarioSpec] = []
        if include_baseline:
            specs.append(ScenarioSpec(name=self.baseline_name))
        specs.append(self.flash_crowd(flash_crowd_scale))
        specs.extend(self.regional_outages())
        specs.append(self.egress_price_shock(egress_factor))
        specs.append(self.payload_inflation(payload_factor))
        inversion = self.api_mix_inversion()
        if inversion is not None:
            specs.append(inversion)
        return ScenarioSet(tuple(specs))

    # -- seasonal decomposition -----------------------------------------------------------------
    def seasonal(
        self,
        series: Optional[Sequence[float]] = None,
        bands: int = 3,
    ) -> ScenarioSet:
        """Decompose an observed rate series into forecast-weighted rate bands.

        The series (default: the observed total request rate) is split into
        ``bands`` equal-occupancy quantile bands; each non-empty band becomes a
        scenario whose ``rate_scale`` is the band's mean rate relative to the
        overall mean and whose ``weight`` is the fraction of time steps falling in
        the band.  Weights sum to 1, which makes the set the natural input for
        :class:`~repro.quality.scenarios.WeightedMean` (the expected objective over
        the seasonal profile) and :class:`~repro.quality.scenarios.CVaR` (the peak
        tail).
        """
        if bands < 1:
            raise ValueError("bands must be >= 1")
        values = [float(v) for v in (series if series is not None else self.total_rate_series())]
        if not values:
            raise ValueError("seasonal decomposition needs a non-empty rate series")
        overall_mean = sum(values) / len(values)
        if overall_mean <= 0:
            raise ValueError("seasonal decomposition needs a positive mean rate")
        ranked = sorted(values)
        specs: List[ScenarioSpec] = []
        steps = len(ranked)
        for band in range(bands):
            lo = band * steps // bands
            hi = (band + 1) * steps // bands
            members = ranked[lo:hi]
            if not members:
                continue
            band_mean = sum(members) / len(members)
            specs.append(
                ScenarioSpec(
                    name=f"season-{band + 1}of{bands}",
                    rate_scale=band_mean / overall_mean,
                    weight=len(members) / steps,
                )
            )
        return ScenarioSet(tuple(specs))
