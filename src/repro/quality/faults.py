"""Composable infrastructure faults riding the scenario axis.

The scenario axis (``quality/scenarios.py``) describes *workload* futures — rate
bursts, mix shifts, payload growth.  This module adds the *infrastructure* futures a
robustness certificate has to price: a region going down, a link degrading, a
provider repricing, a node pool shrinking.  Each :class:`FaultSpec` is a small frozen
description that compiles into the existing scenario-view machinery, so a faulted
:class:`~repro.quality.scenarios.ScenarioSpec` evaluates through exactly the same
S×P batched pipeline, aggregators and optimizers as a workload-only one:

* :class:`LocationOutage` — a location's capacity goes to zero: components are
  forcibly evacuated (placements there become constraint violations, expressed
  through derived preferences), links into the site degrade to time-out-like
  characteristics (QPerf prices stranded cross-site edges against them), and the
  availability model charges migrations into the failed site a heavy
  failure-domain weight (QAvai degradation).
* :class:`LinkDegradation` — scale or sever specific
  :class:`~repro.cluster.network.NetworkModel` links (latency × factor + flat add,
  bandwidth × factor); the faulted network feeds a performance scenario view whose
  per-API Δ tables reprice every relocated edge.
* :class:`PriceShock` — per-region :class:`~repro.quality.cost.PricingCatalog`
  multipliers on compute/storage/egress prices.
* :class:`CapacityCut` — partial node-pool loss: an elastic site's node spec
  shrinks (the autoscaler packs fewer pods per node, allocating more of them), the
  on-prem site's resource limits shrink (plans leaning on on-prem capacity become
  infeasible).

Compilation happens in :meth:`QualityEvaluator._scenario_context
<repro.quality.evaluator.QualityEvaluator._scenario_context>`: the faults of a spec
are applied in order to a :class:`FaultedStack` holding the scenario's
network/availability/catalog/preference artifacts, and the resulting derived models
are baked into the compiled scenario context exactly like payload-scaled footprints
are.  Fault-free specs never construct a stack, keeping the fault-free path
byte-identical to the pre-fault evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..cluster.network import NetworkModel
from ..cluster.topology import ON_PREM
from .availability import ApiAvailabilityModel
from .cost import PricingCatalog
from .preferences import MigrationPreferences

__all__ = [
    "FaultSpec",
    "FaultedStack",
    "LocationOutage",
    "LinkDegradation",
    "PriceShock",
    "CapacityCut",
]

#: The on-prem resource axes the peak constraint can limit (mirrors
#: ``repro.quality.problem.ONPREM_RESOURCES``; kept literal to avoid an import
#: cycle through the problem module).
_ONPREM_RESOURCES = ("cpu_millicores", "memory_mb", "storage_gb")


@dataclass
class FaultedStack:
    """Mutable bundle of scenario artifacts the faults of one spec transform in order.

    Built by the evaluator from its base models, mutated by each
    :meth:`FaultSpec.apply` in declaration order, then read back into the compiled
    scenario context.  Identity comparisons against the base objects tell the
    evaluator which artifacts actually changed (e.g. an unchanged network keeps the
    performance view's ``changed_apis`` optimization available).
    """

    network: NetworkModel
    availability: ApiAvailabilityModel
    catalogs: Dict[int, PricingCatalog]
    preferences: MigrationPreferences
    locations: Tuple[int, ...]
    catalogs_changed: bool = False


@dataclass(frozen=True)
class FaultSpec:
    """One composable infrastructure fault; subclasses define the transformation.

    Subclasses must be frozen, hold only hashable scalar/tuple parameters, provide
    a stable :meth:`key` (it enters the owning spec's ``compile_key``) and declare
    the bounds of their searchable parameters through class-level documentation —
    the adversary (``quality/adversary.py``) mutates them only within the ranges
    its :class:`~repro.quality.adversary.AdversaryBounds` declare.
    """

    def key(self) -> Tuple:
        """Stable hashable identity of this fault's compiled effect."""
        raise NotImplementedError

    def apply(self, stack: FaultedStack) -> None:
        """Transform the scenario artifact stack in place."""
        raise NotImplementedError


@dataclass(frozen=True)
class LocationOutage(FaultSpec):
    """A location fails: capacity → 0, components evacuated, links degraded.

    ``availability_penalty`` (≥ 1) multiplies the failed site's failure-domain
    weight in QAvai — migrating state *into* a failing site is charged that much
    more heavily.  ``latency_factor`` / ``bandwidth_factor`` degrade every link
    touching the site (time-out-like characteristics rather than severed links, so
    the delay injector stays total).  With ``evacuate`` (default), placements at
    the failed remote site become whitelist violations — except for components the
    owner *pinned* there, which cannot move by definition and instead pay the
    availability/performance penalties.  An on-prem outage is expressed through
    zeroed on-prem resource limits instead (the whitelist always admits on-prem).
    """

    location: int
    availability_penalty: float = 4.0
    latency_factor: float = 50.0
    bandwidth_factor: float = 0.05
    evacuate: bool = True

    def __post_init__(self) -> None:
        if self.location < 0:
            raise ValueError("location must be a non-negative id")
        if self.availability_penalty < 1.0:
            raise ValueError(
                "availability_penalty must be >= 1 (an outage never makes a "
                "destination safer)"
            )
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1 for an outage")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")

    def key(self) -> Tuple:
        return (
            "location-outage",
            int(self.location),
            float(self.availability_penalty),
            float(self.latency_factor),
            float(self.bandwidth_factor),
            bool(self.evacuate),
        )

    def apply(self, stack: FaultedStack) -> None:
        site = int(self.location)
        # Links touching the failed site degrade to time-out-like characteristics.
        pairs = [(site, other) for other in stack.network.locations()]
        stack.network = stack.network.degraded(
            pairs=pairs,
            latency_factor=self.latency_factor,
            bandwidth_factor=self.bandwidth_factor,
        )
        # Migrations into the failed site carry a heavy failure-domain weight.
        weights = dict(stack.availability.location_weights)
        weights[site] = max(weights.get(site, 1.0), 1.0) * self.availability_penalty
        stack.availability = stack.availability.derive(location_weights=weights)
        if not self.evacuate:
            return
        if site == ON_PREM:
            # On-prem capacity goes to zero: every resource axis the peak
            # constraint understands is limited to nothing.
            limits = dict(stack.preferences.onprem_limits)
            for resource in _ONPREM_RESOURCES:
                limits[resource] = 0.0
            stack.preferences = replace(stack.preferences, onprem_limits=limits)
            return
        survivors = tuple(loc for loc in stack.locations if loc != site)
        allowed: Dict[str, Tuple[int, ...]] = {}
        for component in stack.availability.baseline_plan.components:
            if stack.preferences.pinned_placement.get(component) == site:
                # A pin into the failed site cannot be evacuated; keep the site
                # admissible so the preference object stays constructible — the
                # availability/performance penalties price the outage instead.
                continue
            existing = stack.preferences.allowed_locations.get(component)
            allowed[component] = (
                survivors
                if existing is None
                else tuple(loc for loc in existing if loc != site)
            )
        stack.preferences = replace(stack.preferences, allowed_locations=allowed)


@dataclass(frozen=True)
class LinkDegradation(FaultSpec):
    """Scale or penalize specific network links (all inter-site links by default).

    ``latency_factor`` multiplies and ``extra_latency_ms`` adds to each selected
    link's round-trip latency; ``bandwidth_factor`` multiplies its bandwidth.  A
    "severed" link is modeled as an extreme degradation (huge latency factor, tiny
    bandwidth factor) so the delay injector stays total over the plan space.
    """

    pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    extra_latency_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1 (degradation, not upgrade)")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if self.extra_latency_ms < 0:
            raise ValueError("extra_latency_ms must be non-negative")
        if self.pairs is not None:
            normalized = tuple(
                (int(a), int(b)) if a <= b else (int(b), int(a))
                for a, b in self.pairs
            )
            object.__setattr__(self, "pairs", normalized)

    def key(self) -> Tuple:
        return (
            "link-degradation",
            self.pairs,
            float(self.latency_factor),
            float(self.bandwidth_factor),
            float(self.extra_latency_ms),
        )

    def apply(self, stack: FaultedStack) -> None:
        stack.network = stack.network.degraded(
            pairs=self.pairs,
            latency_factor=self.latency_factor,
            bandwidth_factor=self.bandwidth_factor,
            extra_latency_ms=self.extra_latency_ms,
        )


@dataclass(frozen=True)
class PriceShock(FaultSpec):
    """Per-region pricing-catalog multipliers (compute / storage / egress).

    ``locations`` selects which billable regions reprice (default: all of them).
    """

    locations: Optional[Tuple[int, ...]] = None
    compute_factor: float = 1.0
    storage_factor: float = 1.0
    egress_factor: float = 1.0

    def __post_init__(self) -> None:
        for label, factor in (
            ("compute_factor", self.compute_factor),
            ("storage_factor", self.storage_factor),
            ("egress_factor", self.egress_factor),
        ):
            if factor < 0:
                raise ValueError(f"{label} must be non-negative")
        if self.locations is not None:
            object.__setattr__(
                self, "locations", tuple(int(loc) for loc in self.locations)
            )

    def key(self) -> Tuple:
        return (
            "price-shock",
            self.locations,
            float(self.compute_factor),
            float(self.storage_factor),
            float(self.egress_factor),
        )

    def apply(self, stack: FaultedStack) -> None:
        targets = (
            self.locations if self.locations is not None else tuple(stack.catalogs)
        )
        for location in targets:
            catalog = stack.catalogs.get(location)
            if catalog is None:
                continue
            stack.catalogs[location] = PricingCatalog(
                node_spec=catalog.node_spec.scaled(price_factor=self.compute_factor),
                storage_usd_per_gb_month=catalog.storage_usd_per_gb_month
                * self.storage_factor,
                egress_usd_per_gb=catalog.egress_usd_per_gb * self.egress_factor,
                autoscaler=catalog.autoscaler,
            )
            stack.catalogs_changed = True


@dataclass(frozen=True)
class CapacityCut(FaultSpec):
    """Partial node-pool loss at one location.

    ``remaining_fraction`` of the site's capacity survives.  At an elastic site the
    node spec shrinks (same price, fewer pods per node → more nodes for the same
    demand → higher compute bill); at the on-prem site the owner's resource limits
    shrink (plans leaning on on-prem capacity turn infeasible).
    """

    location: int
    remaining_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.location < 0:
            raise ValueError("location must be a non-negative id")
        if not 0.0 < self.remaining_fraction <= 1.0:
            raise ValueError("remaining_fraction must be in (0, 1]")

    def key(self) -> Tuple:
        return ("capacity-cut", int(self.location), float(self.remaining_fraction))

    def apply(self, stack: FaultedStack) -> None:
        site = int(self.location)
        if site == ON_PREM:
            limits = {
                resource: limit * self.remaining_fraction
                for resource, limit in stack.preferences.onprem_limits.items()
            }
            stack.preferences = replace(stack.preferences, onprem_limits=limits)
            return
        catalog = stack.catalogs.get(site)
        if catalog is None:
            raise ValueError(
                f"location {site} has no pricing catalog — a capacity cut needs "
                "either the on-prem site or a billable elastic site"
            )
        stack.catalogs[site] = PricingCatalog(
            node_spec=catalog.node_spec.scaled(
                capacity_factor=self.remaining_fraction
            ),
            storage_usd_per_gb_month=catalog.storage_usd_per_gb_month,
            egress_usd_per_gb=catalog.egress_usd_per_gb,
            autoscaler=catalog.autoscaler,
        )
        stack.catalogs_changed = True
