"""The scenario axis: first-class workload scenarios for robust plan evaluation.

The paper's advisor scores plans against *one* expected workload (the observed traffic,
possibly scaled).  Real recommendation rounds face a family of plausible futures —
bursts, API-mix shifts, payload growth — and a plan that is optimal for the observed
workload can be badly suboptimal under a forecast (the burst regret that Figure 2
motivates).  This module makes that family explicit:

* :class:`ScenarioSpec` describes one workload scenario *relative to the evaluator's
  base period of interest*: a uniform traffic multiplier (``rate_scale``), per-API
  relative mix multipliers (``api_rate_factors``, e.g. derived from
  :meth:`repro.workload.profiles.ApiMix.reweighted`), and per-API payload-size
  multipliers (``payload_factors``, the internal-drift axis of
  :class:`~repro.workload.profiles.BehaviorChange`).  Specs are *compiled* by the
  evaluator into the artifacts the quality models bake in at construction time: a
  scenario :class:`~repro.learning.estimator.ResourceEstimate` (per-API rate series →
  autoscaler node series, storage usage, request-rate buckets), a payload-scaled
  :class:`~repro.learning.footprint.NetworkFootprint` (edge Δ tables + traffic bytes)
  and a scenario trace-weight vector (the τ_A of QPerf/QAvai).
* :class:`ScenarioSet` is an ordered, named collection of specs — the S axis of the
  S×P objective tensor produced by
  :meth:`repro.quality.evaluator.QualityEvaluator.evaluate_vectors`.
* :class:`RobustAggregator` collapses the scenario axis back to the scalar objectives
  the optimizers consume: :class:`WorstCase` (robust optimization's default),
  :class:`WeightedMean` (forecast-probability weighting) and :class:`CVaR`
  (conditional value-at-risk over the worst ``alpha`` tail).

Contract: aggregating a single-scenario axis is *bitwise* the identity — ``combine``
on an ``(1, P)`` tensor returns row 0 unchanged — which is what keeps robust
evaluation of the default scenario byte-identical to the classic single-workload path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..learning.footprint import EdgeFootprint, NetworkFootprint
from ..workload.profiles import WorkloadScenario
from .faults import FaultSpec

__all__ = [
    "ScenarioSpec",
    "ScenarioSet",
    "ScenarioQuality",
    "RobustAggregator",
    "WorstCase",
    "WeightedMean",
    "CVaR",
    "scaled_footprint",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One workload scenario, expressed relative to the evaluator's base workload.

    ``rate_scale`` multiplies every API's request-rate series uniformly (the paper's
    5x burst is ``rate_scale=5``).  ``api_rate_factors`` multiplies individual APIs'
    rates on top of that — the relative mix shift of an
    :meth:`~repro.workload.profiles.ApiMix.reweighted` composition drift; the same
    factors also reweight the τ_A trace weights of QPerf/QAvai so a scenario in which
    an API carries more traffic also weighs that API's slowdown and disruption more.
    ``payload_factors`` / ``payload_scale`` multiply the learned per-API network
    footprints (request+response bytes), which grows both the injected delays (Eq. 2)
    and the egress traffic bill (Eq. 10) — internal drift à la
    :class:`~repro.workload.profiles.BehaviorChange`.

    ``weight`` is the scenario's probability mass under weighted aggregators
    (:class:`WeightedMean`, :class:`CVaR`); :class:`WorstCase` ignores it.

    ``faults`` composes infrastructure faults (:mod:`repro.quality.faults`) into the
    scenario: location outages, link degradations, price shocks and capacity cuts
    compile into derived network/availability/cost/preference artifacts alongside
    the workload changes, so a faulted scenario rides the same S×P batched
    evaluation as a workload-only one.
    """

    name: str
    rate_scale: float = 1.0
    api_rate_factors: Mapping[str, float] = field(default_factory=dict)
    payload_scale: float = 1.0
    payload_factors: Mapping[str, float] = field(default_factory=dict)
    weight: float = 1.0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.rate_scale < 0:
            raise ValueError("rate_scale must be non-negative")
        if self.payload_scale <= 0:
            raise ValueError("payload_scale must be positive")
        if self.weight <= 0:
            raise ValueError("scenario weight must be positive")
        for api, factor in self.api_rate_factors.items():
            if factor < 0:
                raise ValueError(f"rate factor for API {api!r} must be non-negative")
        for api, factor in self.payload_factors.items():
            if factor <= 0:
                raise ValueError(f"payload factor for API {api!r} must be positive")
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise TypeError(f"faults must be FaultSpec instances, got {fault!r}")

    # -- derived factors -------------------------------------------------------------------
    def rate_factor(self, api: str) -> float:
        """Total request-rate multiplier of one API under this scenario."""
        return self.rate_scale * self.api_rate_factors.get(api, 1.0)

    def mix_factor(self, api: str) -> float:
        """Relative trace-weight multiplier of one API (mix shift only, not the
        uniform ``rate_scale`` — scaling all APIs alike must not inflate QPerf/QAvai)."""
        return self.api_rate_factors.get(api, 1.0)

    def payload_factor(self, api: str) -> float:
        """Network-footprint byte multiplier of one API under this scenario."""
        return self.payload_scale * self.payload_factors.get(api, 1.0)

    @property
    def changes_rates(self) -> bool:
        return self.rate_scale != 1.0 or any(
            factor != 1.0 for factor in self.api_rate_factors.values()
        )

    @property
    def changes_payloads(self) -> bool:
        return self.payload_scale != 1.0 or any(
            factor != 1.0 for factor in self.payload_factors.values()
        )

    @property
    def is_baseline(self) -> bool:
        """Whether the spec is the identity transform of the base workload."""
        return not self.changes_rates and not self.changes_payloads and not self.faults

    def with_faults(self, *faults: FaultSpec) -> "ScenarioSpec":
        """A copy with the given faults appended to this spec's fault stack."""
        return ScenarioSpec(
            name=self.name,
            rate_scale=self.rate_scale,
            api_rate_factors=dict(self.api_rate_factors),
            payload_scale=self.payload_scale,
            payload_factors=dict(self.payload_factors),
            weight=self.weight,
            faults=self.faults + tuple(faults),
        )

    def changed_payload_apis(self) -> Optional[frozenset]:
        """APIs whose footprint bytes this spec changes (``None`` = all of them)."""
        if self.payload_scale != 1.0:
            return None
        return frozenset(
            api for api, factor in self.payload_factors.items() if factor != 1.0
        )

    def compile_key(self) -> Tuple:
        """Identity of the spec's *compiled artifacts* (estimate, footprint, weights).

        Excludes ``weight``: the aggregation weight never enters the compiled
        models, so weight-only tuning must not recompile scenario contexts.  Fault
        keys are appended only when faults are present, so fault-free specs keep
        the exact pre-fault key shape (and cache identity).
        """
        key = (
            self.name,
            float(self.rate_scale),
            tuple(sorted((api, float(f)) for api, f in self.api_rate_factors.items())),
            float(self.payload_scale),
            tuple(sorted((api, float(f)) for api, f in self.payload_factors.items())),
        )
        if self.faults:
            key = key + (tuple(fault.key() for fault in self.faults),)
        return key

    def identity_key(self) -> Tuple:
        """Name-stripped compiled identity: equal keys ⇒ identical compiled artifacts.

        Two specs that differ only in ``name`` (and ``weight``) drive the exact same
        scaled estimate, scenario footprint, performance view and cost model.  The
        adversary dedups probe specs on this key, and the evaluator reuses compiled
        scenario state across it, so re-certification never recompiles a workload
        shape it has already seen under another name.
        """
        return self.compile_key()[1:]

    def key(self) -> Tuple:
        """Canonical hashable identity used by the evaluator's result caches."""
        return self.compile_key() + (float(self.weight),)

    # -- construction ----------------------------------------------------------------------
    @classmethod
    def from_workload(
        cls,
        scenario: WorkloadScenario,
        base: WorkloadScenario,
        name: Optional[str] = None,
        weight: float = 1.0,
        at_time_ms: Optional[float] = None,
    ) -> "ScenarioSpec":
        """Compile a :class:`~repro.workload.profiles.WorkloadScenario` into a spec.

        The spec captures the scenario *relative to* ``base`` (typically the observed
        workload the evaluator was built on): ``rate_scale`` is the ratio of diurnal
        mean rates, ``api_rate_factors`` the ratio of the *effective* API-mix
        probabilities and ``payload_factors`` the ratio of the effective
        :class:`~repro.workload.profiles.BehaviorChange` payload scales — both sides
        evaluated after the composition/payload drifts active at ``at_time_ms``
        (default end of day, each on its own clock).  Taking ratios against the
        base's effective state keeps chained drift rounds from double-applying
        changes the base scenario (and the telemetry learned under it) already
        carries.
        """
        time_ms = (
            at_time_ms if at_time_ms is not None else scenario.profile.duration_ms
        )
        base_time_ms = (
            at_time_ms if at_time_ms is not None else base.profile.duration_ms
        )
        base_mean = base.profile.mean_rate()
        rate_scale = (
            scenario.profile.mean_rate() / base_mean if base_mean > 0 else 1.0
        )
        base_probs = base.mix_at(base_time_ms).probabilities()
        probs = scenario.mix_at(time_ms).probabilities()
        # Factors cover every API of the BASE mix: an API the forecast mix drops
        # (or zeroes) compiles to factor 0.0 — its traffic vanishes in the scenario
        # rather than silently staying at the observed rate.
        api_rate_factors = {}
        for api, base_probability in base_probs.items():
            if base_probability <= 0:
                continue
            factor = probs.get(api, 0.0) / base_probability
            if factor != 1.0:
                api_rate_factors[api] = factor
        payload_factors = {}
        for api in probs:
            base_scale = base.payload_scale_at(api, base_time_ms)
            factor = (
                scenario.payload_scale_at(api, time_ms) / base_scale
                if base_scale > 0
                else 1.0
            )
            if factor != 1.0:
                payload_factors[api] = factor
        return cls(
            name=name or scenario.name,
            rate_scale=rate_scale,
            api_rate_factors=api_rate_factors,
            payload_factors=payload_factors,
            weight=weight,
        )


@dataclass(frozen=True)
class ScenarioSet:
    """An ordered, uniquely-named collection of scenarios — the S axis."""

    scenarios: Tuple[ScenarioSpec, ...]

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a scenario set needs at least one scenario")
        names = [spec.name for spec in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario names must be unique, got {names}")

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> ScenarioSpec:
        return self.scenarios[index]

    @property
    def names(self) -> List[str]:
        return [spec.name for spec in self.scenarios]

    def weight_array(self) -> np.ndarray:
        return np.asarray([spec.weight for spec in self.scenarios], dtype=np.float64)

    def key(self) -> Tuple:
        return tuple(spec.key() for spec in self.scenarios)

    # -- construction ----------------------------------------------------------------------
    @classmethod
    def baseline(cls, name: str = "baseline") -> "ScenarioSet":
        """The single default scenario: the evaluator's base workload, unchanged."""
        return cls((ScenarioSpec(name=name),))

    @classmethod
    def coerce(
        cls, scenarios: Union["ScenarioSet", ScenarioSpec, Sequence[ScenarioSpec]]
    ) -> "ScenarioSet":
        """Accept a set, a single spec, or any sequence of specs."""
        if isinstance(scenarios, cls):
            return scenarios
        if isinstance(scenarios, ScenarioSpec):
            return cls((scenarios,))
        return cls(tuple(scenarios))

    @classmethod
    def with_bursts(
        cls,
        scales: Sequence[float],
        baseline_name: str = "observed",
        weight: float = 1.0,
        include_baseline: bool = True,
    ) -> "ScenarioSet":
        """Baseline plus one uniform burst scenario per scale factor."""
        specs = [ScenarioSpec(name=baseline_name)] if include_baseline else []
        for scale in scales:
            specs.append(
                ScenarioSpec(name=f"burst-x{scale:g}", rate_scale=scale, weight=weight)
            )
        return cls(tuple(specs))

    @classmethod
    def from_workloads(
        cls,
        scenarios: Sequence[WorkloadScenario],
        base: WorkloadScenario,
        include_baseline: bool = True,
        baseline_name: str = "observed",
    ) -> "ScenarioSet":
        """Compile workload descriptions into a scenario set relative to ``base``."""
        specs: List[ScenarioSpec] = (
            [ScenarioSpec(name=baseline_name)] if include_baseline else []
        )
        for scenario in scenarios:
            specs.append(ScenarioSpec.from_workload(scenario, base))
        return cls(tuple(specs))


@dataclass(frozen=True)
class ScenarioQuality:
    """Quality of one plan under one scenario (one S-slice of the objective tensor).

    ``values`` holds the K minimized objective values in the problem's column order
    (``names`` their labels); the legacy ``perf`` / ``avail`` / ``cost`` fields are
    the paper-triple view of that vector.  Results built the historical way — just
    the triple — behave identically through :meth:`objectives`.
    """

    scenario: str
    perf: float
    avail: float
    cost: float
    feasible: bool
    violations: Tuple[str, ...] = ()
    values: Optional[Tuple[float, ...]] = None
    names: Optional[Tuple[str, ...]] = None

    def objectives(self) -> Tuple[float, ...]:
        if self.values is not None:
            return self.values
        return (self.perf, self.avail, self.cost)

    def value(self, name: str) -> float:
        """One objective value by name (e.g. ``entry.value("egress_gb")``)."""
        names = self.names if self.names is not None else ("qperf", "qavai", "qcost")
        try:
            return self.objectives()[names.index(name)]
        except ValueError:
            raise KeyError(f"no objective named {name!r} in {names}") from None


# ---------------------------------------------------------------------------
# Robust aggregators
# ---------------------------------------------------------------------------


class RobustAggregator:
    """Collapses an ``(S, P)`` objective tensor slice to a ``(P,)`` scalar objective.

    Contract (enforced by the property suite in ``tests/test_scenarios.py``):

    * **identity on S=1** — ``combine`` of a single-scenario tensor returns row 0
      bitwise unchanged, whatever the weights;
    * **monotone** — raising any entry never lowers the aggregate;
    * **bounded** — the aggregate lies within ``[min, max]`` over the scenario axis.
    """

    name: str = "aggregator"

    def key(self) -> Tuple:
        """Hashable identity for the evaluator's per-(scenario set, aggregator) caches."""
        return (self.name,)

    def combine(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}{self.key()[1:]}"


class WorstCase(RobustAggregator):
    """Classic robust optimization: score each plan by its worst scenario."""

    name = "worst-case"

    def combine(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        if values.shape[0] == 1:
            return values[0]
        return values.max(axis=0)


class WeightedMean(RobustAggregator):
    """Forecast-probability weighting: the expected objective over the scenario set."""

    name = "weighted-mean"

    def combine(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        if values.shape[0] == 1:
            return values[0]
        return (values * weights[:, None]).sum(axis=0) / weights.sum()


class CVaR(RobustAggregator):
    """Conditional value-at-risk: the expected objective over the worst ``alpha`` tail.

    **Alpha convention.** ``alpha`` in ``(0, 1]`` is the *tail mass*: the fraction
    of total scenario probability the aggregate averages over, cut from the worst
    (largest-objective) end of the scenario axis with the boundary scenario counted
    fractionally.  The boundary laws are exact, not just asymptotic:

    * ``alpha == 1.0`` **is** :class:`WeightedMean` — the tail covers every
      scenario, and ``combine`` computes the identical weighted-mean expression,
      so the results agree bitwise on any tensor.
    * ``alpha → 0⁺`` **is** :class:`WorstCase` — once the tail mass fits entirely
      inside each column's worst scenario (``alpha * Σw ≤ min_s w_s`` suffices),
      the fractional average collapses to that scenario's exact value (``max``
      over the axis, bitwise), with no ``(v·t)/t`` round-trip.

    Scenario weights are the probability masses the tail is cut from.
    """

    name = "cvar"

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)

    def key(self) -> Tuple:
        return (self.name, self.alpha)

    def combine(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        if values.shape[0] == 1:
            return values[0]
        if self.alpha == 1.0:
            # Boundary law: the full-mass tail IS the weighted mean (bitwise).
            return (values * weights[:, None]).sum(axis=0) / weights.sum()
        order = np.argsort(-values, axis=0, kind="stable")
        sorted_values = np.take_along_axis(values, order, axis=0)
        sorted_weights = weights[order]
        tail_mass = self.alpha * weights.sum()
        consumed_before = np.cumsum(sorted_weights, axis=0) - sorted_weights
        used = np.clip(tail_mass - consumed_before, 0.0, sorted_weights)
        combined = (sorted_values * used).sum(axis=0) / tail_mass
        # Boundary law: a tail that never spills past a column's worst scenario is
        # exactly that scenario's value — return it without the (v*t)/t round-trip
        # so CVaR(alpha→0⁺) matches WorstCase bitwise.
        within_worst = tail_mass <= sorted_weights[0]
        if np.any(within_worst):
            combined = np.where(within_worst, sorted_values[0], combined)
        return combined


# ---------------------------------------------------------------------------
# Footprint compilation
# ---------------------------------------------------------------------------


def scaled_footprint(footprint: NetworkFootprint, spec: ScenarioSpec) -> NetworkFootprint:
    """The learned footprint with the scenario's per-API payload factors applied.

    Returns ``footprint`` itself when the spec scales no payloads, so payload-neutral
    scenarios share every footprint-derived cache (edge Δ tables, replay rows) with
    the base scenario.
    """
    if not spec.changes_payloads:
        return footprint
    edges: List[EdgeFootprint] = []
    for api in footprint.apis:
        factor = spec.payload_factor(api)
        for (source, destination), edge in footprint.edges_of(api).items():
            edges.append(
                EdgeFootprint(
                    api=api,
                    source=source,
                    destination=destination,
                    request_bytes=edge.request_bytes * factor,
                    response_bytes=edge.response_bytes * factor,
                )
            )
    return NetworkFootprint(edges)
