"""Cloud hosting cost modeling (Section 4.1.3 and Appendix A).

The cost of a migration plan has three parts:

* **Compute** (Eq. 6-7): each elastic datacenter's cluster autoscaler allocates enough
  nodes to host the expected CPU/memory demand of the components placed *at that site*
  with a headroom δ; each allocated node is charged at that site's hourly rate.
* **Storage** (Eq. 8-9): volumes at an elastic site start at twice the migrated data
  size and grow by the headroom factor whenever they fill up; provisioned GB are
  charged per month at that site's rate.
* **Network traffic** (Eq. 10): traffic between components placed in different
  datacenters is charged at the egress price of the link's endpoints; the expected
  volume is reconstructed from the learned per-API network footprints and the expected
  API traffic.

Prices default to the generalized catalog of Appendix A (m5.large-class node at
$0.096/h, $0.08/GB-month storage, $0.09/GB egress) and can be overridden to match any
provider's billing catalog.  In the paper's two-location setup a single catalog prices
the single cloud; for N-location topologies pass ``catalogs`` — a mapping from elastic
location id to that region's :class:`PricingCatalog` — and every region is autoscaled
and billed independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.autoscaler import AutoscalerConfig, ClusterAutoscaler, StorageAutoscaler
from ..cluster.placement import MigrationPlan
from ..cluster.topology import CLOUD, NodeSpec, ON_PREM
from ..learning.estimator import ResourceEstimate
from ..learning.footprint import NetworkFootprint

__all__ = ["PricingCatalog", "CostEstimate", "CloudCostModel"]

_MS_PER_HOUR = 3_600_000.0
_MS_PER_MONTH = 30.0 * 24.0 * _MS_PER_HOUR
_BYTES_PER_GB = 1e9


@dataclass(frozen=True)
class PricingCatalog:
    """Cloud pricing knobs (Appendix A defaults)."""

    node_spec: NodeSpec = field(
        default_factory=lambda: NodeSpec(
            name="m5.large", cpu_millicores=2_000.0, memory_mb=8_192.0, hourly_price_usd=0.096
        )
    )
    storage_usd_per_gb_month: float = 0.08
    egress_usd_per_gb: float = 0.09
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)

    def __post_init__(self) -> None:
        if self.storage_usd_per_gb_month < 0 or self.egress_usd_per_gb < 0:
            raise ValueError("prices must be non-negative")


@dataclass
class CostEstimate:
    """Cost breakdown of one plan over the period of interest."""

    compute_usd: float
    storage_usd: float
    traffic_usd: float
    period_ms: float
    node_series: List[int] = field(default_factory=list)

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.storage_usd + self.traffic_usd

    def per_day_usd(self) -> float:
        """Total cost normalized to a 24-hour day (how Figures 11-14 report cost)."""
        if self.period_ms <= 0:
            return 0.0
        return self.total_usd * (24.0 * _MS_PER_HOUR / self.period_ms)

    def breakdown_per_day(self) -> Dict[str, float]:
        if self.period_ms <= 0:
            return {"compute": 0.0, "storage": 0.0, "traffic": 0.0}
        scale = 24.0 * _MS_PER_HOUR / self.period_ms
        return {
            "compute": self.compute_usd * scale,
            "storage": self.storage_usd * scale,
            "traffic": self.traffic_usd * scale,
        }


@dataclass
class _CostLowering:
    """Reusable arrays lowering one component order for the plan-matrix pipeline."""

    columns: Dict[str, int]
    baseline_row: np.ndarray
    storage_gb: np.ndarray
    stateful_columns: np.ndarray
    stateful_row_mask: np.ndarray
    src_cols: np.ndarray
    dst_cols: np.ndarray
    total_bytes: np.ndarray
    request_bytes: np.ndarray
    response_bytes: np.ndarray


class CloudCostModel:
    """Computes QCost for any plan from a resource estimate and learned footprints."""

    def __init__(
        self,
        catalog: PricingCatalog,
        estimate: ResourceEstimate,
        footprint: NetworkFootprint,
        storage_by_component: Mapping[str, float],
        baseline_plan: MigrationPlan,
        time_compression: float = 1.0,
        charge_cloud_egress_only: bool = False,
        catalogs: Optional[Mapping[int, PricingCatalog]] = None,
    ) -> None:
        """``time_compression`` maps simulated time to real time (the workload generator
        compresses one day into five minutes, i.e. a factor of 288): prices are charged
        on real (uncompressed) time so a compressed day costs a full day's bill.

        ``catalogs`` maps each billable (elastic) location id to its pricing catalog;
        when omitted, ``catalog`` prices the single cloud at location ``CLOUD`` — the
        paper's two-location setup."""
        if time_compression <= 0:
            raise ValueError("time_compression must be positive")
        self.catalog = catalog
        self.estimate = estimate
        self.footprint = footprint
        self.storage_by_component = dict(storage_by_component)
        self.baseline_plan = baseline_plan
        self.time_compression = time_compression
        self.charge_cloud_egress_only = charge_cloud_egress_only
        #: Billable locations and their catalogs; every other location is free.
        self.catalogs: Dict[int, PricingCatalog] = (
            dict(catalogs) if catalogs is not None else {CLOUD: catalog}
        )
        self._cluster_autoscalers: Dict[int, ClusterAutoscaler] = {
            loc: ClusterAutoscaler(cat.node_spec, cat.autoscaler)
            for loc, cat in self.catalogs.items()
        }
        self._storage_autoscalers: Dict[int, StorageAutoscaler] = {
            loc: StorageAutoscaler(cat.autoscaler) for loc, cat in self.catalogs.items()
        }
        # qcost is memoized by plan for the scalar (reference-oracle) path; the
        # batched pipeline scores each distinct plan exactly once and bypasses it.
        self._qcost_cache: Dict[MigrationPlan, float] = {}
        # Lowered views of the estimate/footprint for the plan-matrix pipeline,
        # keyed by the component order of the matrices.
        self._lowerings: Dict[Tuple[str, ...], "_CostLowering"] = {}
        self._rate_table_cache: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, List[float]]] = {}
        # Batched-path memo: per component order, raw plan-row bytes -> total USD.
        # Rows are scored independently, so cached values are bitwise stable no
        # matter which batch first computed them; this keeps feasibility masks and
        # objective scoring (and NSGA-II survivors across generations) from paying
        # the cost passes twice for the same plan.
        self._batch_cost_cache: Dict[Tuple[str, ...], Dict[bytes, float]] = {}

    def derive(
        self,
        estimate: Optional[ResourceEstimate] = None,
        footprint: Optional[NetworkFootprint] = None,
        catalogs: Optional[Mapping[int, PricingCatalog]] = None,
    ) -> "CloudCostModel":
        """A sibling cost model over a different period of interest / footprint.

        Used by the scenario axis: each compiled scenario bills its own resource
        estimate (autoscaler node series, storage usage, request-rate buckets) and
        payload-scaled footprint while sharing the catalogs, storage metadata and
        baseline plan.  ``catalogs`` overrides the per-location pricing — the fault
        hook :class:`~repro.quality.faults.PriceShock` / :class:`~repro.quality.faults.CapacityCut`
        compile through (shocked prices, shrunk node specs).  Caches are per-model,
        so scenarios never cross-contaminate.
        """
        return CloudCostModel(
            catalog=self.catalog,
            estimate=estimate if estimate is not None else self.estimate,
            footprint=footprint if footprint is not None else self.footprint,
            storage_by_component=self.storage_by_component,
            baseline_plan=self.baseline_plan,
            time_compression=self.time_compression,
            charge_cloud_egress_only=self.charge_cloud_egress_only,
            catalogs=catalogs if catalogs is not None else self.catalogs,
        )

    # -- individual terms -----------------------------------------------------------------
    @property
    def real_step_ms(self) -> float:
        return self.estimate.step_ms * self.time_compression

    def compute_cost(self, plan: MigrationPlan) -> Tuple[float, List[int]]:
        """Eq. 7: per-step node counts at every billable site, priced at its hourly rate.

        The returned series is the elementwise total across billable locations (use
        :meth:`node_series_by_location` for the per-site breakdown).
        """
        step_hours = self.real_step_ms / _MS_PER_HOUR
        cost = 0.0
        total_nodes: List[int] = []
        for location in sorted(self._cluster_autoscalers):
            members = plan.components_at(location)
            if not members:
                # An empty site allocates zero nodes at every step — skip the two
                # aggregation passes and the autoscaler walk on the GA hot path.
                continue
            cpu_series = self.estimate.aggregate_series("cpu_millicores", members)
            mem_series = self.estimate.aggregate_series("memory_mb", members)
            nodes = self._cluster_autoscalers[location].node_series(cpu_series, mem_series)
            cost += (
                sum(nodes) * self.catalogs[location].node_spec.hourly_price_usd * step_hours
            )
            if not total_nodes:
                total_nodes = list(nodes)
            else:
                total_nodes = [a + b for a, b in zip(total_nodes, nodes)]
        if not total_nodes:
            total_nodes = [0] * self.estimate.steps
        return cost, total_nodes

    def node_series_by_location(self, plan: MigrationPlan) -> Dict[int, List[int]]:
        """Per-step allocated node counts at each billable location."""
        series: Dict[int, List[int]] = {}
        for location, autoscaler in self._cluster_autoscalers.items():
            members = plan.components_at(location)
            cpu = self.estimate.aggregate_series("cpu_millicores", members)
            mem = self.estimate.aggregate_series("memory_mb", members)
            series[location] = autoscaler.node_series(cpu, mem)
        return series

    def storage_cost(self, plan: MigrationPlan) -> float:
        """Eq. 9: provisioned capacity series per billable site, priced per GB-month."""
        step_months = self.real_step_ms / _MS_PER_MONTH
        total = 0.0
        for location in sorted(self._storage_autoscalers):
            members = plan.components_at(location)
            moved_stateful = [
                c
                for c in members
                if self.storage_by_component.get(c, 0.0) > 0.0
                and plan[c] != self.baseline_plan[c]
            ]
            site_stateful = [
                c for c in members if self.storage_by_component.get(c, 0.0) > 0.0
            ]
            if not site_stateful:
                continue
            migrated_gb = sum(self.storage_by_component[c] for c in moved_stateful)
            usage_series = self.estimate.aggregate_series("storage_gb", site_stateful)
            if not usage_series:
                usage_series = [sum(self.storage_by_component[c] for c in site_stateful)]
            capacity = self._storage_autoscalers[location].capacity_series(
                usage_series, migrated_gb
            )
            total += (
                sum(capacity)
                * self.catalogs[location].storage_usd_per_gb_month
                * step_months
            )
        return total

    def _egress_rate(self, loc_a: int, loc_b: int) -> float:
        """Egress price of one inter-location link: the priciest billable endpoint.

        A link with no billable endpoint (e.g. on-prem <-> an inelastic edge site)
        falls back to the primary catalog's flat inter-DC rate.
        """
        rates = [
            self.catalogs[loc].egress_usd_per_gb
            for loc in (loc_a, loc_b)
            if loc in self.catalogs
        ]
        return max(rates) if rates else self.catalog.egress_usd_per_gb

    def traffic_cost(self, plan: MigrationPlan) -> float:
        """Eq. 10: cross-datacenter traffic priced at the link's egress rate."""
        api_rates = self.estimate.api_rates
        if not api_rates:
            return 0.0
        total_requests = {api: sum(series) for api, series in api_rates.items()}
        # Bytes are accumulated per egress rate so regions with different prices bill
        # independently; in the single-catalog setup there is exactly one bucket and
        # the arithmetic is identical to the flat-rate accounting.
        bytes_by_rate: Dict[float, float] = {}
        for api, count in total_requests.items():
            if count <= 0:
                continue
            for (src, dst), edge in self.footprint.edges_of(api).items():
                src_loc, dst_loc = plan[src], plan[dst]
                if src_loc == dst_loc:
                    continue
                if self.charge_cloud_egress_only:
                    # Request bytes are billed only when the caller sits at a billable
                    # site (they leave it), response bytes only when the callee does —
                    # each at its own site's rate.
                    if src_loc in self.catalogs:
                        rate = self.catalogs[src_loc].egress_usd_per_gb
                        bytes_by_rate[rate] = (
                            bytes_by_rate.get(rate, 0.0) + count * edge.request_bytes
                        )
                    if dst_loc in self.catalogs:
                        rate = self.catalogs[dst_loc].egress_usd_per_gb
                        bytes_by_rate[rate] = (
                            bytes_by_rate.get(rate, 0.0) + count * edge.response_bytes
                        )
                    continue
                rate = self._egress_rate(src_loc, dst_loc)
                bytes_by_rate[rate] = (
                    bytes_by_rate.get(rate, 0.0) + count * edge.total_bytes
                )
        return sum(
            total_bytes / _BYTES_PER_GB * rate
            for rate, total_bytes in bytes_by_rate.items()
        )

    # -- batched evaluation (plan-matrix pipeline) -----------------------------------------
    def _lowering(self, components: Sequence[str]) -> _CostLowering:
        key = tuple(components)
        lowering = self._lowerings.get(key)
        if lowering is None:
            columns = {c: i for i, c in enumerate(key)}
            baseline_row = np.asarray(
                [self.baseline_plan[c] for c in key], dtype=np.int64
            )
            storage_gb = np.asarray(
                [self.storage_by_component.get(c, 0.0) for c in key], dtype=np.float64
            )
            stateful_columns = np.nonzero(storage_gb > 0.0)[0]
            stateful_row_mask = storage_gb > 0.0
            total_requests = {
                api: sum(series) for api, series in self.estimate.api_rates.items()
            }
            arrays = self.footprint.edge_arrays(total_requests, columns)
            lowering = _CostLowering(
                columns, baseline_row, storage_gb, stateful_columns, stateful_row_mask,
                *arrays,
            )
            self._lowerings[key] = lowering
        return lowering

    def _rate_tables_for(
        self, max_location: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[float]]:
        """Egress-rate lookup tables over location ids ``0..max_location``.

        Returns ``(pair_bucket, site_bucket, billable, rates)``: the bucket index of
        every (src, dst) link rate and of every billable site's own rate, plus the
        distinct rate values each bucket maps to.
        """
        cached = self._rate_table_cache.get(max_location)
        if cached is None:
            n = max_location + 1
            pair_rate = [[self._egress_rate(a, b) for b in range(n)] for a in range(n)]
            site_rate = [
                self.catalogs[loc].egress_usd_per_gb if loc in self.catalogs else 0.0
                for loc in range(n)
            ]
            billable = np.asarray([loc in self.catalogs for loc in range(n)])
            rates = sorted(
                {rate for row in pair_rate for rate in row}
                | {rate for rate, is_billable in zip(site_rate, billable) if is_billable}
            )
            index_of = {rate: i for i, rate in enumerate(rates)}
            pair_bucket = np.asarray(
                [[index_of[rate] for rate in row] for row in pair_rate], dtype=np.int64
            )
            site_bucket = np.asarray(
                [index_of.get(rate, 0) for rate in site_rate], dtype=np.int64
            )
            cached = (pair_bucket, site_bucket, billable, rates)
            self._rate_table_cache[max_location] = cached
        return cached

    def _compute_batch(
        self, matrix: np.ndarray, components: Sequence[str]
    ) -> np.ndarray:
        """Eq. 7 over a plan matrix: one vectorized autoscaler pass per billable site."""
        step_hours = self.real_step_ms / _MS_PER_HOUR
        totals = np.zeros(matrix.shape[0], dtype=np.float64)
        for location in sorted(self._cluster_autoscalers):
            members = matrix == location
            if not members.any():
                continue
            cpu = self.estimate.aggregate_matrix("cpu_millicores", members, components)
            memory = self.estimate.aggregate_matrix("memory_mb", members, components)
            nodes = self._cluster_autoscalers[location].nodes_for_series(cpu, memory)
            totals += (
                nodes.sum(axis=1)
                * self.catalogs[location].node_spec.hourly_price_usd
                * step_hours
            )
        return totals

    def _storage_batch(
        self, matrix: np.ndarray, components: Sequence[str], lowering: _CostLowering
    ) -> np.ndarray:
        """Eq. 9 over a plan matrix: one vectorized capacity walk per billable site."""
        step_months = self.real_step_ms / _MS_PER_MONTH
        n_plans = matrix.shape[0]
        totals = np.zeros(n_plans, dtype=np.float64)
        if lowering.stateful_columns.size == 0:
            return totals
        for location in sorted(self._storage_autoscalers):
            site_stateful = (matrix == location) & lowering.stateful_row_mask
            if not site_stateful.any():
                continue
            moved = site_stateful & (matrix != lowering.baseline_row)
            # Accumulate migrated GB one stateful component at a time, in canonical
            # column order — the same summation sequence as the scalar path.
            migrated = np.zeros(n_plans, dtype=np.float64)
            for column in lowering.stateful_columns:
                selected = moved[:, column]
                if selected.any():
                    migrated[selected] += lowering.storage_gb[column]
            usage = self.estimate.aggregate_matrix("storage_gb", site_stateful, components)
            capacity = self._storage_autoscalers[location].capacity_matrix(usage, migrated)
            provisioned = np.zeros(n_plans, dtype=np.float64)
            for step in range(capacity.shape[1]):
                provisioned += capacity[:, step]
            totals += (
                provisioned
                * self.catalogs[location].storage_usd_per_gb_month
                * step_months
            )
        return totals

    def _traffic_batch(
        self, matrix: np.ndarray, lowering: _CostLowering
    ) -> np.ndarray:
        """Eq. 10 over a plan matrix with per-rate bucket accounting.

        Buckets accumulate in the scalar entry order, and each plan's final sum walks
        its buckets in first-contribution order (the scalar dict's insertion order),
        so multi-rate topologies keep the exact float summation sequence.
        """
        n_plans = matrix.shape[0]
        totals = np.zeros(n_plans, dtype=np.float64)
        if lowering.src_cols.size == 0 or n_plans == 0:
            return totals
        pair_bucket, site_bucket, billable, rates = self._rate_tables_for(
            int(matrix.max())
        )
        never = np.iinfo(np.int64).max
        sums = np.zeros((len(rates), n_plans), dtype=np.float64)
        first_seen = np.full((len(rates), n_plans), never, dtype=np.int64)
        src_locs = matrix[:, lowering.src_cols]
        dst_locs = matrix[:, lowering.dst_cols]
        crossing = src_locs != dst_locs
        if self.charge_cloud_egress_only:
            # Request bytes bill at the caller's site, response bytes at the callee's;
            # the two contributions of one entry keep their scalar order (2e, 2e+1).
            for entry in range(lowering.src_cols.size):
                src_side = crossing[:, entry] & billable[src_locs[:, entry]]
                if src_side.any():
                    plans = np.nonzero(src_side)[0]
                    buckets = site_bucket[src_locs[plans, entry]]
                    np.add.at(sums, (buckets, plans), lowering.request_bytes[entry])
                    np.minimum.at(first_seen, (buckets, plans), 2 * entry)
                dst_side = crossing[:, entry] & billable[dst_locs[:, entry]]
                if dst_side.any():
                    plans = np.nonzero(dst_side)[0]
                    buckets = site_bucket[dst_locs[plans, entry]]
                    np.add.at(sums, (buckets, plans), lowering.response_bytes[entry])
                    np.minimum.at(first_seen, (buckets, plans), 2 * entry + 1)
        else:
            bucket_matrix = pair_bucket[src_locs, dst_locs]
            for entry in range(lowering.src_cols.size):
                cross = crossing[:, entry]
                if not cross.any():
                    continue
                plans = np.nonzero(cross)[0]
                buckets = bucket_matrix[plans, entry]
                np.add.at(sums, (buckets, plans), lowering.total_bytes[entry])
                np.minimum.at(first_seen, (buckets, plans), entry)
        touched = first_seen < never
        bucket_counts = touched.sum(axis=0)
        single = bucket_counts <= 1
        for bucket in range(len(rates)):
            selected = single & touched[bucket]
            if selected.any():
                totals[selected] = sums[bucket, selected] / _BYTES_PER_GB * rates[bucket]
        for plan in np.nonzero(~single)[0]:
            order = np.argsort(first_seen[:, plan], kind="stable")
            value = 0.0
            for bucket in order[: bucket_counts[plan]]:
                value += sums[bucket, plan] / _BYTES_PER_GB * rates[bucket]
            totals[plan] = value
        return totals

    def qcost_batch(
        self, plan_matrix: np.ndarray, components: Sequence[str]
    ) -> np.ndarray:
        """Eq. 11 for a whole plan matrix at once — bitwise equal to per-plan ``qcost``.

        ``plan_matrix`` is ``(plans, len(components))`` integer location ids with
        ``components`` naming the columns.  Per-site accumulation order, autoscaler
        arithmetic and traffic bucketing replicate the scalar path exactly, so the
        result matches :meth:`qcost` bit for bit (the per-plan path stays the
        reference oracle).  Rows seen before (in any batch with the same component
        order) come from the batched memo; the per-plan memo cache of :meth:`qcost`
        is neither consulted nor filled.
        """
        matrix = np.asarray(plan_matrix, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(components):
            raise ValueError("plan matrix must be (plans, len(components))")
        if matrix.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        if self.estimate.steps == 0:
            # Degenerate estimate: the scalar storage path has a one-step fallback
            # that is not worth vectorizing; score these plans through the oracle.
            return np.asarray(
                [
                    self.estimate_cost(
                        MigrationPlan.from_vector(components, row)
                    ).total_usd
                    for row in matrix.tolist()
                ]
            )
        cache = self._batch_cost_cache.setdefault(tuple(components), {})
        n_plans = matrix.shape[0]
        row_size = matrix.shape[1] * matrix.itemsize
        buffer = matrix.tobytes()
        keys = [buffer[p * row_size : (p + 1) * row_size] for p in range(n_plans)]
        unknown: Dict[bytes, int] = {}
        for plan_index, key in enumerate(keys):
            if key not in cache and key not in unknown:
                unknown[key] = plan_index
        if unknown:
            # Every pass scores rows independently, so computing only the unknown
            # sub-matrix yields the same bits as scoring them inside the full batch.
            submatrix = matrix[list(unknown.values())]
            lowering = self._lowering(components)
            compute = self._compute_batch(submatrix, components)
            storage = self._storage_batch(submatrix, components, lowering)
            traffic = self._traffic_batch(submatrix, lowering)
            totals = compute + storage + traffic
            for key, total in zip(unknown, totals):
                cache[key] = float(total)
        return np.asarray([cache[key] for key in keys])

    # -- combined --------------------------------------------------------------------------
    def qcost(self, plan: MigrationPlan) -> float:
        """Total cost in USD over the period of interest (Eq. 11)."""
        cached = self._qcost_cache.get(plan)
        if cached is None:
            cached = self.estimate_cost(plan).total_usd
            self._qcost_cache[plan] = cached
        return cached

    def estimate_cost(self, plan: MigrationPlan) -> CostEstimate:
        compute, nodes = self.compute_cost(plan)
        period_ms = self.estimate.steps * self.real_step_ms
        return CostEstimate(
            compute_usd=compute,
            storage_usd=self.storage_cost(plan),
            traffic_usd=self.traffic_cost(plan),
            period_ms=period_ms,
            node_series=nodes,
        )
