"""Cloud hosting cost modeling (Section 4.1.3 and Appendix A).

The cost of a migration plan has three parts:

* **Compute** (Eq. 6-7): the cluster autoscaler allocates enough cloud nodes to host the
  expected CPU/memory demand of the offloaded components with a headroom δ; each
  allocated node is charged per hour.
* **Storage** (Eq. 8-9): cloud volumes start at twice the migrated data size and grow by
  the headroom factor whenever they fill up; provisioned GB are charged per month.
* **Network traffic** (Eq. 10): traffic between components placed in different
  datacenters is charged at the egress price; the expected volume is reconstructed from
  the learned per-API network footprints and the expected API traffic.

Prices default to the generalized catalog of Appendix A (m5.large-class node at
$0.096/h, $0.08/GB-month storage, $0.09/GB egress) and can be overridden to match any
provider's billing catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.autoscaler import AutoscalerConfig, ClusterAutoscaler, StorageAutoscaler
from ..cluster.placement import MigrationPlan
from ..cluster.topology import CLOUD, NodeSpec, ON_PREM
from ..learning.estimator import ResourceEstimate
from ..learning.footprint import NetworkFootprint

__all__ = ["PricingCatalog", "CostEstimate", "CloudCostModel"]

_MS_PER_HOUR = 3_600_000.0
_MS_PER_MONTH = 30.0 * 24.0 * _MS_PER_HOUR
_BYTES_PER_GB = 1e9


@dataclass(frozen=True)
class PricingCatalog:
    """Cloud pricing knobs (Appendix A defaults)."""

    node_spec: NodeSpec = field(
        default_factory=lambda: NodeSpec(
            name="m5.large", cpu_millicores=2_000.0, memory_mb=8_192.0, hourly_price_usd=0.096
        )
    )
    storage_usd_per_gb_month: float = 0.08
    egress_usd_per_gb: float = 0.09
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)

    def __post_init__(self) -> None:
        if self.storage_usd_per_gb_month < 0 or self.egress_usd_per_gb < 0:
            raise ValueError("prices must be non-negative")


@dataclass
class CostEstimate:
    """Cost breakdown of one plan over the period of interest."""

    compute_usd: float
    storage_usd: float
    traffic_usd: float
    period_ms: float
    node_series: List[int] = field(default_factory=list)

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.storage_usd + self.traffic_usd

    def per_day_usd(self) -> float:
        """Total cost normalized to a 24-hour day (how Figures 11-14 report cost)."""
        if self.period_ms <= 0:
            return 0.0
        return self.total_usd * (24.0 * _MS_PER_HOUR / self.period_ms)

    def breakdown_per_day(self) -> Dict[str, float]:
        if self.period_ms <= 0:
            return {"compute": 0.0, "storage": 0.0, "traffic": 0.0}
        scale = 24.0 * _MS_PER_HOUR / self.period_ms
        return {
            "compute": self.compute_usd * scale,
            "storage": self.storage_usd * scale,
            "traffic": self.traffic_usd * scale,
        }


class CloudCostModel:
    """Computes QCost for any plan from a resource estimate and learned footprints."""

    def __init__(
        self,
        catalog: PricingCatalog,
        estimate: ResourceEstimate,
        footprint: NetworkFootprint,
        storage_by_component: Mapping[str, float],
        baseline_plan: MigrationPlan,
        time_compression: float = 1.0,
        charge_cloud_egress_only: bool = False,
    ) -> None:
        """``time_compression`` maps simulated time to real time (the workload generator
        compresses one day into five minutes, i.e. a factor of 288): prices are charged
        on real (uncompressed) time so a compressed day costs a full day's bill."""
        if time_compression <= 0:
            raise ValueError("time_compression must be positive")
        self.catalog = catalog
        self.estimate = estimate
        self.footprint = footprint
        self.storage_by_component = dict(storage_by_component)
        self.baseline_plan = baseline_plan
        self.time_compression = time_compression
        self.charge_cloud_egress_only = charge_cloud_egress_only
        self._cluster_autoscaler = ClusterAutoscaler(catalog.node_spec, catalog.autoscaler)
        self._storage_autoscaler = StorageAutoscaler(catalog.autoscaler)
        # qcost is queried at least twice per candidate plan (objective + budget
        # constraint) on the GA hot path; memoize it by plan.
        self._qcost_cache: Dict[MigrationPlan, float] = {}

    # -- individual terms -----------------------------------------------------------------
    @property
    def real_step_ms(self) -> float:
        return self.estimate.step_ms * self.time_compression

    def compute_cost(self, plan: MigrationPlan) -> Tuple[float, List[int]]:
        """Eq. 7: per-step node counts priced at the node's hourly rate."""
        cloud_components = plan.components_at(CLOUD)
        cpu_series = self.estimate.aggregate_series("cpu_millicores", cloud_components)
        mem_series = self.estimate.aggregate_series("memory_mb", cloud_components)
        nodes = self._cluster_autoscaler.node_series(cpu_series, mem_series)
        step_hours = self.real_step_ms / _MS_PER_HOUR
        cost = sum(nodes) * self.catalog.node_spec.hourly_price_usd * step_hours
        return cost, nodes

    def storage_cost(self, plan: MigrationPlan) -> float:
        """Eq. 9: provisioned capacity series priced per GB-month."""
        moved_stateful = [
            c
            for c in plan.components_at(CLOUD)
            if self.storage_by_component.get(c, 0.0) > 0.0
            and plan[c] != self.baseline_plan[c]
        ]
        cloud_stateful = [
            c for c in plan.components_at(CLOUD) if self.storage_by_component.get(c, 0.0) > 0.0
        ]
        if not cloud_stateful:
            return 0.0
        migrated_gb = sum(self.storage_by_component[c] for c in moved_stateful)
        usage_series = self.estimate.aggregate_series("storage_gb", cloud_stateful)
        if not usage_series:
            usage_series = [sum(self.storage_by_component[c] for c in cloud_stateful)]
        capacity = self._storage_autoscaler.capacity_series(usage_series, migrated_gb)
        step_months = self.real_step_ms / _MS_PER_MONTH
        return sum(capacity) * self.catalog.storage_usd_per_gb_month * step_months

    def traffic_cost(self, plan: MigrationPlan) -> float:
        """Eq. 10: cross-datacenter traffic priced at the egress rate."""
        api_rates = self.estimate.api_rates
        if not api_rates:
            return 0.0
        total_requests = {api: sum(series) for api, series in api_rates.items()}
        total_bytes = 0.0
        for api, count in total_requests.items():
            if count <= 0:
                continue
            for (src, dst), edge in self.footprint.edges_of(api).items():
                if plan[src] == plan[dst]:
                    continue
                if self.charge_cloud_egress_only:
                    # Request bytes leave the cloud only if the caller is in the cloud;
                    # response bytes leave the cloud only if the callee is in the cloud.
                    bytes_per_request = 0.0
                    if plan[src] == CLOUD:
                        bytes_per_request += edge.request_bytes
                    if plan[dst] == CLOUD:
                        bytes_per_request += edge.response_bytes
                else:
                    bytes_per_request = edge.total_bytes
                total_bytes += count * bytes_per_request
        return total_bytes / _BYTES_PER_GB * self.catalog.egress_usd_per_gb

    # -- combined --------------------------------------------------------------------------
    def qcost(self, plan: MigrationPlan) -> float:
        """Total cost in USD over the period of interest (Eq. 11)."""
        cached = self._qcost_cache.get(plan)
        if cached is None:
            cached = self.estimate_cost(plan).total_usd
            self._qcost_cache[plan] = cached
        return cached

    def estimate_cost(self, plan: MigrationPlan) -> CostEstimate:
        compute, nodes = self.compute_cost(plan)
        period_ms = self.estimate.steps * self.real_step_ms
        return CostEstimate(
            compute_usd=compute,
            storage_usd=self.storage_cost(plan),
            traffic_usd=self.traffic_cost(plan),
            period_ms=period_ms,
            node_series=nodes,
        )
