"""Cloud hosting cost modeling (Section 4.1.3 and Appendix A).

The cost of a migration plan has three parts:

* **Compute** (Eq. 6-7): each elastic datacenter's cluster autoscaler allocates enough
  nodes to host the expected CPU/memory demand of the components placed *at that site*
  with a headroom δ; each allocated node is charged at that site's hourly rate.
* **Storage** (Eq. 8-9): volumes at an elastic site start at twice the migrated data
  size and grow by the headroom factor whenever they fill up; provisioned GB are
  charged per month at that site's rate.
* **Network traffic** (Eq. 10): traffic between components placed in different
  datacenters is charged at the egress price of the link's endpoints; the expected
  volume is reconstructed from the learned per-API network footprints and the expected
  API traffic.

Prices default to the generalized catalog of Appendix A (m5.large-class node at
$0.096/h, $0.08/GB-month storage, $0.09/GB egress) and can be overridden to match any
provider's billing catalog.  In the paper's two-location setup a single catalog prices
the single cloud; for N-location topologies pass ``catalogs`` — a mapping from elastic
location id to that region's :class:`PricingCatalog` — and every region is autoscaled
and billed independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.autoscaler import AutoscalerConfig, ClusterAutoscaler, StorageAutoscaler
from ..cluster.placement import MigrationPlan
from ..cluster.topology import CLOUD, NodeSpec, ON_PREM
from ..learning.estimator import ResourceEstimate
from ..learning.footprint import NetworkFootprint

__all__ = ["PricingCatalog", "CostEstimate", "CloudCostModel"]

_MS_PER_HOUR = 3_600_000.0
_MS_PER_MONTH = 30.0 * 24.0 * _MS_PER_HOUR
_BYTES_PER_GB = 1e9


@dataclass(frozen=True)
class PricingCatalog:
    """Cloud pricing knobs (Appendix A defaults)."""

    node_spec: NodeSpec = field(
        default_factory=lambda: NodeSpec(
            name="m5.large", cpu_millicores=2_000.0, memory_mb=8_192.0, hourly_price_usd=0.096
        )
    )
    storage_usd_per_gb_month: float = 0.08
    egress_usd_per_gb: float = 0.09
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)

    def __post_init__(self) -> None:
        if self.storage_usd_per_gb_month < 0 or self.egress_usd_per_gb < 0:
            raise ValueError("prices must be non-negative")


@dataclass
class CostEstimate:
    """Cost breakdown of one plan over the period of interest."""

    compute_usd: float
    storage_usd: float
    traffic_usd: float
    period_ms: float
    node_series: List[int] = field(default_factory=list)

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.storage_usd + self.traffic_usd

    def per_day_usd(self) -> float:
        """Total cost normalized to a 24-hour day (how Figures 11-14 report cost)."""
        if self.period_ms <= 0:
            return 0.0
        return self.total_usd * (24.0 * _MS_PER_HOUR / self.period_ms)

    def breakdown_per_day(self) -> Dict[str, float]:
        if self.period_ms <= 0:
            return {"compute": 0.0, "storage": 0.0, "traffic": 0.0}
        scale = 24.0 * _MS_PER_HOUR / self.period_ms
        return {
            "compute": self.compute_usd * scale,
            "storage": self.storage_usd * scale,
            "traffic": self.traffic_usd * scale,
        }


class CloudCostModel:
    """Computes QCost for any plan from a resource estimate and learned footprints."""

    def __init__(
        self,
        catalog: PricingCatalog,
        estimate: ResourceEstimate,
        footprint: NetworkFootprint,
        storage_by_component: Mapping[str, float],
        baseline_plan: MigrationPlan,
        time_compression: float = 1.0,
        charge_cloud_egress_only: bool = False,
        catalogs: Optional[Mapping[int, PricingCatalog]] = None,
    ) -> None:
        """``time_compression`` maps simulated time to real time (the workload generator
        compresses one day into five minutes, i.e. a factor of 288): prices are charged
        on real (uncompressed) time so a compressed day costs a full day's bill.

        ``catalogs`` maps each billable (elastic) location id to its pricing catalog;
        when omitted, ``catalog`` prices the single cloud at location ``CLOUD`` — the
        paper's two-location setup."""
        if time_compression <= 0:
            raise ValueError("time_compression must be positive")
        self.catalog = catalog
        self.estimate = estimate
        self.footprint = footprint
        self.storage_by_component = dict(storage_by_component)
        self.baseline_plan = baseline_plan
        self.time_compression = time_compression
        self.charge_cloud_egress_only = charge_cloud_egress_only
        #: Billable locations and their catalogs; every other location is free.
        self.catalogs: Dict[int, PricingCatalog] = (
            dict(catalogs) if catalogs is not None else {CLOUD: catalog}
        )
        self._cluster_autoscalers: Dict[int, ClusterAutoscaler] = {
            loc: ClusterAutoscaler(cat.node_spec, cat.autoscaler)
            for loc, cat in self.catalogs.items()
        }
        self._storage_autoscalers: Dict[int, StorageAutoscaler] = {
            loc: StorageAutoscaler(cat.autoscaler) for loc, cat in self.catalogs.items()
        }
        # qcost is queried at least twice per candidate plan (objective + budget
        # constraint) on the GA hot path; memoize it by plan.
        self._qcost_cache: Dict[MigrationPlan, float] = {}

    # -- individual terms -----------------------------------------------------------------
    @property
    def real_step_ms(self) -> float:
        return self.estimate.step_ms * self.time_compression

    def compute_cost(self, plan: MigrationPlan) -> Tuple[float, List[int]]:
        """Eq. 7: per-step node counts at every billable site, priced at its hourly rate.

        The returned series is the elementwise total across billable locations (use
        :meth:`node_series_by_location` for the per-site breakdown).
        """
        step_hours = self.real_step_ms / _MS_PER_HOUR
        cost = 0.0
        total_nodes: List[int] = []
        for location in sorted(self._cluster_autoscalers):
            members = plan.components_at(location)
            if not members:
                # An empty site allocates zero nodes at every step — skip the two
                # aggregation passes and the autoscaler walk on the GA hot path.
                continue
            cpu_series = self.estimate.aggregate_series("cpu_millicores", members)
            mem_series = self.estimate.aggregate_series("memory_mb", members)
            nodes = self._cluster_autoscalers[location].node_series(cpu_series, mem_series)
            cost += (
                sum(nodes) * self.catalogs[location].node_spec.hourly_price_usd * step_hours
            )
            if not total_nodes:
                total_nodes = list(nodes)
            else:
                total_nodes = [a + b for a, b in zip(total_nodes, nodes)]
        if not total_nodes:
            total_nodes = [0] * self.estimate.steps
        return cost, total_nodes

    def node_series_by_location(self, plan: MigrationPlan) -> Dict[int, List[int]]:
        """Per-step allocated node counts at each billable location."""
        series: Dict[int, List[int]] = {}
        for location, autoscaler in self._cluster_autoscalers.items():
            members = plan.components_at(location)
            cpu = self.estimate.aggregate_series("cpu_millicores", members)
            mem = self.estimate.aggregate_series("memory_mb", members)
            series[location] = autoscaler.node_series(cpu, mem)
        return series

    def storage_cost(self, plan: MigrationPlan) -> float:
        """Eq. 9: provisioned capacity series per billable site, priced per GB-month."""
        step_months = self.real_step_ms / _MS_PER_MONTH
        total = 0.0
        for location in sorted(self._storage_autoscalers):
            members = plan.components_at(location)
            moved_stateful = [
                c
                for c in members
                if self.storage_by_component.get(c, 0.0) > 0.0
                and plan[c] != self.baseline_plan[c]
            ]
            site_stateful = [
                c for c in members if self.storage_by_component.get(c, 0.0) > 0.0
            ]
            if not site_stateful:
                continue
            migrated_gb = sum(self.storage_by_component[c] for c in moved_stateful)
            usage_series = self.estimate.aggregate_series("storage_gb", site_stateful)
            if not usage_series:
                usage_series = [sum(self.storage_by_component[c] for c in site_stateful)]
            capacity = self._storage_autoscalers[location].capacity_series(
                usage_series, migrated_gb
            )
            total += (
                sum(capacity)
                * self.catalogs[location].storage_usd_per_gb_month
                * step_months
            )
        return total

    def _egress_rate(self, loc_a: int, loc_b: int) -> float:
        """Egress price of one inter-location link: the priciest billable endpoint.

        A link with no billable endpoint (e.g. on-prem <-> an inelastic edge site)
        falls back to the primary catalog's flat inter-DC rate.
        """
        rates = [
            self.catalogs[loc].egress_usd_per_gb
            for loc in (loc_a, loc_b)
            if loc in self.catalogs
        ]
        return max(rates) if rates else self.catalog.egress_usd_per_gb

    def traffic_cost(self, plan: MigrationPlan) -> float:
        """Eq. 10: cross-datacenter traffic priced at the link's egress rate."""
        api_rates = self.estimate.api_rates
        if not api_rates:
            return 0.0
        total_requests = {api: sum(series) for api, series in api_rates.items()}
        # Bytes are accumulated per egress rate so regions with different prices bill
        # independently; in the single-catalog setup there is exactly one bucket and
        # the arithmetic is identical to the flat-rate accounting.
        bytes_by_rate: Dict[float, float] = {}
        for api, count in total_requests.items():
            if count <= 0:
                continue
            for (src, dst), edge in self.footprint.edges_of(api).items():
                src_loc, dst_loc = plan[src], plan[dst]
                if src_loc == dst_loc:
                    continue
                if self.charge_cloud_egress_only:
                    # Request bytes are billed only when the caller sits at a billable
                    # site (they leave it), response bytes only when the callee does —
                    # each at its own site's rate.
                    if src_loc in self.catalogs:
                        rate = self.catalogs[src_loc].egress_usd_per_gb
                        bytes_by_rate[rate] = (
                            bytes_by_rate.get(rate, 0.0) + count * edge.request_bytes
                        )
                    if dst_loc in self.catalogs:
                        rate = self.catalogs[dst_loc].egress_usd_per_gb
                        bytes_by_rate[rate] = (
                            bytes_by_rate.get(rate, 0.0) + count * edge.response_bytes
                        )
                    continue
                rate = self._egress_rate(src_loc, dst_loc)
                bytes_by_rate[rate] = (
                    bytes_by_rate.get(rate, 0.0) + count * edge.total_bytes
                )
        return sum(
            total_bytes / _BYTES_PER_GB * rate
            for rate, total_bytes in bytes_by_rate.items()
        )

    # -- combined --------------------------------------------------------------------------
    def qcost(self, plan: MigrationPlan) -> float:
        """Total cost in USD over the period of interest (Eq. 11)."""
        cached = self._qcost_cache.get(plan)
        if cached is None:
            cached = self.estimate_cost(plan).total_usd
            self._qcost_cache[plan] = cached
        return cached

    def estimate_cost(self, plan: MigrationPlan) -> CostEstimate:
        compute, nodes = self.compute_cost(plan)
        period_ms = self.estimate.steps * self.real_step_ms
        return CostEstimate(
            compute_usd=compute,
            storage_usd=self.storage_cost(plan),
            traffic_usd=self.traffic_cost(plan),
            period_ms=period_ms,
            node_series=nodes,
        )
