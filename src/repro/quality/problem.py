"""Declarative placement problems: the pluggable objective/constraint stack.

The paper scores plans on exactly three hardcoded objectives — QPerf, QAvai, QCost —
and that triple used to be baked into every layer of the advisor.  This module turns
the objective/constraint surface into a plugin API:

* :class:`Objective` — one quality aspect, scored *vectorized* over a ``(plans,
  components)`` location matrix (``score_matrix``) with an optional scalar override
  (``score_plan``, the per-plan reference oracle).  ``sense`` declares whether the raw
  score is minimized or maximized; the evaluator stores the *minimized* view so every
  optimizer keeps treating all objectives uniformly.
* :class:`Constraint` — one feasibility condition, evaluated as a vectorized violation
  mask (``check``) whose human-readable violation strings are materialized lazily,
  only for infeasible plans.
* :class:`PlacementProblem` — a frozen bundle of objectives + constraints + scenario
  set + robust aggregator + owner preferences: the declarative front door of
  ``Atlas.recommend(problem=...)``.  :meth:`PlacementProblem.default` is the paper's
  exact three-objective stack; appending plugins (``with_objectives``) widens the
  Pareto search to K dimensions with zero optimizer changes.

The three paper objectives and all four constraint families (pins, allowed-location
whitelists, on-prem peaks, budget) are themselves built-in plugins over the existing
batched kernels (``qperf_batch`` / ``qavai_batch`` / ``qcost_batch``, the constraint
mask passes), so the default problem is *byte-identical* to the hardcoded pipeline it
replaced — fixed-seed GA / NSGA-II / random-search fingerprints are unchanged
(enforced by ``tests/test_problem.py``).

Two shipped plugins prove the API beyond the paper's triple:
:class:`EgressTrafficObjective` (cross-location bytes from the learned network
footprints) and :class:`MigrationChurnObjective` (components moved vs. a baseline
plan).  See ``examples/custom_objective.py`` for an end-to-end K=4 recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..cluster.placement import MigrationPlan
from ..cluster.topology import ON_PREM
from .preferences import MigrationPreferences
from .scenarios import RobustAggregator, ScenarioSet, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (evaluator imports us)
    from ..learning.estimator import ResourceEstimate
    from .availability import ApiAvailabilityModel
    from .cost import CloudCostModel
    from .evaluator import QualityEvaluator
    from .performance import ApiPerformanceModel

__all__ = [
    "EvalContext",
    "Objective",
    "Constraint",
    "ConstraintCheck",
    "PlacementProblem",
    "QPerfObjective",
    "QAvaiObjective",
    "QCostObjective",
    "EgressTrafficObjective",
    "MigrationChurnObjective",
    "PinnedPlacementConstraint",
    "AllowedLocationsConstraint",
    "OnPremPeakConstraint",
    "BudgetConstraint",
    "register_objective",
    "register_constraint",
    "make_objective",
    "make_constraint",
    "registered_objectives",
    "registered_constraints",
]

#: Resources checked against the on-prem limits (metric name -> estimator resource key).
ONPREM_RESOURCES = {
    "cpu_millicores": "cpu_millicores",
    "memory_mb": "memory_mb",
    "storage_gb": "storage_gb",
}

_BYTES_PER_GB = 1e9


@dataclass
class EvalContext:
    """Everything one objective/constraint evaluation sees.

    ``matrix`` is the ``(plans, len(components))`` integer location matrix in the
    evaluator's canonical component order.  The model fields are *scenario-resolved*:
    under robust evaluation they are the compiled scenario's performance view, derived
    cost model, scenario resource estimate and scenario τ_A weights; on the classic
    path they are the evaluator's base models.

    ``scratch`` is a per-(scenario, call) dict objectives and constraints use to hand
    each other intermediate arrays (e.g. the QCost objective parks its cost vector for
    the budget constraint, so each plan's cost is computed exactly once per
    evaluation).  ``shared`` spans *all scenarios* of one evaluation call — the QPerf
    plugin keeps its per-view impact-matrix cache there so payload-neutral scenarios
    share one Δ-row gather/replay.

    ``plans`` is set only on the scalar reference path: a one-row matrix plus the
    corresponding :class:`MigrationPlan` (``plans[0]``) for plugins that override
    ``score_plan`` / ``violations_plan`` with true per-plan kernels.
    """

    matrix: np.ndarray
    components: List[str]
    performance: "ApiPerformanceModel"
    availability: "ApiAvailabilityModel"
    cost: "CloudCostModel"
    estimate: "ResourceEstimate"
    weights: Dict[str, float]
    preferences: MigrationPreferences
    evaluator: "QualityEvaluator"
    scenario: Optional[ScenarioSpec] = None
    base_performance: Optional["ApiPerformanceModel"] = None
    scenario_performances: Optional[List["ApiPerformanceModel"]] = None
    shared: Dict = field(default_factory=dict)
    scratch: Dict = field(default_factory=dict)
    plans: Optional[Sequence[MigrationPlan]] = None

    @property
    def n_plans(self) -> int:
        return int(self.matrix.shape[0])

    def column_of(self) -> Dict[str, int]:
        columns = self.scratch.get("column_of")
        if columns is None:
            columns = {c: i for i, c in enumerate(self.components)}
            self.scratch["column_of"] = columns
        return columns


class Objective:
    """One quality aspect of a placement plan (lower is better when ``sense='min'``).

    Subclasses implement :meth:`score_matrix` — the vectorized scoring over the shared
    P×C location-matrix context — and may override :meth:`score_plan` with a scalar
    kernel (the per-plan reference oracle; the default lowers the plan onto a one-row
    matrix, so batched and scalar scoring agree bitwise by construction).
    """

    #: Stable identifier; also the objective's column name in results.
    name: str = "objective"
    #: ``"min"`` (default) or ``"max"`` — the evaluator stores ``-score`` for
    #: maximized objectives so the optimizers minimize everything uniformly.
    sense: str = "min"

    def key(self) -> Tuple:
        """Hashable identity (used by registries and result labeling)."""
        return (self.name,)

    def score_matrix(self, ctx: EvalContext) -> np.ndarray:
        """Raw scores of every plan row: a ``(plans,)`` float array."""
        raise NotImplementedError

    def score_plan(self, ctx: EvalContext, plan: MigrationPlan) -> float:
        """Raw score of one plan (scalar oracle); default delegates to the matrix."""
        return float(self.score_matrix(ctx)[0])

    def minimized(self, scores: np.ndarray) -> np.ndarray:
        """The minimized view of raw scores (negated for maximized objectives)."""
        if self.sense == "max":
            return -scores
        return scores

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if getattr(cls, "sense", "min") not in ("min", "max"):
            raise ValueError(f"{cls.__name__}.sense must be 'min' or 'max'")

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}(name={self.name!r}, sense={self.sense!r})"


@dataclass
class ConstraintCheck:
    """Vectorized outcome of one constraint over a plan matrix.

    ``violated`` is a boolean ``(plans,)`` mask (True = the plan breaks this
    constraint); ``materialize(row)`` builds the human-readable violation strings of
    one row lazily — the evaluator only calls it for infeasible plans.
    """

    violated: np.ndarray
    materialize: Callable[[int], List[str]]

    @classmethod
    def satisfied(cls, n_plans: int) -> "ConstraintCheck":
        """A no-op check: nothing violated, nothing to materialize."""
        return cls(np.zeros(n_plans, dtype=bool), lambda row: [])


class Constraint:
    """One feasibility condition of the placement problem (Eq. 4 family).

    Subclasses implement :meth:`check` (vectorized mask + lazy violation strings) and
    may override :meth:`violations_plan` with a scalar kernel; the default lowers the
    plan onto a one-row matrix so the mask and the materialized strings agree by
    construction (the "mask ⇔ violations" law of ``tests/test_problem.py``).
    """

    name: str = "constraint"

    def key(self) -> Tuple:
        return (self.name,)

    def check(self, ctx: EvalContext) -> ConstraintCheck:
        raise NotImplementedError

    def violations_plan(self, ctx: EvalContext, plan: MigrationPlan) -> List[str]:
        result = self.check(ctx)
        if bool(result.violated[0]):
            return result.materialize(0)
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------

_OBJECTIVES: Dict[str, Callable[..., Objective]] = {}
_CONSTRAINTS: Dict[str, Callable[..., Constraint]] = {}


def register_objective(name: str, factory: Optional[Callable[..., Objective]] = None):
    """Register an objective factory under ``name`` (usable as a class decorator)."""

    def _register(target):
        if name in _OBJECTIVES:
            raise ValueError(f"objective {name!r} is already registered")
        _OBJECTIVES[name] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def register_constraint(name: str, factory: Optional[Callable[..., Constraint]] = None):
    """Register a constraint factory under ``name`` (usable as a class decorator)."""

    def _register(target):
        if name in _CONSTRAINTS:
            raise ValueError(f"constraint {name!r} is already registered")
        _CONSTRAINTS[name] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def make_objective(name: str, **kwargs) -> Objective:
    """Instantiate a registered objective by name."""
    try:
        factory = _OBJECTIVES[name]
    except KeyError:
        raise KeyError(
            f"unknown objective {name!r}; registered: {sorted(_OBJECTIVES)}"
        ) from None
    return factory(**kwargs)


def make_constraint(name: str, **kwargs) -> Constraint:
    """Instantiate a registered constraint by name."""
    try:
        factory = _CONSTRAINTS[name]
    except KeyError:
        raise KeyError(
            f"unknown constraint {name!r}; registered: {sorted(_CONSTRAINTS)}"
        ) from None
    return factory(**kwargs)


def registered_objectives() -> List[str]:
    return sorted(_OBJECTIVES)


def registered_constraints() -> List[str]:
    return sorted(_CONSTRAINTS)


# ---------------------------------------------------------------------------
# Built-in objectives (the paper's triple)
# ---------------------------------------------------------------------------


@register_objective("qperf")
class QPerfObjective(Objective):
    """Expected API slowdown (Eq. 1): weighted mean impact factor over all APIs.

    Batched scoring reuses the compiled-replay kernel (``qperf_batch``); under robust
    evaluation the per-view impact matrices are cached in ``ctx.shared`` so
    payload-neutral scenarios share one Δ-row gather/replay per distinct performance
    view — exactly the sharing the hardcoded scenario pipeline performed.
    """

    name = "qperf"

    def score_matrix(self, ctx: EvalContext) -> np.ndarray:
        if ctx.scenario is None:
            return ctx.performance.qperf_batch(ctx.matrix, ctx.components, ctx.weights)
        impacts = self._impacts(ctx)
        return ctx.performance.qperf_from_impacts(impacts, ctx.weights)

    def _impacts(self, ctx: EvalContext) -> np.ndarray:
        cache: Dict[int, np.ndarray] = ctx.shared.setdefault("qperf.impacts", {})
        base = ctx.base_performance
        if (
            not cache
            and ctx.scenario_performances is not None
            and getattr(ctx.performance, "is_fused", False)
        ):
            # Fused engines collapse the whole scenario set into one cross-API,
            # cross-view replay: every distinct view's impact matrix lands in the
            # shared cache at once, so later scenario contexts are pure hits.
            cache.update(
                ctx.performance.impact_matrices_multi(
                    ctx.scenario_performances, ctx.matrix, ctx.components
                )
            )
        if not cache and base is not None and ctx.scenario_performances is not None:
            # Seed the base model's impacts whenever (a) a payload-scaled view could
            # copy unchanged rows from them and (b) some scenario uses the base view
            # anyway — independent of the scenario order in the set.
            views = {id(view): view for view in ctx.scenario_performances}
            if id(base) in views and any(
                view is not base and view._changed_apis is not None
                for view in views.values()
            ):
                cache[id(base)] = base.impact_matrix(ctx.matrix, ctx.components)
        view_key = id(ctx.performance)
        impacts = cache.get(view_key)
        if impacts is None:
            impacts = ctx.performance.impact_matrix(
                ctx.matrix,
                ctx.components,
                base_impacts=cache.get(id(base)) if base is not None else None,
            )
            cache[view_key] = impacts
        return impacts

    def score_plan(self, ctx: EvalContext, plan: MigrationPlan) -> float:
        return ctx.performance.qperf(plan, ctx.weights)


@register_objective("qavai")
class QAvaiObjective(Objective):
    """Expected availability disruption (Eq. 3): weighted count of disrupted APIs."""

    name = "qavai"

    def score_matrix(self, ctx: EvalContext) -> np.ndarray:
        return ctx.availability.qavai_batch(ctx.matrix, ctx.components, ctx.weights)

    def score_plan(self, ctx: EvalContext, plan: MigrationPlan) -> float:
        return ctx.availability.qavai(plan, ctx.weights)


@register_objective("qcost")
class QCostObjective(Objective):
    """Cloud hosting cost in USD over the period of interest (Eq. 11).

    Parks its result in ``ctx.scratch['qcost']`` so the budget constraint reuses it —
    each plan's cost is computed exactly once per evaluation.
    """

    name = "qcost"

    def score_matrix(self, ctx: EvalContext) -> np.ndarray:
        cost = ctx.cost.qcost_batch(ctx.matrix, ctx.components)
        ctx.scratch["qcost"] = cost
        return cost

    def score_plan(self, ctx: EvalContext, plan: MigrationPlan) -> float:
        cost = ctx.cost.qcost(plan)
        ctx.scratch["qcost"] = cost
        return cost


# ---------------------------------------------------------------------------
# Shipped extra objectives (beyond the paper's triple)
# ---------------------------------------------------------------------------


@register_objective("egress-traffic")
class EgressTrafficObjective(Objective):
    """Cross-location traffic volume in GB over the period of interest.

    The raw bytes of Eq. 10 *before* pricing: the learned per-API edge footprints
    scaled by the expected request counts, summed over every invocation edge whose
    caller and callee sit at different locations.  Unlike QCost's traffic term this
    is price-free, so it stays meaningful for topologies where egress is unbilled
    (e.g. on-prem ↔ edge links) and lets the owner trade raw data movement against
    the three paper objectives.  Reuses the cost model's lowered edge arrays.
    """

    name = "egress_gb"

    def score_matrix(self, ctx: EvalContext) -> np.ndarray:
        lowering = ctx.cost._lowering(ctx.components)
        if lowering.src_cols.size == 0 or ctx.n_plans == 0:
            return np.zeros(ctx.n_plans, dtype=np.float64)
        crossing = ctx.matrix[:, lowering.src_cols] != ctx.matrix[:, lowering.dst_cols]
        return crossing @ (lowering.total_bytes / _BYTES_PER_GB)


@register_objective("migration-churn")
class MigrationChurnObjective(Objective):
    """Number of components a plan moves away from a baseline placement.

    ``baseline`` defaults to the evaluator's baseline plan (the currently executed
    placement), so minimizing this objective prefers recommendations that disturb the
    running system least — the re-migration cost axis of incremental rounds.
    """

    name = "migration_churn"

    def __init__(self, baseline: Optional[MigrationPlan] = None) -> None:
        self.baseline = baseline

    def _baseline_row(self, ctx: EvalContext) -> np.ndarray:
        baseline = self.baseline or ctx.cost.baseline_plan
        return np.asarray([baseline[c] for c in ctx.components], dtype=np.int64)

    def score_matrix(self, ctx: EvalContext) -> np.ndarray:
        moved = ctx.matrix != self._baseline_row(ctx)
        return moved.sum(axis=1).astype(np.float64)


# ---------------------------------------------------------------------------
# Built-in constraints (Eq. 4)
# ---------------------------------------------------------------------------


@register_constraint("pinned-placement")
class PinnedPlacementConstraint(Constraint):
    """Owner-pinned components must stay at their pinned location."""

    name = "pinned-placement"

    def check(self, ctx: EvalContext) -> ConstraintCheck:
        pins = ctx.preferences.pinned_placement
        if not pins:
            return ConstraintCheck.satisfied(ctx.n_plans)
        column_of = ctx.column_of()
        entries: List[Tuple[str, int, np.ndarray]] = []
        violated = np.zeros(ctx.n_plans, dtype=bool)
        for component, location in pins.items():
            mask = ctx.matrix[:, column_of[component]] != location
            entries.append((component, location, mask))
            violated |= mask

        def materialize(row: int) -> List[str]:
            return [
                f"component {component} must stay at location {location}"
                for component, location, mask in entries
                if mask[row]
            ]

        return ConstraintCheck(violated, materialize)

    def violations_plan(self, ctx: EvalContext, plan: MigrationPlan) -> List[str]:
        return [
            f"component {component} must stay at location "
            f"{ctx.preferences.pinned_placement[component]}"
            for component in ctx.preferences.pin_violations(plan)
        ]


@register_constraint("allowed-locations")
class AllowedLocationsConstraint(Constraint):
    """Per-component location whitelists (on-prem is always permitted)."""

    name = "allowed-locations"

    def check(self, ctx: EvalContext) -> ConstraintCheck:
        allowed_locations = ctx.preferences.allowed_locations
        if not allowed_locations:
            return ConstraintCheck.satisfied(ctx.n_plans)
        column_of = ctx.column_of()
        matrix = ctx.matrix
        size = int(matrix.max()) + 1 if matrix.size else 1
        entries: List[Tuple[str, Tuple[int, ...], np.ndarray, np.ndarray]] = []
        violated = np.zeros(ctx.n_plans, dtype=bool)
        for component, allowed in allowed_locations.items():
            column = column_of.get(component)
            if column is None:
                continue
            permitted = np.zeros(size, dtype=bool)
            permitted[ON_PREM] = True
            for location in allowed:
                if location < size:
                    permitted[location] = True
            placements = matrix[:, column]
            mask = ~permitted[placements]
            entries.append((component, tuple(allowed), mask, placements))
            violated |= mask

        def materialize(row: int) -> List[str]:
            return [
                f"component {component} may not run at location "
                f"{int(placements[row])} (allowed locations: {list(allowed)})"
                for component, allowed, mask, placements in entries
                if mask[row]
            ]

        return ConstraintCheck(violated, materialize)

    def violations_plan(self, ctx: EvalContext, plan: MigrationPlan) -> List[str]:
        return [
            f"component {component} may not run at location {plan[component]} "
            f"(allowed locations: {list(ctx.preferences.allowed_locations[component])})"
            for component in ctx.preferences.location_violations(plan)
        ]


@register_constraint("onprem-peaks")
class OnPremPeakConstraint(Constraint):
    """The on-prem cluster's configured resource limits must cover the peak demand.

    Reads the scenario-resolved resource estimate, so robust evaluation checks each
    scenario's own demand series against the limits.
    """

    name = "onprem-peaks"

    def check(self, ctx: EvalContext) -> ConstraintCheck:
        limits = [
            (resource, estimator_key, ctx.preferences.onprem_limit(resource))
            for resource, estimator_key in ONPREM_RESOURCES.items()
        ]
        limits = [(r, k, limit) for r, k, limit in limits if limit is not None]
        if not limits:
            return ConstraintCheck.satisfied(ctx.n_plans)
        on_prem = ctx.matrix == ON_PREM
        entries: List[Tuple[str, float, np.ndarray]] = []
        violated = np.zeros(ctx.n_plans, dtype=bool)
        for resource, estimator_key, limit in limits:
            peak = ctx.estimate.peak_matrix(estimator_key, on_prem, ctx.components)
            entries.append((resource, limit, peak))
            violated |= peak > limit

        def materialize(row: int) -> List[str]:
            return [
                f"on-prem {resource} peak {peak[row]:.0f} exceeds limit {limit:.0f}"
                for resource, limit, peak in entries
                if peak[row] > limit
            ]

        return ConstraintCheck(violated, materialize)

    def violations_plan(self, ctx: EvalContext, plan: MigrationPlan) -> List[str]:
        violations: List[str] = []
        onprem_components = plan.components_at(ON_PREM)
        for resource, estimator_key in ONPREM_RESOURCES.items():
            limit = ctx.preferences.onprem_limit(resource)
            if limit is None:
                continue
            peak = ctx.estimate.peak(estimator_key, onprem_components)
            if peak > limit:
                violations.append(
                    f"on-prem {resource} peak {peak:.0f} exceeds limit {limit:.0f}"
                )
        return violations


@register_constraint("budget")
class BudgetConstraint(Constraint):
    """The plan's cloud cost must not exceed the owner's budget.

    Reads the cost vector the QCost objective parked in ``ctx.scratch`` when the
    problem scores costs anyway; on constraint-only passes (``feasible_mask``) it
    drives the batched cost kernel itself — whose row memo keeps a later full
    evaluation of the same plans from paying the cost passes again.
    """

    name = "budget"

    def check(self, ctx: EvalContext) -> ConstraintCheck:
        budget = ctx.preferences.budget_usd
        if budget == float("inf"):
            return ConstraintCheck.satisfied(ctx.n_plans)
        cost = ctx.scratch.get("qcost")
        if cost is None:
            cost = ctx.cost.qcost_batch(ctx.matrix, ctx.components)
            ctx.scratch["qcost"] = cost
        over = cost > budget

        def materialize(row: int) -> List[str]:
            if not over[row]:
                return []
            return [
                f"cost {float(cost[row]):.2f} USD exceeds budget {budget:.2f} USD"
            ]

        return ConstraintCheck(over, materialize)

    def violations_plan(self, ctx: EvalContext, plan: MigrationPlan) -> List[str]:
        budget = ctx.preferences.budget_usd
        if budget == float("inf"):
            return []
        cost = ctx.scratch.get("qcost")
        if cost is None:
            cost = ctx.cost.qcost(plan)
            ctx.scratch["qcost"] = cost
        if cost > budget:
            return [f"cost {cost:.2f} USD exceeds budget {budget:.2f} USD"]
        return []


# ---------------------------------------------------------------------------
# The declarative problem
# ---------------------------------------------------------------------------

#: Column names of the paper's triple, in canonical order.
DEFAULT_OBJECTIVE_NAMES = ("qperf", "qavai", "qcost")


@dataclass(frozen=True)
class PlacementProblem:
    """A frozen placement problem: what to optimize, subject to what, over which futures.

    ``objectives`` define the K axes of the Pareto search (order fixes the result
    columns), ``constraints`` the feasibility conditions, ``scenarios`` +
    ``aggregator`` the optional robust axis (the evaluator binds them at
    construction), and ``preferences`` the owner preferences the built-in constraint
    plugins read (``None`` adopts the evaluator's).  Problems are immutable; derive
    variants with :meth:`with_objectives` / :meth:`with_constraints` /
    :meth:`with_scenarios`.
    """

    objectives: Tuple[Objective, ...]
    constraints: Tuple[Constraint, ...]
    scenarios: Optional[ScenarioSet] = None
    aggregator: Optional[RobustAggregator] = None
    preferences: Optional[MigrationPreferences] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "objectives", tuple(self.objectives))
        object.__setattr__(self, "constraints", tuple(self.constraints))
        if not self.objectives:
            raise ValueError("a placement problem needs at least one objective")
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"objective names must be unique, got {names}")
        if self.aggregator is not None and self.scenarios is None:
            raise ValueError(
                "aggregator only applies to scenario-robust problems; "
                "set scenarios as well"
            )
        if self.scenarios is not None:
            object.__setattr__(self, "scenarios", ScenarioSet.coerce(self.scenarios))
        # Column indices behind the legacy (perf, avail, cost) triple, resolved once:
        # by name when the paper objectives are present, positionally otherwise
        # (None = no column, the triple field reads NaN).  legacy_triple() runs once
        # per evaluated plan, so this lookup must not re-scan names on the hot path.
        legacy_indices = []
        for name, fallback in (("qperf", 0), ("qavai", 1), ("qcost", 2)):
            if name in names:
                legacy_indices.append(names.index(name))
            else:
                legacy_indices.append(fallback if fallback < len(names) else None)
        object.__setattr__(self, "_legacy_indices", tuple(legacy_indices))

    # -- introspection ---------------------------------------------------------------------
    @property
    def K(self) -> int:
        """Number of objectives (the dimensionality of the Pareto front)."""
        return len(self.objectives)

    @property
    def objective_names(self) -> Tuple[str, ...]:
        return tuple(objective.name for objective in self.objectives)

    def index_of(self, name: str) -> int:
        for index, objective in enumerate(self.objectives):
            if objective.name == name:
                return index
        raise KeyError(f"no objective named {name!r} in {self.objective_names}")

    @property
    def is_default_stack(self) -> bool:
        """Whether this is exactly the paper's three-objective built-in stack."""
        return (
            self.objective_names == DEFAULT_OBJECTIVE_NAMES
            and all(
                isinstance(objective, expected)
                for objective, expected in zip(
                    self.objectives,
                    (QPerfObjective, QAvaiObjective, QCostObjective),
                )
            )
            and tuple(type(c) for c in self.constraints) == _DEFAULT_CONSTRAINT_TYPES
        )

    def legacy_triple(self, values: Sequence[float]) -> Tuple[float, float, float]:
        """(perf, avail, cost) view of a K-vector for the legacy result fields.

        Maps by objective name when the paper objectives are present, falling back
        positionally (NaN-padded) for problems that replace them outright.
        """
        i_perf, i_avail, i_cost = self._legacy_indices
        nan = float("nan")
        return (
            values[i_perf] if i_perf is not None else nan,
            values[i_avail] if i_avail is not None else nan,
            values[i_cost] if i_cost is not None else nan,
        )

    # -- construction ----------------------------------------------------------------------
    @classmethod
    def default(
        cls,
        preferences: Optional[MigrationPreferences] = None,
        scenarios: Optional[
            Union[ScenarioSet, ScenarioSpec, Sequence[ScenarioSpec]]
        ] = None,
        aggregator: Optional[RobustAggregator] = None,
        extra_objectives: Sequence[Objective] = (),
        extra_constraints: Sequence[Constraint] = (),
    ) -> "PlacementProblem":
        """The paper's exact stack: QPerf + QAvai + QCost under the Eq. 4 constraints.

        ``extra_objectives`` / ``extra_constraints`` append plugins after the
        built-ins, so the default triple keeps its canonical columns 0-2.
        """
        return cls(
            objectives=(
                QPerfObjective(),
                QAvaiObjective(),
                QCostObjective(),
                *extra_objectives,
            ),
            constraints=(
                PinnedPlacementConstraint(),
                AllowedLocationsConstraint(),
                OnPremPeakConstraint(),
                BudgetConstraint(),
                *extra_constraints,
            ),
            scenarios=ScenarioSet.coerce(scenarios) if scenarios is not None else None,
            aggregator=aggregator,
            preferences=preferences,
        )

    def with_objectives(self, *objectives: Objective) -> "PlacementProblem":
        """A sibling problem with ``objectives`` appended."""
        return PlacementProblem(
            objectives=self.objectives + tuple(objectives),
            constraints=self.constraints,
            scenarios=self.scenarios,
            aggregator=self.aggregator,
            preferences=self.preferences,
        )

    def with_constraints(self, *constraints: Constraint) -> "PlacementProblem":
        """A sibling problem with ``constraints`` appended."""
        return PlacementProblem(
            objectives=self.objectives,
            constraints=self.constraints + tuple(constraints),
            scenarios=self.scenarios,
            aggregator=self.aggregator,
            preferences=self.preferences,
        )

    def with_scenarios(
        self,
        scenarios: Union[ScenarioSet, ScenarioSpec, Sequence[ScenarioSpec]],
        aggregator: Optional[RobustAggregator] = None,
    ) -> "PlacementProblem":
        """A sibling problem evaluated robustly over ``scenarios``.

        Omitting ``aggregator`` keeps the problem's existing one (the evaluator
        applies the :class:`~repro.quality.scenarios.WorstCase` default when the
        problem never had one)."""
        return PlacementProblem(
            objectives=self.objectives,
            constraints=self.constraints,
            scenarios=ScenarioSet.coerce(scenarios),
            aggregator=aggregator if aggregator is not None else self.aggregator,
            preferences=self.preferences,
        )


_DEFAULT_CONSTRAINT_TYPES = (
    PinnedPlacementConstraint,
    AllowedLocationsConstraint,
    OnPremPeakConstraint,
    BudgetConstraint,
)
