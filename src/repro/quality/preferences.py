"""Migration preferences supplied by the application owner (Section 3 and Eq. 4).

Preferences personalize recommendations: which APIs are business-critical (weighted 2x
by default), which components are pinned to a location (regulatory compliance), the
maximum resource usage allowed to remain on-prem, and the cloud budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..cluster.placement import MigrationPlan
from ..cluster.topology import ON_PREM

__all__ = ["MigrationPreferences"]

#: Default multiplier applied to APIs the owner marks as critical (Section 4.1.1).
DEFAULT_CRITICAL_WEIGHT = 2.0


@dataclass
class MigrationPreferences:
    """Owner-provided knobs constraining and weighting the recommendation."""

    critical_apis: List[str] = field(default_factory=list)
    critical_weight: float = DEFAULT_CRITICAL_WEIGHT
    pinned_placement: Dict[str, int] = field(default_factory=dict)
    onprem_limits: Dict[str, float] = field(default_factory=dict)
    budget_usd: float = float("inf")

    def __post_init__(self) -> None:
        if self.critical_weight <= 0:
            raise ValueError("critical_weight must be positive")
        if self.budget_usd < 0:
            raise ValueError("budget must be non-negative")
        for resource, limit in self.onprem_limits.items():
            if limit < 0:
                raise ValueError(f"on-prem limit for {resource!r} must be non-negative")

    # -- API weighting ------------------------------------------------------------------
    def api_weight(self, api: str) -> float:
        """τ_A: the weight of one API in QPerf and QAvai."""
        return self.critical_weight if api in self.critical_apis else 1.0

    def api_weights(self, apis: Sequence[str]) -> Dict[str, float]:
        return {api: self.api_weight(api) for api in apis}

    # -- constraints ------------------------------------------------------------------------
    def pins_respected(self, plan: MigrationPlan) -> bool:
        """First constraint of Eq. 4: pinned components stay where the owner put them."""
        return all(plan[c] == loc for c, loc in self.pinned_placement.items())

    def pin_violations(self, plan: MigrationPlan) -> List[str]:
        return [c for c, loc in self.pinned_placement.items() if plan[c] != loc]

    def onprem_limit(self, resource: str) -> Optional[float]:
        return self.onprem_limits.get(resource)

    def with_critical_apis(self, apis: Sequence[str]) -> "MigrationPreferences":
        """A copy with a different critical-API set (used by the Figure 16 experiment)."""
        return MigrationPreferences(
            critical_apis=list(apis),
            critical_weight=self.critical_weight,
            pinned_placement=dict(self.pinned_placement),
            onprem_limits=dict(self.onprem_limits),
            budget_usd=self.budget_usd,
        )

    def with_budget(self, budget_usd: float) -> "MigrationPreferences":
        return MigrationPreferences(
            critical_apis=list(self.critical_apis),
            critical_weight=self.critical_weight,
            pinned_placement=dict(self.pinned_placement),
            onprem_limits=dict(self.onprem_limits),
            budget_usd=budget_usd,
        )

    @classmethod
    def pin_on_prem(cls, components: Sequence[str], **kwargs) -> "MigrationPreferences":
        """Convenience constructor pinning the given components to the on-prem site."""
        return cls(pinned_placement={c: ON_PREM for c in components}, **kwargs)
