"""Migration preferences supplied by the application owner (Section 3 and Eq. 4).

Preferences personalize recommendations: which APIs are business-critical (weighted 2x
by default), which components are pinned to a location (regulatory compliance), which
remote locations a component may be placed at (``allowed_locations`` — e.g. "user data
may go to region 2 but not 3"), the maximum resource usage allowed to remain on-prem,
and the cloud budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.placement import MigrationPlan
from ..cluster.topology import ON_PREM

__all__ = ["MigrationPreferences"]

#: Default multiplier applied to APIs the owner marks as critical (Section 4.1.1).
DEFAULT_CRITICAL_WEIGHT = 2.0


@dataclass
class MigrationPreferences:
    """Owner-provided knobs constraining and weighting the recommendation."""

    critical_apis: List[str] = field(default_factory=list)
    critical_weight: float = DEFAULT_CRITICAL_WEIGHT
    pinned_placement: Dict[str, int] = field(default_factory=dict)
    onprem_limits: Dict[str, float] = field(default_factory=dict)
    budget_usd: float = float("inf")
    #: Per-component location whitelists: a listed component may only be placed at
    #: these locations.  The on-prem site (0) is always implicitly allowed (the
    #: component runs there today); unlisted components may go anywhere.
    allowed_locations: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.critical_weight <= 0:
            raise ValueError("critical_weight must be positive")
        if self.budget_usd < 0:
            raise ValueError("budget must be non-negative")
        for resource, limit in self.onprem_limits.items():
            if limit < 0:
                raise ValueError(f"on-prem limit for {resource!r} must be non-negative")
        normalized: Dict[str, Tuple[int, ...]] = {}
        for component, locations in self.allowed_locations.items():
            ids = {int(loc) for loc in locations}
            if any(loc < 0 for loc in ids):
                raise ValueError(
                    f"allowed locations for {component!r} must be non-negative ids"
                )
            normalized[component] = tuple(sorted(ids | {ON_PREM}))
        self.allowed_locations = normalized
        for component, location in self.pinned_placement.items():
            if not self.allowed_at(component, location):
                raise ValueError(
                    f"component {component!r} is pinned to location {location}, which "
                    f"its allowed-locations whitelist {self.allowed_locations[component]} "
                    "excludes"
                )

    # -- API weighting ------------------------------------------------------------------
    def api_weight(self, api: str) -> float:
        """τ_A: the weight of one API in QPerf and QAvai."""
        return self.critical_weight if api in self.critical_apis else 1.0

    def api_weights(self, apis: Sequence[str]) -> Dict[str, float]:
        return {api: self.api_weight(api) for api in apis}

    # -- constraints ------------------------------------------------------------------------
    def pins_respected(self, plan: MigrationPlan) -> bool:
        """First constraint of Eq. 4: pinned components stay where the owner put them."""
        return all(plan[c] == loc for c, loc in self.pinned_placement.items())

    def pin_violations(self, plan: MigrationPlan) -> List[str]:
        return [c for c, loc in self.pinned_placement.items() if plan[c] != loc]

    def onprem_limit(self, resource: str) -> Optional[float]:
        return self.onprem_limits.get(resource)

    # -- allowed-locations whitelist ------------------------------------------------------
    def allowed_at(self, component: str, location: int) -> bool:
        """Whether the whitelist permits placing the component at the location.

        On-prem is always permitted; components without a whitelist may go anywhere.
        """
        if location == ON_PREM:
            return True
        allowed = self.allowed_locations.get(component)
        return allowed is None or location in allowed

    def allowed_remote_sites(
        self, component: str, locations: Collection[int]
    ) -> Tuple[int, ...]:
        """The remote sites (in the given order) the component may be placed at."""
        return tuple(
            loc
            for loc in locations
            if loc != ON_PREM and self.allowed_at(component, loc)
        )

    def location_violations(self, plan: MigrationPlan) -> List[str]:
        """Whitelisted components placed somewhere their whitelist excludes."""
        return [
            component
            for component in self.allowed_locations
            if component in plan and not self.allowed_at(component, plan[component])
        ]

    def with_critical_apis(self, apis: Sequence[str]) -> "MigrationPreferences":
        """A copy with a different critical-API set (used by the Figure 16 experiment)."""
        return MigrationPreferences(
            critical_apis=list(apis),
            critical_weight=self.critical_weight,
            pinned_placement=dict(self.pinned_placement),
            onprem_limits=dict(self.onprem_limits),
            budget_usd=self.budget_usd,
            allowed_locations=dict(self.allowed_locations),
        )

    def with_budget(self, budget_usd: float) -> "MigrationPreferences":
        return MigrationPreferences(
            critical_apis=list(self.critical_apis),
            critical_weight=self.critical_weight,
            pinned_placement=dict(self.pinned_placement),
            onprem_limits=dict(self.onprem_limits),
            budget_usd=budget_usd,
            allowed_locations=dict(self.allowed_locations),
        )

    def with_allowed_locations(
        self, allowed: Mapping[str, Sequence[int]]
    ) -> "MigrationPreferences":
        """A copy with per-component location whitelists."""
        return MigrationPreferences(
            critical_apis=list(self.critical_apis),
            critical_weight=self.critical_weight,
            pinned_placement=dict(self.pinned_placement),
            onprem_limits=dict(self.onprem_limits),
            budget_usd=self.budget_usd,
            allowed_locations={c: tuple(locs) for c, locs in allowed.items()},
        )

    @classmethod
    def pin_on_prem(cls, components: Sequence[str], **kwargs) -> "MigrationPreferences":
        """Convenience constructor pinning the given components to the on-prem site."""
        return cls(pinned_placement={c: ON_PREM for c in components}, **kwargs)
