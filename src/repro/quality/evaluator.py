"""Plan quality evaluation: the objective vector and feasibility check of Eq. 4.

:class:`QualityEvaluator` bundles the three quality models (performance, availability,
cost), the owner's preferences and the resource estimate into a single object that the
optimizers query: ``evaluate(plan)`` returns a :class:`PlanQuality` with the objective
values, feasibility and the list of violated constraints.  Evaluations are cached by
plan, which matters because genetic search revisits plans frequently.

**Plan-matrix pipeline.**  The unit of batched evaluation is a ``(plans, components)``
integer location matrix, not a list of :class:`MigrationPlan` objects:
``evaluate_vectors`` (and ``evaluate_batch``, which lowers plan lists onto it) dedups
the generation into one matrix and scores all three objectives plus feasibility in a
handful of vectorized passes — one compiled replay per API for QPerf, one autoscaler
pass per billable site for QCost, one stateful-column pass per API for QAvai, and
boolean constraint masks for pins, location whitelists, on-prem peaks and the budget.
Each plan's cost is computed exactly once per evaluation and reused by the budget
check; violation strings are materialized lazily, only for infeasible plans.  The
per-plan path (:meth:`evaluate`) is kept as the reference oracle: batched scores are
bitwise identical to it, and the ``evaluations`` counter advances the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.placement import MigrationPlan
from ..cluster.topology import ON_PREM
from ..learning.estimator import ResourceEstimate
from .availability import ApiAvailabilityModel
from .cost import CloudCostModel
from .performance import ApiPerformanceModel
from .preferences import MigrationPreferences

__all__ = ["PlanQuality", "QualityEvaluator"]

#: Resources checked against the on-prem limits (metric name -> estimator resource key).
_ONPREM_RESOURCES = {
    "cpu_millicores": "cpu_millicores",
    "memory_mb": "memory_mb",
    "storage_gb": "storage_gb",
}


@dataclass(frozen=True)
class PlanQuality:
    """Quality of one migration plan."""

    plan: MigrationPlan
    perf: float
    avail: float
    cost: float
    feasible: bool
    violations: Tuple[str, ...] = ()

    def objectives(self) -> Tuple[float, float, float]:
        """(QPerf, QAvai, QCost) — all minimized."""
        return (self.perf, self.avail, self.cost)

    def dominates(self, other: "PlanQuality") -> bool:
        """Pareto dominance on the objective vector (feasibility handled upstream)."""
        mine, theirs = self.objectives(), other.objectives()
        return all(a <= b for a, b in zip(mine, theirs)) and any(
            a < b for a, b in zip(mine, theirs)
        )


@dataclass
class _ConstraintArrays:
    """Batched constraint masks plus the numbers violation strings are built from."""

    feasible: np.ndarray
    pin_violated: List[Tuple[str, int, np.ndarray]]
    location_violated: List[Tuple[str, Tuple[int, ...], np.ndarray, np.ndarray]]
    peaks: Dict[str, Tuple[float, np.ndarray]]
    over_budget: Optional[np.ndarray]


class QualityEvaluator:
    """Evaluates plans against the three objectives and the constraints of Eq. 4."""

    def __init__(
        self,
        performance: ApiPerformanceModel,
        availability: ApiAvailabilityModel,
        cost: CloudCostModel,
        preferences: MigrationPreferences,
        estimate: ResourceEstimate,
        component_order: Optional[Sequence[str]] = None,
    ) -> None:
        self.performance = performance
        self.availability = availability
        self.cost = cost
        self.preferences = preferences
        self.estimate = estimate
        self._weights = preferences.api_weights(performance.apis)
        self._component_order = list(component_order) if component_order else None
        self._cache: Dict[Tuple[int, ...], PlanQuality] = {}
        #: Canonical column order of the result cache: every key is the plan's
        #: location tuple in THIS order, so plans expressed under a permuted
        #: component order never collide.
        self._canonical: Tuple[str, ...] = tuple(self._columns(None))
        self.evaluations = 0

    def _key(self, plan: MigrationPlan) -> Tuple[int, ...]:
        """Cache key of one plan: its locations in the canonical component order."""
        if tuple(plan.components) == self._canonical:
            return tuple(plan.to_vector())
        return tuple(plan[c] for c in self._canonical)

    # -- evaluation ------------------------------------------------------------------------
    def evaluate(self, plan: MigrationPlan) -> PlanQuality:
        key = self._key(plan)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        quality = self._evaluate_uncached(plan)
        self._cache[key] = quality
        return quality

    def evaluate_batch(self, plans: Sequence[MigrationPlan]) -> List[PlanQuality]:
        """Evaluate a whole generation in one call by lowering it onto a plan matrix.

        Distinct uncached plans are collected into one ``(plans, components)`` matrix
        and scored by :meth:`evaluate_vectors`'s batched pipeline; duplicates and
        cache hits cost nothing.  Results and the ``evaluations`` counter are
        identical to calling :meth:`evaluate` plan by plan.
        """
        keys = [self._key(plan) for plan in plans]
        missing: Dict[Tuple[int, ...], MigrationPlan] = {}
        for key, plan in zip(keys, plans):
            if key not in self._cache and key not in missing:
                missing[key] = plan
        if missing:
            plans_list = list(missing.values())
            orders = {tuple(plan.components) for plan in plans_list}
            if len(orders) == 1:
                matrix = np.asarray([plan.to_vector() for plan in plans_list])
                components = plans_list[0].components
                for key, quality in zip(
                    missing, self._score_matrix(matrix, components, plans_list)
                ):
                    self._cache[key] = quality
            else:
                # Mixed component orders cannot share one matrix; score through the
                # per-plan reference path.
                self.performance.prime(plans_list)
                for key, plan in missing.items():
                    self._cache[key] = self._evaluate_uncached(plan)
        return [self._cache[key] for key in keys]

    def evaluate_vectors(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]] = None,
    ) -> List[PlanQuality]:
        """Evaluate location vectors directly — the optimizers' native entry point.

        ``vectors`` is anything convertible to a ``(plans, len(components))`` integer
        matrix; ``components`` names the columns (defaults to the evaluator's
        component order).  :class:`MigrationPlan` objects are constructed only for
        distinct uncached rows, at the :class:`PlanQuality` API boundary.
        """
        matrix, components = self._lower(vectors, components)
        keys = [tuple(row) for row in matrix.tolist()]
        missing: Dict[Tuple[int, ...], int] = {}
        for index, key in enumerate(keys):
            if key not in self._cache and key not in missing:
                missing[key] = index
        if missing:
            rows = matrix[list(missing.values())]
            plans = [
                MigrationPlan.from_vector(components, list(key)) for key in missing
            ]
            for key, quality in zip(missing, self._score_matrix(rows, components, plans)):
                self._cache[key] = quality
        return [self._cache[key] for key in keys]

    def evaluate_many(self, plans: Sequence[MigrationPlan]) -> List[PlanQuality]:
        return self.evaluate_batch(plans)

    def _score_matrix(
        self,
        matrix: np.ndarray,
        components: Sequence[str],
        plans: Sequence[MigrationPlan],
    ) -> List[PlanQuality]:
        """Score distinct, uncached plans in a handful of vectorized passes.

        The three objective vectors, the feasibility mask and the numbers behind the
        violation strings are each computed once for the whole matrix; results are
        bitwise identical to the per-plan reference path.
        """
        perf = self.performance.qperf_batch(matrix, components, self._weights)
        avail = self.availability.qavai_batch(matrix, components, self._weights)
        cost = self.cost.qcost_batch(matrix, components)
        constraints = self._constraint_arrays(matrix, components, cost)
        qualities: List[PlanQuality] = []
        for row, plan in enumerate(plans):
            self.evaluations += 1
            feasible = bool(constraints.feasible[row])
            violations: Tuple[str, ...] = ()
            if not feasible:
                violations = tuple(
                    self._materialize_violations(row, constraints, float(cost[row]))
                )
            qualities.append(
                PlanQuality(
                    plan=plan,
                    perf=float(perf[row]),
                    avail=float(avail[row]),
                    cost=float(cost[row]),
                    feasible=feasible,
                    violations=violations,
                )
            )
        return qualities

    def _evaluate_uncached(self, plan: MigrationPlan) -> PlanQuality:
        """Per-plan reference oracle; the batched pipeline must match it bitwise."""
        self.evaluations += 1
        cost = self.cost.qcost(plan)
        violations = self._violations(plan, cost)
        return PlanQuality(
            plan=plan,
            perf=self.performance.qperf(plan, self._weights),
            avail=self.availability.qavai(plan, self._weights),
            cost=cost,
            feasible=not violations,
            violations=tuple(violations),
        )

    def is_feasible(self, plan: MigrationPlan) -> bool:
        return not self.constraint_violations(plan)

    # -- constraints -----------------------------------------------------------------------
    def constraint_violations(self, plan: MigrationPlan) -> List[str]:
        """Human-readable descriptions of every violated constraint of Eq. 4."""
        cost = (
            self.cost.qcost(plan)
            if self.preferences.budget_usd != float("inf")
            else None
        )
        return self._violations(plan, cost)

    def _violations(self, plan: MigrationPlan, cost: Optional[float]) -> List[str]:
        """Violation strings for one plan, with the (possibly precomputed) cost.

        The plan's cost is scored exactly once per evaluation: callers that already
        hold it pass it in; ``cost`` may be ``None`` only when no budget is set.
        """
        violations: List[str] = []
        for component in self.preferences.pin_violations(plan):
            violations.append(
                f"component {component} must stay at location "
                f"{self.preferences.pinned_placement[component]}"
            )
        for component in self.preferences.location_violations(plan):
            violations.append(
                f"component {component} may not run at location {plan[component]} "
                f"(allowed locations: {list(self.preferences.allowed_locations[component])})"
            )
        onprem_components = plan.components_at(ON_PREM)
        for resource, estimator_key in _ONPREM_RESOURCES.items():
            limit = self.preferences.onprem_limit(resource)
            if limit is None:
                continue
            peak = self.estimate.peak(estimator_key, onprem_components)
            if peak > limit:
                violations.append(
                    f"on-prem {resource} peak {peak:.0f} exceeds limit {limit:.0f}"
                )
        if self.preferences.budget_usd != float("inf"):
            if cost is None:
                cost = self.cost.qcost(plan)
            if cost > self.preferences.budget_usd:
                violations.append(
                    f"cost {cost:.2f} USD exceeds budget {self.preferences.budget_usd:.2f} USD"
                )
        return violations

    def feasible_mask(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Per-plan feasibility of a location matrix — the batched ``is_feasible``."""
        matrix, components = self._lower(vectors, components)
        cost = (
            self.cost.qcost_batch(matrix, components)
            if self.preferences.budget_usd != float("inf")
            else None
        )
        return self._constraint_arrays(matrix, components, cost).feasible

    def _constraint_arrays(
        self,
        matrix: np.ndarray,
        components: Sequence[str],
        cost: Optional[np.ndarray],
    ) -> _ConstraintArrays:
        """All constraint masks of Eq. 4 for a plan matrix, in one pass each."""
        n_plans = matrix.shape[0]
        column_of = {c: i for i, c in enumerate(components)}
        infeasible = np.zeros(n_plans, dtype=bool)
        pin_violated: List[Tuple[str, int, np.ndarray]] = []
        for component, location in self.preferences.pinned_placement.items():
            mask = matrix[:, column_of[component]] != location
            pin_violated.append((component, location, mask))
            infeasible |= mask
        location_violated: List[Tuple[str, Tuple[int, ...], np.ndarray, np.ndarray]] = []
        if self.preferences.allowed_locations:
            size = int(matrix.max()) + 1 if matrix.size else 1
            for component, allowed in self.preferences.allowed_locations.items():
                column = column_of.get(component)
                if column is None:
                    continue
                permitted = np.zeros(size, dtype=bool)
                permitted[ON_PREM] = True
                for location in allowed:
                    if location < size:
                        permitted[location] = True
                placements = matrix[:, column]
                mask = ~permitted[placements]
                location_violated.append((component, allowed, mask, placements))
                infeasible |= mask
        on_prem = matrix == ON_PREM
        peaks: Dict[str, Tuple[float, np.ndarray]] = {}
        for resource, estimator_key in _ONPREM_RESOURCES.items():
            limit = self.preferences.onprem_limit(resource)
            if limit is None:
                continue
            peak = self.estimate.peak_matrix(estimator_key, on_prem, components)
            peaks[resource] = (limit, peak)
            infeasible |= peak > limit
        over_budget: Optional[np.ndarray] = None
        if self.preferences.budget_usd != float("inf"):
            if cost is None:
                cost = self.cost.qcost_batch(matrix, components)
            over_budget = cost > self.preferences.budget_usd
            infeasible |= over_budget
        return _ConstraintArrays(
            feasible=~infeasible,
            pin_violated=pin_violated,
            location_violated=location_violated,
            peaks=peaks,
            over_budget=over_budget,
        )

    def _materialize_violations(
        self, row: int, constraints: _ConstraintArrays, cost: float
    ) -> List[str]:
        """Violation strings of one infeasible plan, from the batched constraint data.

        Ordering and formatting match :meth:`_violations` exactly.
        """
        violations: List[str] = []
        for component, location, mask in constraints.pin_violated:
            if mask[row]:
                violations.append(
                    f"component {component} must stay at location {location}"
                )
        for component, allowed, mask, placements in constraints.location_violated:
            if mask[row]:
                violations.append(
                    f"component {component} may not run at location {int(placements[row])} "
                    f"(allowed locations: {list(allowed)})"
                )
        for resource, (limit, peak) in constraints.peaks.items():
            if peak[row] > limit:
                violations.append(
                    f"on-prem {resource} peak {peak[row]:.0f} exceeds limit {limit:.0f}"
                )
        if constraints.over_budget is not None and constraints.over_budget[row]:
            violations.append(
                f"cost {cost:.2f} USD exceeds budget "
                f"{self.preferences.budget_usd:.2f} USD"
            )
        return violations

    def _lower(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]],
    ) -> Tuple[np.ndarray, List[str]]:
        """Validate a vector batch and permute it into the canonical column order.

        Shared by :meth:`evaluate_vectors` and :meth:`feasible_mask` so permuted
        component orders hit the same caches (result cache, batched cost memo) and
        fail with the same explicit error on a mismatched component set.
        """
        components = self._columns(components)
        matrix = np.asarray(vectors, dtype=np.int64)
        if matrix.size == 0:
            matrix = matrix.reshape(0, len(components))
        if matrix.ndim != 2 or matrix.shape[1] != len(components):
            raise ValueError("vectors must form a (plans, len(components)) matrix")
        if tuple(components) != self._canonical:
            if set(components) != set(self._canonical):
                raise ValueError(
                    "vector components do not match the evaluator's component set"
                )
            column_of = {c: i for i, c in enumerate(components)}
            matrix = matrix[:, [column_of[c] for c in self._canonical]]
            components = list(self._canonical)
        return matrix, components

    # -- convenience -----------------------------------------------------------------------
    def _columns(self, components: Optional[Sequence[str]]) -> List[str]:
        if components is not None:
            return list(components)
        if self._component_order is not None:
            return list(self._component_order)
        return self.cost.baseline_plan.components

    @property
    def api_weights(self) -> Dict[str, float]:
        return dict(self._weights)

    def cache_size(self) -> int:
        return len(self._cache)

    def evaluated_qualities(self) -> List[PlanQuality]:
        """Every distinct plan evaluated through this evaluator, in evaluation order."""
        return list(self._cache.values())
