"""Plan quality evaluation: the objective vector and feasibility check of Eq. 4.

:class:`QualityEvaluator` bundles the three quality models (performance, availability,
cost), the owner's preferences and the resource estimate into a single object that the
optimizers query: ``evaluate(plan)`` returns a :class:`PlanQuality` with the objective
values, feasibility and the list of violated constraints.  Evaluations are cached by
plan, which matters because genetic search revisits plans frequently.

**Plan-matrix pipeline.**  The unit of batched evaluation is a ``(plans, components)``
integer location matrix, not a list of :class:`MigrationPlan` objects:
``evaluate_vectors`` (and ``evaluate_batch``, which lowers plan lists onto it) dedups
the generation into one matrix and scores all three objectives plus feasibility in a
handful of vectorized passes — one compiled replay per API for QPerf, one autoscaler
pass per billable site for QCost, one stateful-column pass per API for QAvai, and
boolean constraint masks for pins, location whitelists, on-prem peaks and the budget.
Each plan's cost is computed exactly once per evaluation and reused by the budget
check; violation strings are materialized lazily, only for infeasible plans.  The
per-plan path (:meth:`evaluate`) is kept as the reference oracle: batched scores are
bitwise identical to it, and the ``evaluations`` counter advances the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.placement import MigrationPlan
from ..cluster.topology import ON_PREM
from ..learning.estimator import ResourceEstimate, ResourceEstimator
from .availability import ApiAvailabilityModel
from .cost import CloudCostModel
from .performance import ApiPerformanceModel
from .preferences import MigrationPreferences
from .scenarios import (
    RobustAggregator,
    ScenarioQuality,
    ScenarioSet,
    ScenarioSpec,
    WorstCase,
    scaled_footprint,
)

__all__ = ["PlanQuality", "QualityEvaluator"]

#: Resources checked against the on-prem limits (metric name -> estimator resource key).
_ONPREM_RESOURCES = {
    "cpu_millicores": "cpu_millicores",
    "memory_mb": "memory_mb",
    "storage_gb": "storage_gb",
}


@dataclass(frozen=True)
class PlanQuality:
    """Quality of one migration plan.

    Under scenario-robust evaluation the objective fields hold the *aggregated*
    values (the :class:`~repro.quality.scenarios.RobustAggregator` output),
    ``feasible`` means feasible under **every** scenario, and ``scenarios`` carries
    the per-scenario breakdown; classic single-workload evaluation leaves
    ``scenarios`` empty.
    """

    plan: MigrationPlan
    perf: float
    avail: float
    cost: float
    feasible: bool
    violations: Tuple[str, ...] = ()
    scenarios: Tuple[ScenarioQuality, ...] = ()

    def objectives(self) -> Tuple[float, float, float]:
        """(QPerf, QAvai, QCost) — all minimized."""
        return (self.perf, self.avail, self.cost)

    def dominates(self, other: "PlanQuality") -> bool:
        """Pareto dominance on the objective vector (feasibility handled upstream)."""
        mine, theirs = self.objectives(), other.objectives()
        return all(a <= b for a, b in zip(mine, theirs)) and any(
            a < b for a, b in zip(mine, theirs)
        )


@dataclass
class _ConstraintArrays:
    """Batched constraint masks plus the numbers violation strings are built from."""

    feasible: np.ndarray
    pin_violated: List[Tuple[str, int, np.ndarray]]
    location_violated: List[Tuple[str, Tuple[int, ...], np.ndarray, np.ndarray]]
    peaks: Dict[str, Tuple[float, np.ndarray]]
    over_budget: Optional[np.ndarray]


@dataclass
class _ScenarioContext:
    """One compiled scenario: the models/artifacts the quality stack bakes in.

    ``performance`` is a :meth:`~repro.quality.performance.ApiPerformanceModel.scenario_view`
    (the base model itself for payload-neutral scenarios), ``cost`` a derived
    :class:`~repro.quality.cost.CloudCostModel` over the scenario's resource estimate
    and payload-scaled footprint, ``estimate`` feeds the on-prem peak constraint, and
    ``weights`` is the scenario's τ_A trace-weight vector for QPerf/QAvai.
    """

    spec: ScenarioSpec
    performance: ApiPerformanceModel
    cost: CloudCostModel
    estimate: ResourceEstimate
    weights: Dict[str, float]


class QualityEvaluator:
    """Evaluates plans against the three objectives and the constraints of Eq. 4."""

    def __init__(
        self,
        performance: ApiPerformanceModel,
        availability: ApiAvailabilityModel,
        cost: CloudCostModel,
        preferences: MigrationPreferences,
        estimate: ResourceEstimate,
        component_order: Optional[Sequence[str]] = None,
        estimator: Optional[ResourceEstimator] = None,
    ) -> None:
        """``estimator`` (the fitted resource estimator the base ``estimate`` came
        from) is only needed for scenario-robust evaluation of scenarios that change
        request rates — it re-predicts the per-component usage series under each
        scenario's per-API rate series."""
        self.performance = performance
        self.availability = availability
        self.cost = cost
        self.preferences = preferences
        self.estimate = estimate
        self.estimator = estimator
        self._weights = preferences.api_weights(performance.apis)
        self._component_order = list(component_order) if component_order else None
        self._cache: Dict[Tuple[int, ...], PlanQuality] = {}
        #: Canonical column order of the result cache: every key is the plan's
        #: location tuple in THIS order, so plans expressed under a permuted
        #: component order never collide.
        self._canonical: Tuple[str, ...] = tuple(self._columns(None))
        self.evaluations = 0
        #: Scenario evaluations: one per (distinct plan, scenario) pair scored by the
        #: robust path (``evaluations`` counts plans, matching the paper's budget).
        self.scenario_evaluations = 0
        # Compiled scenario contexts, keyed by the spec's canonical identity.
        self._scenario_contexts: Dict[Tuple, _ScenarioContext] = {}
        # Robust result caches, one per (scenario set, aggregator) identity.
        self._robust_caches: Dict[Tuple, Dict[Tuple[int, ...], PlanQuality]] = {}
        # Active binding: when set, every entry point (evaluate/evaluate_batch/
        # evaluate_vectors/is_feasible/feasible_mask) defaults to robust evaluation
        # over this scenario set — how the optimizers become scenario-robust for free.
        self._bound: Optional[Tuple[ScenarioSet, RobustAggregator]] = None

    def _key(self, plan: MigrationPlan) -> Tuple[int, ...]:
        """Cache key of one plan: its locations in the canonical component order."""
        if tuple(plan.components) == self._canonical:
            return tuple(plan.to_vector())
        return tuple(plan[c] for c in self._canonical)

    # -- scenario binding ------------------------------------------------------------------
    def bind_scenarios(
        self,
        scenarios: "ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]",
        aggregator: Optional[RobustAggregator] = None,
    ) -> "QualityEvaluator":
        """Make every entry point evaluate robustly over ``scenarios`` by default.

        After binding, ``evaluate``/``evaluate_batch``/``evaluate_vectors``/
        ``is_feasible``/``feasible_mask`` (and therefore AtlasGA, NSGA-II, random
        search and the DRL reward loop, which only speak those) score each plan over
        the whole scenario set and collapse the objectives with ``aggregator``
        (default :class:`~repro.quality.scenarios.WorstCase`).  The result cache,
        ``cache_size`` and ``evaluated_qualities`` switch to the bound robust cache.
        """
        self._bound = (ScenarioSet.coerce(scenarios), aggregator or WorstCase())
        return self

    def unbind_scenarios(self) -> None:
        """Return to classic single-workload evaluation."""
        self._bound = None

    @property
    def bound_scenarios(self) -> Optional[ScenarioSet]:
        return self._bound[0] if self._bound is not None else None

    @property
    def bound_aggregator(self) -> Optional[RobustAggregator]:
        return self._bound[1] if self._bound is not None else None

    def _resolve_scenarios(
        self,
        scenarios: "Optional[ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]]",
        aggregator: Optional[RobustAggregator],
    ) -> Tuple[Optional[ScenarioSet], Optional[RobustAggregator]]:
        """Explicit arguments win; otherwise the bound set; otherwise the legacy path.

        An explicit scenario set gets the documented :class:`WorstCase` default —
        never the bound aggregator, which belongs to the bound set only."""
        if scenarios is not None:
            return ScenarioSet.coerce(scenarios), aggregator or WorstCase()
        if self._bound is not None:
            return self._bound[0], aggregator or self._bound[1]
        return None, None

    def _robust_cache(
        self, scenario_set: ScenarioSet, aggregator: RobustAggregator
    ) -> Dict[Tuple[int, ...], PlanQuality]:
        return self._robust_caches.setdefault(
            (scenario_set.key(), aggregator.key()), {}
        )

    def _active_cache(self) -> Dict[Tuple[int, ...], PlanQuality]:
        if self._bound is not None:
            return self._robust_cache(*self._bound)
        return self._cache

    # -- evaluation ------------------------------------------------------------------------
    def evaluate(self, plan: MigrationPlan) -> PlanQuality:
        if self._bound is not None:
            return self.evaluate_batch([plan])[0]
        key = self._key(plan)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        quality = self._evaluate_uncached(plan)
        self._cache[key] = quality
        return quality

    def evaluate_batch(
        self,
        plans: Sequence[MigrationPlan],
        scenarios: "Optional[ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]]" = None,
        aggregator: Optional[RobustAggregator] = None,
    ) -> List[PlanQuality]:
        """Evaluate a whole generation in one call by lowering it onto a plan matrix.

        Distinct uncached plans are collected into one ``(plans, components)`` matrix
        and scored by :meth:`evaluate_vectors`'s batched pipeline; duplicates and
        cache hits cost nothing.  Results and the ``evaluations`` counter are
        identical to calling :meth:`evaluate` plan by plan.  With ``scenarios`` (or a
        bound scenario set), plans are scored robustly over the scenario axis.
        """
        scenario_set, aggregator = self._resolve_scenarios(scenarios, aggregator)
        if scenario_set is not None:
            keys = [self._key(plan) for plan in plans]
            cache = self._robust_cache(scenario_set, aggregator)
            missing: Dict[Tuple[int, ...], MigrationPlan] = {}
            for key, plan in zip(keys, plans):
                if key not in cache and key not in missing:
                    missing[key] = plan
            if missing:
                # Keys are already canonical-order vectors, so mixed component orders
                # lower onto one matrix for free.
                matrix = np.asarray(list(missing), dtype=np.int64)
                qualities = self._score_matrix_scenarios(
                    matrix,
                    list(self._canonical),
                    list(missing.values()),
                    scenario_set,
                    aggregator,
                )
                for key, quality in zip(missing, qualities):
                    cache[key] = quality
            return [cache[key] for key in keys]
        keys = [self._key(plan) for plan in plans]
        missing = {}
        for key, plan in zip(keys, plans):
            if key not in self._cache and key not in missing:
                missing[key] = plan
        if missing:
            plans_list = list(missing.values())
            orders = {tuple(plan.components) for plan in plans_list}
            if len(orders) == 1:
                matrix = np.asarray([plan.to_vector() for plan in plans_list])
                components = plans_list[0].components
                for key, quality in zip(
                    missing, self._score_matrix(matrix, components, plans_list)
                ):
                    self._cache[key] = quality
            else:
                # Mixed component orders cannot share one matrix; score through the
                # per-plan reference path.
                self.performance.prime(plans_list)
                for key, plan in missing.items():
                    self._cache[key] = self._evaluate_uncached(plan)
        return [self._cache[key] for key in keys]

    def evaluate_vectors(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]] = None,
        scenarios: "Optional[ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]]" = None,
        aggregator: Optional[RobustAggregator] = None,
    ) -> List[PlanQuality]:
        """Evaluate location vectors directly — the optimizers' native entry point.

        ``vectors`` is anything convertible to a ``(plans, len(components))`` integer
        matrix; ``components`` names the columns (defaults to the evaluator's
        component order).  :class:`MigrationPlan` objects are constructed only for
        distinct uncached rows, at the :class:`PlanQuality` API boundary.

        ``scenarios`` switches on robust evaluation: every distinct plan is scored
        once per scenario (an S×P objective tensor built with shared dedup, shared
        compiled replays and per-scenario compiled artifacts) and the tensor is
        collapsed by ``aggregator`` into the scalar objectives; the per-scenario
        breakdown rides along on :attr:`PlanQuality.scenarios`.  With ``scenarios=None``
        and no bound set, this is byte-identical to the classic single-workload path.
        """
        scenario_set, aggregator = self._resolve_scenarios(scenarios, aggregator)
        matrix, components = self._lower(vectors, components)
        keys = [tuple(row) for row in matrix.tolist()]
        cache = (
            self._robust_cache(scenario_set, aggregator)
            if scenario_set is not None
            else self._cache
        )
        missing: Dict[Tuple[int, ...], int] = {}
        for index, key in enumerate(keys):
            if key not in cache and key not in missing:
                missing[key] = index
        if missing:
            rows = matrix[list(missing.values())]
            plans = [
                MigrationPlan.from_vector(components, list(key)) for key in missing
            ]
            if scenario_set is not None:
                qualities = self._score_matrix_scenarios(
                    rows, components, plans, scenario_set, aggregator
                )
            else:
                qualities = self._score_matrix(rows, components, plans)
            for key, quality in zip(missing, qualities):
                cache[key] = quality
        return [cache[key] for key in keys]

    def evaluate_many(self, plans: Sequence[MigrationPlan]) -> List[PlanQuality]:
        return self.evaluate_batch(plans)

    def _score_matrix(
        self,
        matrix: np.ndarray,
        components: Sequence[str],
        plans: Sequence[MigrationPlan],
    ) -> List[PlanQuality]:
        """Score distinct, uncached plans in a handful of vectorized passes.

        The three objective vectors, the feasibility mask and the numbers behind the
        violation strings are each computed once for the whole matrix; results are
        bitwise identical to the per-plan reference path.
        """
        perf = self.performance.qperf_batch(matrix, components, self._weights)
        avail = self.availability.qavai_batch(matrix, components, self._weights)
        cost = self.cost.qcost_batch(matrix, components)
        constraints = self._constraint_arrays(matrix, components, cost)
        qualities: List[PlanQuality] = []
        for row, plan in enumerate(plans):
            self.evaluations += 1
            feasible = bool(constraints.feasible[row])
            violations: Tuple[str, ...] = ()
            if not feasible:
                violations = tuple(
                    self._materialize_violations(row, constraints, float(cost[row]))
                )
            qualities.append(
                PlanQuality(
                    plan=plan,
                    perf=float(perf[row]),
                    avail=float(avail[row]),
                    cost=float(cost[row]),
                    feasible=feasible,
                    violations=violations,
                )
            )
        return qualities

    # -- scenario compilation / robust scoring ----------------------------------------------
    def _scenario_context(self, spec: ScenarioSpec) -> _ScenarioContext:
        """Compile one scenario into the artifacts the models bake in, cached by spec.

        The baseline spec *is* the base stack (same model objects), so evaluating the
        default scenario robustly shares every cache with — and scores bitwise equal
        to — the classic path.  Non-baseline specs derive: a scenario resource
        estimate (re-predicted per-API rate series), a payload-scaled footprint, a
        performance scenario view (shared compiled traces + replay caches) and a
        scenario τ_A weight vector.
        """
        key = spec.compile_key()
        context = self._scenario_contexts.get(key)
        if context is None:
            if spec.is_baseline:
                context = _ScenarioContext(
                    spec=spec,
                    performance=self.performance,
                    cost=self.cost,
                    estimate=self.estimate,
                    weights=self._weights,
                )
            else:
                estimate = self._scenario_estimate(spec)
                performance = self.performance.scenario_view(
                    scaled_footprint(self.performance.footprint, spec),
                    changed_apis=spec.changed_payload_apis(),
                )
                cost = self.cost.derive(
                    estimate=estimate,
                    footprint=scaled_footprint(self.cost.footprint, spec),
                )
                weights = {
                    api: weight * spec.mix_factor(api)
                    for api, weight in self._weights.items()
                }
                context = _ScenarioContext(
                    spec=spec,
                    performance=performance,
                    cost=cost,
                    estimate=estimate,
                    weights=weights,
                )
            self._scenario_contexts[key] = context
        return context

    def _scenario_estimate(self, spec: ScenarioSpec) -> ResourceEstimate:
        """The scenario's expected resource-usage series (per-API rate compilation)."""
        if not spec.changes_rates:
            return self.estimate
        if self.estimator is None:
            raise ValueError(
                f"scenario {spec.name!r} changes request rates; construct the "
                "evaluator with estimator=... (the fitted ResourceEstimator) to "
                "compile scenario resource estimates"
            )
        if not self.estimate.api_rates:
            raise ValueError(
                "the base resource estimate has no per-API rate series to scale"
            )
        rates = {
            api: [value * spec.rate_factor(api) for value in series]
            for api, series in self.estimate.api_rates.items()
        }
        return self.estimator.predict(rates, step_ms=self.estimate.step_ms)

    def _score_matrix_scenarios(
        self,
        matrix: np.ndarray,
        components: Sequence[str],
        plans: Sequence[MigrationPlan],
        scenario_set: ScenarioSet,
        aggregator: RobustAggregator,
    ) -> List[PlanQuality]:
        """Score distinct plans over the whole scenario axis in S batched passes.

        Builds the S×P objective tensor (one set of vectorized passes per compiled
        scenario, all sharing the plan-level dedup and the performance model's
        compiled trace sets / replay caches), collapses it with ``aggregator`` and
        attaches the per-scenario breakdown.  A plan is feasible iff it is feasible
        under every scenario; each infeasible scenario's violation strings are
        materialized lazily and prefixed with the scenario name when S > 1.
        """
        contexts = [self._scenario_context(spec) for spec in scenario_set]
        n_scenarios, n_plans = len(contexts), matrix.shape[0]
        perf = np.empty((n_scenarios, n_plans), dtype=np.float64)
        avail = np.empty((n_scenarios, n_plans), dtype=np.float64)
        cost = np.empty((n_scenarios, n_plans), dtype=np.float64)
        constraints: List[_ConstraintArrays] = []
        # Impact factors depend on the performance view (footprint), not the trace
        # weights: payload-neutral scenarios share one impact matrix outright, so the
        # Δ-row gather/replay happens once per distinct view instead of once per
        # scenario.
        impact_cache: Dict[int, np.ndarray] = {}
        # Seed the base model's impacts whenever (a) a payload-scaled view could
        # copy unchanged rows from them and (b) some scenario uses the base view
        # anyway — independent of the scenario order in the set.
        views = {id(context.performance): context.performance for context in contexts}
        if id(self.performance) in views and any(
            view is not self.performance and view._changed_apis is not None
            for view in views.values()
        ):
            impact_cache[id(self.performance)] = self.performance.impact_matrix(
                matrix, components
            )
        for index, context in enumerate(contexts):
            view_key = id(context.performance)
            impacts = impact_cache.get(view_key)
            if impacts is None:
                impacts = context.performance.impact_matrix(
                    matrix,
                    components,
                    base_impacts=impact_cache.get(id(self.performance)),
                )
                impact_cache[view_key] = impacts
            perf[index] = context.performance.qperf_from_impacts(
                impacts, context.weights
            )
            avail[index] = self.availability.qavai_batch(
                matrix, components, context.weights
            )
            cost[index] = context.cost.qcost_batch(matrix, components)
            constraints.append(
                self._constraint_arrays(
                    matrix, components, cost[index], estimate=context.estimate
                )
            )
        weights = scenario_set.weight_array()
        agg_perf = aggregator.combine(perf, weights)
        agg_avail = aggregator.combine(avail, weights)
        agg_cost = aggregator.combine(cost, weights)
        feasible_all = constraints[0].feasible.copy()
        for arrays in constraints[1:]:
            feasible_all &= arrays.feasible
        qualities: List[PlanQuality] = []
        for row, plan in enumerate(plans):
            self.evaluations += 1
            self.scenario_evaluations += n_scenarios
            per_scenario: List[ScenarioQuality] = []
            violations: List[str] = []
            for index, context in enumerate(contexts):
                ok = bool(constraints[index].feasible[row])
                scenario_violations: Tuple[str, ...] = ()
                if not ok:
                    scenario_violations = tuple(
                        self._materialize_violations(
                            row, constraints[index], float(cost[index, row])
                        )
                    )
                    if n_scenarios == 1:
                        violations.extend(scenario_violations)
                    else:
                        violations.extend(
                            f"[{context.spec.name}] {violation}"
                            for violation in scenario_violations
                        )
                per_scenario.append(
                    ScenarioQuality(
                        scenario=context.spec.name,
                        perf=float(perf[index, row]),
                        avail=float(avail[index, row]),
                        cost=float(cost[index, row]),
                        feasible=ok,
                        violations=scenario_violations,
                    )
                )
            qualities.append(
                PlanQuality(
                    plan=plan,
                    perf=float(agg_perf[row]),
                    avail=float(agg_avail[row]),
                    cost=float(agg_cost[row]),
                    feasible=bool(feasible_all[row]),
                    violations=tuple(violations),
                    scenarios=tuple(per_scenario),
                )
            )
        return qualities

    def qcost_vectors(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Per-plan cost of a location matrix, scenario-aggregated when bound.

        Unbound this is exactly ``cost.qcost_batch`` after canonical lowering (the
        affinity-NSGA-II baseline's cost objective); bound, each plan's per-scenario
        costs collapse through the bound aggregator — the single-plan baselines
        become scenario-robust through the same door as the evaluators.
        """
        matrix, components = self._lower(vectors, components)
        if self._bound is None:
            return self.cost.qcost_batch(matrix, components)
        scenario_set, aggregator = self._bound
        costs = np.stack(
            [
                self._scenario_context(spec).cost.qcost_batch(matrix, components)
                for spec in scenario_set
            ]
        )
        return aggregator.combine(costs, scenario_set.weight_array())

    def invalidate_for_scenario(
        self,
        scenario: "Optional[ScenarioSpec | str]" = None,
        apis: Optional[Sequence[str]] = None,
    ) -> None:
        """Drop compiled scenario state so the next evaluation recompiles it.

        ``scenario`` (a spec or name) drops that scenario's compiled context and
        every robust cache that includes it; ``None`` drops all contexts and robust
        caches.  ``apis`` additionally invalidates those APIs' compiled projection /
        replay caches in the performance model *and* the single-workload result cache
        (their QPerf contributions are stale) — the drift monitor's refresh hook.
        """
        if scenario is None:
            self._scenario_contexts.clear()
            self._robust_caches.clear()
        else:
            name = scenario.name if isinstance(scenario, ScenarioSpec) else scenario
            for key in [
                key
                for key, context in self._scenario_contexts.items()
                if context.spec.name == name
            ]:
                del self._scenario_contexts[key]
            for cache_key in [
                cache_key
                for cache_key in self._robust_caches
                if any(spec_key[0] == name for spec_key in cache_key[0])
            ]:
                del self._robust_caches[cache_key]
        if apis is not None:
            self.performance.invalidate_for_scenario(apis)
            self._cache.clear()
            self._robust_caches.clear()
            self._scenario_contexts.clear()

    def _evaluate_uncached(self, plan: MigrationPlan) -> PlanQuality:
        """Per-plan reference oracle; the batched pipeline must match it bitwise."""
        self.evaluations += 1
        cost = self.cost.qcost(plan)
        violations = self._violations(plan, cost)
        return PlanQuality(
            plan=plan,
            perf=self.performance.qperf(plan, self._weights),
            avail=self.availability.qavai(plan, self._weights),
            cost=cost,
            feasible=not violations,
            violations=tuple(violations),
        )

    def is_feasible(self, plan: MigrationPlan) -> bool:
        if self._bound is not None:
            # Robust feasibility: the plan must satisfy Eq. 4 under every scenario.
            return bool(
                self.feasible_mask([list(self._key(plan))], list(self._canonical))[0]
            )
        return not self.constraint_violations(plan)

    # -- constraints -----------------------------------------------------------------------
    def constraint_violations(self, plan: MigrationPlan) -> List[str]:
        """Human-readable descriptions of every violated constraint of Eq. 4."""
        cost = (
            self.cost.qcost(plan)
            if self.preferences.budget_usd != float("inf")
            else None
        )
        return self._violations(plan, cost)

    def _violations(self, plan: MigrationPlan, cost: Optional[float]) -> List[str]:
        """Violation strings for one plan, with the (possibly precomputed) cost.

        The plan's cost is scored exactly once per evaluation: callers that already
        hold it pass it in; ``cost`` may be ``None`` only when no budget is set.
        """
        violations: List[str] = []
        for component in self.preferences.pin_violations(plan):
            violations.append(
                f"component {component} must stay at location "
                f"{self.preferences.pinned_placement[component]}"
            )
        for component in self.preferences.location_violations(plan):
            violations.append(
                f"component {component} may not run at location {plan[component]} "
                f"(allowed locations: {list(self.preferences.allowed_locations[component])})"
            )
        onprem_components = plan.components_at(ON_PREM)
        for resource, estimator_key in _ONPREM_RESOURCES.items():
            limit = self.preferences.onprem_limit(resource)
            if limit is None:
                continue
            peak = self.estimate.peak(estimator_key, onprem_components)
            if peak > limit:
                violations.append(
                    f"on-prem {resource} peak {peak:.0f} exceeds limit {limit:.0f}"
                )
        if self.preferences.budget_usd != float("inf"):
            if cost is None:
                cost = self.cost.qcost(plan)
            if cost > self.preferences.budget_usd:
                violations.append(
                    f"cost {cost:.2f} USD exceeds budget {self.preferences.budget_usd:.2f} USD"
                )
        return violations

    def feasible_mask(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]] = None,
        scenarios: "Optional[ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]]" = None,
    ) -> np.ndarray:
        """Per-plan feasibility of a location matrix — the batched ``is_feasible``.

        With ``scenarios`` (or a bound scenario set) a plan is feasible only if it
        satisfies the constraints under **every** scenario; per-scenario costs hit
        the scenario cost models' row memos, so a later robust evaluation of the
        same plans does not pay the cost passes again.
        """
        scenario_set, _aggregator = self._resolve_scenarios(scenarios, None)
        matrix, components = self._lower(vectors, components)
        if scenario_set is not None:
            mask: Optional[np.ndarray] = None
            for spec in scenario_set:
                context = self._scenario_context(spec)
                cost = (
                    context.cost.qcost_batch(matrix, components)
                    if self.preferences.budget_usd != float("inf")
                    else None
                )
                feasible = self._constraint_arrays(
                    matrix, components, cost, estimate=context.estimate
                ).feasible
                mask = feasible if mask is None else (mask & feasible)
            return mask
        cost = (
            self.cost.qcost_batch(matrix, components)
            if self.preferences.budget_usd != float("inf")
            else None
        )
        return self._constraint_arrays(matrix, components, cost).feasible

    def _constraint_arrays(
        self,
        matrix: np.ndarray,
        components: Sequence[str],
        cost: Optional[np.ndarray],
        estimate: Optional[ResourceEstimate] = None,
    ) -> _ConstraintArrays:
        """All constraint masks of Eq. 4 for a plan matrix, in one pass each.

        ``estimate`` selects which period of interest the on-prem peak constraint
        reads (a scenario's compiled estimate under robust evaluation; the base
        estimate otherwise).
        """
        estimate = estimate if estimate is not None else self.estimate
        n_plans = matrix.shape[0]
        column_of = {c: i for i, c in enumerate(components)}
        infeasible = np.zeros(n_plans, dtype=bool)
        pin_violated: List[Tuple[str, int, np.ndarray]] = []
        for component, location in self.preferences.pinned_placement.items():
            mask = matrix[:, column_of[component]] != location
            pin_violated.append((component, location, mask))
            infeasible |= mask
        location_violated: List[Tuple[str, Tuple[int, ...], np.ndarray, np.ndarray]] = []
        if self.preferences.allowed_locations:
            size = int(matrix.max()) + 1 if matrix.size else 1
            for component, allowed in self.preferences.allowed_locations.items():
                column = column_of.get(component)
                if column is None:
                    continue
                permitted = np.zeros(size, dtype=bool)
                permitted[ON_PREM] = True
                for location in allowed:
                    if location < size:
                        permitted[location] = True
                placements = matrix[:, column]
                mask = ~permitted[placements]
                location_violated.append((component, allowed, mask, placements))
                infeasible |= mask
        on_prem = matrix == ON_PREM
        peaks: Dict[str, Tuple[float, np.ndarray]] = {}
        for resource, estimator_key in _ONPREM_RESOURCES.items():
            limit = self.preferences.onprem_limit(resource)
            if limit is None:
                continue
            peak = estimate.peak_matrix(estimator_key, on_prem, components)
            peaks[resource] = (limit, peak)
            infeasible |= peak > limit
        over_budget: Optional[np.ndarray] = None
        if self.preferences.budget_usd != float("inf"):
            if cost is None:
                cost = self.cost.qcost_batch(matrix, components)
            over_budget = cost > self.preferences.budget_usd
            infeasible |= over_budget
        return _ConstraintArrays(
            feasible=~infeasible,
            pin_violated=pin_violated,
            location_violated=location_violated,
            peaks=peaks,
            over_budget=over_budget,
        )

    def _materialize_violations(
        self, row: int, constraints: _ConstraintArrays, cost: float
    ) -> List[str]:
        """Violation strings of one infeasible plan, from the batched constraint data.

        Ordering and formatting match :meth:`_violations` exactly.
        """
        violations: List[str] = []
        for component, location, mask in constraints.pin_violated:
            if mask[row]:
                violations.append(
                    f"component {component} must stay at location {location}"
                )
        for component, allowed, mask, placements in constraints.location_violated:
            if mask[row]:
                violations.append(
                    f"component {component} may not run at location {int(placements[row])} "
                    f"(allowed locations: {list(allowed)})"
                )
        for resource, (limit, peak) in constraints.peaks.items():
            if peak[row] > limit:
                violations.append(
                    f"on-prem {resource} peak {peak[row]:.0f} exceeds limit {limit:.0f}"
                )
        if constraints.over_budget is not None and constraints.over_budget[row]:
            violations.append(
                f"cost {cost:.2f} USD exceeds budget "
                f"{self.preferences.budget_usd:.2f} USD"
            )
        return violations

    def _lower(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]],
    ) -> Tuple[np.ndarray, List[str]]:
        """Validate a vector batch and permute it into the canonical column order.

        Shared by :meth:`evaluate_vectors` and :meth:`feasible_mask` so permuted
        component orders hit the same caches (result cache, batched cost memo) and
        fail with the same explicit error on a mismatched component set.
        """
        components = self._columns(components)
        matrix = np.asarray(vectors, dtype=np.int64)
        if matrix.size == 0:
            matrix = matrix.reshape(0, len(components))
        if matrix.ndim != 2 or matrix.shape[1] != len(components):
            raise ValueError("vectors must form a (plans, len(components)) matrix")
        if tuple(components) != self._canonical:
            if set(components) != set(self._canonical):
                raise ValueError(
                    "vector components do not match the evaluator's component set"
                )
            column_of = {c: i for i, c in enumerate(components)}
            matrix = matrix[:, [column_of[c] for c in self._canonical]]
            components = list(self._canonical)
        return matrix, components

    # -- convenience -----------------------------------------------------------------------
    def _columns(self, components: Optional[Sequence[str]]) -> List[str]:
        if components is not None:
            return list(components)
        if self._component_order is not None:
            return list(self._component_order)
        return self.cost.baseline_plan.components

    @property
    def api_weights(self) -> Dict[str, float]:
        return dict(self._weights)

    def cache_size(self) -> int:
        """Distinct plans in the active result cache (the bound robust cache, if any)."""
        return len(self._active_cache())

    def evaluated_qualities(self) -> List[PlanQuality]:
        """Every distinct plan evaluated through this evaluator, in evaluation order.

        When scenarios are bound, these are the robust qualities of the bound
        (scenario set, aggregator) — each carrying its per-scenario breakdown."""
        return list(self._active_cache().values())
