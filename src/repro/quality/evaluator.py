"""Plan quality evaluation: the objective vector and feasibility check of Eq. 4.

:class:`QualityEvaluator` bundles the three quality models (performance, availability,
cost), the owner's preferences and the resource estimate into a single object that the
optimizers query: ``evaluate(plan)`` returns a :class:`PlanQuality` with the objective
values, feasibility and the list of violated constraints.  Evaluations are cached by
plan, which matters because genetic search revisits plans frequently; ``evaluate_batch``
evaluates a whole GA generation in one call (dedup → per-API plan projection → one
vectorized compiled replay per API), which is how the optimizers are expected to drive
it on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.placement import MigrationPlan
from ..cluster.topology import ON_PREM
from ..learning.estimator import ResourceEstimate
from .availability import ApiAvailabilityModel
from .cost import CloudCostModel
from .performance import ApiPerformanceModel
from .preferences import MigrationPreferences

__all__ = ["PlanQuality", "QualityEvaluator"]

#: Resources checked against the on-prem limits (metric name -> estimator resource key).
_ONPREM_RESOURCES = {
    "cpu_millicores": "cpu_millicores",
    "memory_mb": "memory_mb",
    "storage_gb": "storage_gb",
}


@dataclass(frozen=True)
class PlanQuality:
    """Quality of one migration plan."""

    plan: MigrationPlan
    perf: float
    avail: float
    cost: float
    feasible: bool
    violations: Tuple[str, ...] = ()

    def objectives(self) -> Tuple[float, float, float]:
        """(QPerf, QAvai, QCost) — all minimized."""
        return (self.perf, self.avail, self.cost)

    def dominates(self, other: "PlanQuality") -> bool:
        """Pareto dominance on the objective vector (feasibility handled upstream)."""
        mine, theirs = self.objectives(), other.objectives()
        return all(a <= b for a, b in zip(mine, theirs)) and any(
            a < b for a, b in zip(mine, theirs)
        )


class QualityEvaluator:
    """Evaluates plans against the three objectives and the constraints of Eq. 4."""

    def __init__(
        self,
        performance: ApiPerformanceModel,
        availability: ApiAvailabilityModel,
        cost: CloudCostModel,
        preferences: MigrationPreferences,
        estimate: ResourceEstimate,
        component_order: Optional[Sequence[str]] = None,
    ) -> None:
        self.performance = performance
        self.availability = availability
        self.cost = cost
        self.preferences = preferences
        self.estimate = estimate
        self._weights = preferences.api_weights(performance.apis)
        self._component_order = list(component_order) if component_order else None
        self._cache: Dict[Tuple[int, ...], PlanQuality] = {}
        self.evaluations = 0

    # -- evaluation ------------------------------------------------------------------------
    def evaluate(self, plan: MigrationPlan) -> PlanQuality:
        key = tuple(plan.to_vector())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        quality = self._evaluate_uncached(plan)
        self._cache[key] = quality
        return quality

    def evaluate_batch(self, plans: Sequence[MigrationPlan]) -> List[PlanQuality]:
        """Evaluate a whole generation in one call: dedup → project → batched replay.

        Distinct uncached plans are first primed through the performance model (one
        vectorized replay per API for all cache-missing delay signatures), then scored;
        duplicates and cache hits cost nothing.  Results and the ``evaluations``
        counter are identical to calling :meth:`evaluate` plan by plan.
        """
        keys = [tuple(plan.to_vector()) for plan in plans]
        missing: Dict[Tuple[int, ...], MigrationPlan] = {}
        for key, plan in zip(keys, plans):
            if key not in self._cache and key not in missing:
                missing[key] = plan
        if missing:
            self.performance.prime(list(missing.values()))
            for key, plan in missing.items():
                self._cache[key] = self._evaluate_uncached(plan)
        return [self._cache[key] for key in keys]

    def evaluate_many(self, plans: Sequence[MigrationPlan]) -> List[PlanQuality]:
        return self.evaluate_batch(plans)

    def _evaluate_uncached(self, plan: MigrationPlan) -> PlanQuality:
        self.evaluations += 1
        violations = self.constraint_violations(plan)
        return PlanQuality(
            plan=plan,
            perf=self.performance.qperf(plan, self._weights),
            avail=self.availability.qavai(plan, self._weights),
            cost=self.cost.qcost(plan),
            feasible=not violations,
            violations=tuple(violations),
        )

    def is_feasible(self, plan: MigrationPlan) -> bool:
        return not self.constraint_violations(plan)

    # -- constraints -----------------------------------------------------------------------
    def constraint_violations(self, plan: MigrationPlan) -> List[str]:
        """Human-readable descriptions of every violated constraint of Eq. 4."""
        violations: List[str] = []
        for component in self.preferences.pin_violations(plan):
            violations.append(
                f"component {component} must stay at location "
                f"{self.preferences.pinned_placement[component]}"
            )
        onprem_components = plan.components_at(ON_PREM)
        for resource, estimator_key in _ONPREM_RESOURCES.items():
            limit = self.preferences.onprem_limit(resource)
            if limit is None:
                continue
            peak = self.estimate.peak(estimator_key, onprem_components)
            if peak > limit:
                violations.append(
                    f"on-prem {resource} peak {peak:.0f} exceeds limit {limit:.0f}"
                )
        if self.preferences.budget_usd != float("inf"):
            cost = self.cost.qcost(plan)
            if cost > self.preferences.budget_usd:
                violations.append(
                    f"cost {cost:.2f} USD exceeds budget {self.preferences.budget_usd:.2f} USD"
                )
        return violations

    # -- convenience -----------------------------------------------------------------------
    @property
    def api_weights(self) -> Dict[str, float]:
        return dict(self._weights)

    def cache_size(self) -> int:
        return len(self._cache)

    def evaluated_qualities(self) -> List[PlanQuality]:
        """Every distinct plan evaluated through this evaluator, in evaluation order."""
        return list(self._cache.values())
