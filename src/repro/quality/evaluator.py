"""Plan quality evaluation: the K-objective execution engine behind the problem API.

:class:`QualityEvaluator` bundles the quality models (performance, availability,
cost), the owner's preferences, the resource estimate and a declarative
:class:`~repro.quality.problem.PlacementProblem` into a single object the optimizers
query: ``evaluate(plan)`` returns a :class:`PlanQuality` with the K objective values,
feasibility and the list of violated constraints.  Evaluations are cached by plan,
which matters because genetic search revisits plans frequently.

**Problem-driven scoring.**  The evaluator no longer hardcodes the paper's QPerf /
QAvai / QCost triple: it executes whatever
:class:`~repro.quality.problem.Objective` / :class:`~repro.quality.problem.Constraint`
plugins its problem declares.  The default problem is the paper's exact stack
(built-in plugins over the same batched kernels), byte-identical to the hardcoded
pipeline it replaced; appending plugins widens every result to K dimensions with zero
optimizer changes.

**Plan-matrix pipeline.**  The unit of batched evaluation is a ``(plans, components)``
integer location matrix, not a list of :class:`MigrationPlan` objects:
``evaluate_vectors`` (and ``evaluate_batch``, which lowers plan lists onto it) dedups
the generation into one matrix and scores all K objectives plus feasibility in a
handful of vectorized passes — one ``score_matrix`` call per objective (one compiled
replay per API for QPerf, one autoscaler pass per billable site for QCost, one
stateful-column pass per API for QAvai) and one boolean mask per constraint.  Each
plan's cost is computed exactly once per evaluation and reused by the budget check;
violation strings are materialized lazily, only for infeasible plans.  The per-plan
path (:meth:`evaluate`) is kept as the reference oracle: batched scores are bitwise
identical to it, and the ``evaluations`` counter advances the same way.

**Scenario axis.**  With a scenario set (explicit, bound, or declared on the
problem), every objective is scored once per compiled scenario into per-objective
``(S, P)`` tensors that collapse through the robust aggregator; a plan is feasible
iff it is feasible under every scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.placement import MigrationPlan
from ..learning.estimator import ResourceEstimate, ResourceEstimator
from ..telemetry.tracing import Trace
from .availability import ApiAvailabilityModel
from .cost import CloudCostModel
from .faults import FaultedStack
from .compiled import ShmArena
from .performance import ApiPerformanceModel
from .preferences import MigrationPreferences
from .problem import (
    DEFAULT_OBJECTIVE_NAMES,
    ONPREM_RESOURCES,
    ConstraintCheck,
    EvalContext,
    PlacementProblem,
)
from .scenarios import (
    RobustAggregator,
    ScenarioQuality,
    ScenarioSet,
    ScenarioSpec,
    WorstCase,
    scaled_footprint,
)

__all__ = ["PlanQuality", "QualityEvaluator"]

#: Backwards-compatible alias (the table moved to :mod:`repro.quality.problem`).
_ONPREM_RESOURCES = ONPREM_RESOURCES


@dataclass(frozen=True)
class PlanQuality:
    """Quality of one migration plan.

    ``values`` holds the K minimized objective values in the problem's column order
    and ``names`` their labels; the legacy ``perf`` / ``avail`` / ``cost`` fields are
    the paper-triple view of that vector (mapped by objective name, positional for
    problems that replace the built-ins).  Results constructed the historical way —
    just the triple, no ``values`` — behave identically: :meth:`objectives` falls
    back to ``(perf, avail, cost)``.

    Under scenario-robust evaluation the objective values are the *aggregated*
    ones (the :class:`~repro.quality.scenarios.RobustAggregator` output),
    ``feasible`` means feasible under **every** scenario, and ``scenarios`` carries
    the per-scenario breakdown; classic single-workload evaluation leaves
    ``scenarios`` empty.
    """

    plan: MigrationPlan
    perf: float
    avail: float
    cost: float
    feasible: bool
    violations: Tuple[str, ...] = ()
    scenarios: Tuple[ScenarioQuality, ...] = ()
    values: Optional[Tuple[float, ...]] = None
    names: Optional[Tuple[str, ...]] = None

    def objectives(self) -> Tuple[float, ...]:
        """The K-vector of minimized objective values (the paper's triple by default)."""
        if self.values is not None:
            return self.values
        return (self.perf, self.avail, self.cost)

    def objective_names(self) -> Tuple[str, ...]:
        return self.names if self.names is not None else DEFAULT_OBJECTIVE_NAMES

    def value(self, name: str) -> float:
        """One objective value by name (e.g. ``quality.value("egress_gb")``)."""
        names = self.objective_names()
        try:
            return self.objectives()[names.index(name)]
        except ValueError:
            raise KeyError(f"no objective named {name!r} in {names}") from None

    def dominates(self, other: "PlanQuality") -> bool:
        """Pareto dominance on the objective vector (feasibility handled upstream)."""
        mine, theirs = self.objectives(), other.objectives()
        return all(a <= b for a, b in zip(mine, theirs)) and any(
            a < b for a, b in zip(mine, theirs)
        )


@dataclass
class _ScenarioContext:
    """One compiled scenario: the models/artifacts the quality stack bakes in.

    ``performance`` is a :meth:`~repro.quality.performance.ApiPerformanceModel.scenario_view`
    (the base model itself for payload-neutral scenarios), ``cost`` a derived
    :class:`~repro.quality.cost.CloudCostModel` over the scenario's resource estimate
    and payload-scaled footprint, ``estimate`` feeds the on-prem peak constraint, and
    ``weights`` is the scenario's τ_A trace-weight vector for QPerf/QAvai.

    ``availability`` and ``preferences`` are the scenario-resolved views of the
    remaining two artifact families — identical to the evaluator's base objects for
    fault-free scenarios, derived (outage-weighted availability, evacuated/limited
    preferences) when the spec declares :attr:`~repro.quality.scenarios.ScenarioSpec.faults`.
    """

    spec: ScenarioSpec
    performance: ApiPerformanceModel
    cost: CloudCostModel
    estimate: ResourceEstimate
    weights: Dict[str, float]
    availability: ApiAvailabilityModel
    preferences: MigrationPreferences


class QualityEvaluator:
    """Executes a :class:`~repro.quality.problem.PlacementProblem` over plan matrices.

    Without an explicit ``problem`` this is the paper's Eq. 4 evaluator: the three
    quality objectives under the pin / whitelist / on-prem-peak / budget constraints.
    """

    def __init__(
        self,
        performance: ApiPerformanceModel,
        availability: ApiAvailabilityModel,
        cost: CloudCostModel,
        preferences: MigrationPreferences,
        estimate: ResourceEstimate,
        component_order: Optional[Sequence[str]] = None,
        estimator: Optional[ResourceEstimator] = None,
        problem: Optional[PlacementProblem] = None,
    ) -> None:
        """``estimator`` (the fitted resource estimator the base ``estimate`` came
        from) is only needed for scenario-robust evaluation of scenarios that change
        request rates — it re-predicts the per-component usage series under each
        scenario's per-API rate series.

        ``problem`` declares the objective/constraint stack (default: the paper's
        three objectives and Eq. 4 constraints).  A problem with its own
        ``preferences`` overrides the ``preferences`` argument, and a problem with a
        scenario set arrives pre-bound (every entry point evaluates robustly)."""
        self.performance = performance
        self.availability = availability
        self.cost = cost
        self.problem = problem if problem is not None else PlacementProblem.default()
        if self.problem.preferences is not None:
            preferences = self.problem.preferences
        self.preferences = preferences
        self.estimate = estimate
        self.estimator = estimator
        self._weights = preferences.api_weights(performance.apis)
        self._component_order = list(component_order) if component_order else None
        self._cache: Dict[Tuple[int, ...], PlanQuality] = {}
        #: Canonical column order of the result cache: every key is the plan's
        #: location tuple in THIS order, so plans expressed under a permuted
        #: component order never collide.
        self._canonical: Tuple[str, ...] = tuple(self._columns(None))
        #: The paper-triple layout: exactly (qperf, qavai, qcost) in columns 0-2.
        #: Results then leave PlanQuality.values/names at their defaults (the
        #: triple fields carry the whole vector), matching the pre-problem results
        #: field-for-field and skipping two tuple builds per evaluated plan.
        self._triple_layout = (
            self.problem.objective_names == DEFAULT_OBJECTIVE_NAMES
        )
        self.evaluations = 0
        #: Scenario evaluations: one per (distinct plan, scenario) pair scored by the
        #: robust path (``evaluations`` counts plans, matching the paper's budget).
        self.scenario_evaluations = 0
        # Compiled scenario contexts, keyed by the spec's canonical identity.
        self._scenario_contexts: Dict[Tuple, _ScenarioContext] = {}
        # Name-independent compiled scenario state, keyed by the spec's
        # identity_key(): the adversary probes workload shapes under throwaway
        # names ("adversary-3", "drift-refresh"), so recompiling per name would
        # rebuild the same estimate/footprint/view/cost stack over and over.
        self._scenario_states: Dict[Tuple, _ScenarioContext] = {}
        # Robust result caches, one per (scenario set, aggregator) identity.
        self._robust_caches: Dict[Tuple, Dict[Tuple[int, ...], PlanQuality]] = {}
        # Active binding: when set, every entry point (evaluate/evaluate_batch/
        # evaluate_vectors/is_feasible/feasible_mask) defaults to robust evaluation
        # over this scenario set — how the optimizers become scenario-robust for free.
        self._bound: Optional[Tuple[ScenarioSet, RobustAggregator]] = None
        # Shared-memory arena backing the compiled replay state (see share_memory).
        self._shm_arena: Optional[ShmArena] = None
        if self.problem.scenarios is not None:
            self.bind_scenarios(self.problem.scenarios, self.problem.aggregator)

    def _key(self, plan: MigrationPlan) -> Tuple[int, ...]:
        """Cache key of one plan: its locations in the canonical component order."""
        if tuple(plan.components) == self._canonical:
            return tuple(plan.to_vector())
        return tuple(plan[c] for c in self._canonical)

    # -- problem introspection -------------------------------------------------------------
    @property
    def n_objectives(self) -> int:
        """K — the dimensionality of every result's objective vector."""
        return self.problem.K

    @property
    def objective_names(self) -> Tuple[str, ...]:
        return self.problem.objective_names

    # -- scenario binding ------------------------------------------------------------------
    def bind_scenarios(
        self,
        scenarios: "ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]",
        aggregator: Optional[RobustAggregator] = None,
    ) -> "QualityEvaluator":
        """Make every entry point evaluate robustly over ``scenarios`` by default.

        After binding, ``evaluate``/``evaluate_batch``/``evaluate_vectors``/
        ``is_feasible``/``feasible_mask`` (and therefore AtlasGA, NSGA-II, random
        search and the DRL reward loop, which only speak those) score each plan over
        the whole scenario set and collapse the objectives with ``aggregator``
        (default :class:`~repro.quality.scenarios.WorstCase`).  The result cache,
        ``cache_size`` and ``evaluated_qualities`` switch to the bound robust cache.
        """
        self._bound = (ScenarioSet.coerce(scenarios), aggregator or WorstCase())
        return self

    def unbind_scenarios(self) -> None:
        """Return to classic single-workload evaluation."""
        self._bound = None

    # -- shared-memory export --------------------------------------------------------------
    def share_memory(
        self,
        arena: Optional["ShmArena"] = None,
        n_locations: Optional[int] = None,
    ) -> "ShmArena":
        """Export the compiled replay state into shared memory, for forked workers.

        Moves the base performance model's compiled trace arrays and Δ lookup
        tables — plus those of every bound scenario's view — into ``arena``-backed
        shared memory, so worker processes forked afterwards score plan matrices
        against physically shared read-only pages instead of copy-on-write
        duplicates.  Results are bitwise identical to the private-memory path.
        Returns the arena (creating one on first use and reusing it after); the
        evaluator owns it for its lifetime.
        """
        if arena is None:
            arena = self._shm_arena if self._shm_arena is not None else ShmArena()
        if n_locations is None:
            locations = self.performance.network.locations()
            n_locations = (max(locations) + 1) if locations else 1
        self.performance.share_memory(arena, n_locations)
        if self._bound is not None:
            for spec in self._bound[0]:
                context = self._scenario_context(spec)
                context.performance.share_memory(arena, n_locations)
        self._shm_arena = arena
        return arena

    @property
    def bound_scenarios(self) -> Optional[ScenarioSet]:
        return self._bound[0] if self._bound is not None else None

    @property
    def bound_aggregator(self) -> Optional[RobustAggregator]:
        return self._bound[1] if self._bound is not None else None

    def _resolve_scenarios(
        self,
        scenarios: "Optional[ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]]",
        aggregator: Optional[RobustAggregator],
    ) -> Tuple[Optional[ScenarioSet], Optional[RobustAggregator]]:
        """Explicit arguments win; otherwise the bound set; otherwise the legacy path.

        An explicit scenario set gets the documented :class:`WorstCase` default —
        never the bound aggregator, which belongs to the bound set only."""
        if scenarios is not None:
            return ScenarioSet.coerce(scenarios), aggregator or WorstCase()
        if self._bound is not None:
            return self._bound[0], aggregator or self._bound[1]
        return None, None

    def _robust_cache(
        self, scenario_set: ScenarioSet, aggregator: RobustAggregator
    ) -> Dict[Tuple[int, ...], PlanQuality]:
        return self._robust_caches.setdefault(
            (scenario_set.key(), aggregator.key()), {}
        )

    def _active_cache(self) -> Dict[Tuple[int, ...], PlanQuality]:
        if self._bound is not None:
            return self._robust_cache(*self._bound)
        return self._cache

    # -- contexts --------------------------------------------------------------------------
    def _matrix_context(
        self,
        matrix: np.ndarray,
        components: Sequence[str],
        plans: Optional[Sequence[MigrationPlan]] = None,
    ) -> EvalContext:
        """Classic (single-workload) context over the evaluator's base models."""
        return EvalContext(
            matrix=matrix,
            components=list(components),
            performance=self.performance,
            availability=self.availability,
            cost=self.cost,
            estimate=self.estimate,
            weights=self._weights,
            preferences=self.preferences,
            evaluator=self,
            plans=plans,
        )

    def _plan_context(self, plan: MigrationPlan) -> EvalContext:
        """Scalar-oracle context: a one-row matrix plus the plan itself."""
        matrix = np.asarray([list(self._key(plan))], dtype=np.int64)
        return self._matrix_context(matrix, list(self._canonical), plans=[plan])

    # -- evaluation ------------------------------------------------------------------------
    def evaluate(self, plan: MigrationPlan) -> PlanQuality:
        if self._bound is not None:
            return self.evaluate_batch([plan])[0]
        key = self._key(plan)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        quality = self._evaluate_uncached(plan)
        self._cache[key] = quality
        return quality

    def evaluate_batch(
        self,
        plans: Sequence[MigrationPlan],
        scenarios: "Optional[ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]]" = None,
        aggregator: Optional[RobustAggregator] = None,
    ) -> List[PlanQuality]:
        """Evaluate a whole generation in one call by lowering it onto a plan matrix.

        Distinct uncached plans are collected into one ``(plans, components)`` matrix
        and scored by :meth:`evaluate_vectors`'s batched pipeline; duplicates and
        cache hits cost nothing.  Results and the ``evaluations`` counter are
        identical to calling :meth:`evaluate` plan by plan.  With ``scenarios`` (or a
        bound scenario set), plans are scored robustly over the scenario axis.
        """
        scenario_set, aggregator = self._resolve_scenarios(scenarios, aggregator)
        if scenario_set is not None:
            keys = [self._key(plan) for plan in plans]
            cache = self._robust_cache(scenario_set, aggregator)
            missing: Dict[Tuple[int, ...], MigrationPlan] = {}
            for key, plan in zip(keys, plans):
                if key not in cache and key not in missing:
                    missing[key] = plan
            if missing:
                # Keys are already canonical-order vectors, so mixed component orders
                # lower onto one matrix for free.
                matrix = np.asarray(list(missing), dtype=np.int64)
                qualities = self._score_matrix_scenarios(
                    matrix,
                    list(self._canonical),
                    list(missing.values()),
                    scenario_set,
                    aggregator,
                )
                for key, quality in zip(missing, qualities):
                    cache[key] = quality
            return [cache[key] for key in keys]
        keys = [self._key(plan) for plan in plans]
        missing = {}
        for key, plan in zip(keys, plans):
            if key not in self._cache and key not in missing:
                missing[key] = plan
        if missing:
            plans_list = list(missing.values())
            orders = {tuple(plan.components) for plan in plans_list}
            if len(orders) == 1:
                matrix = np.asarray([plan.to_vector() for plan in plans_list])
                components = plans_list[0].components
                for key, quality in zip(
                    missing, self._score_matrix(matrix, components, plans_list)
                ):
                    self._cache[key] = quality
            else:
                # Mixed component orders cannot share one matrix; score through the
                # per-plan reference path.
                self.performance.prime(plans_list)
                for key, plan in missing.items():
                    self._cache[key] = self._evaluate_uncached(plan)
        return [self._cache[key] for key in keys]

    def evaluate_vectors(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]] = None,
        scenarios: "Optional[ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]]" = None,
        aggregator: Optional[RobustAggregator] = None,
    ) -> List[PlanQuality]:
        """Evaluate location vectors directly — the optimizers' native entry point.

        ``vectors`` is anything convertible to a ``(plans, len(components))`` integer
        matrix; ``components`` names the columns (defaults to the evaluator's
        component order).  :class:`MigrationPlan` objects are constructed only for
        distinct uncached rows, at the :class:`PlanQuality` API boundary.

        ``scenarios`` switches on robust evaluation: every distinct plan is scored
        once per scenario (per-objective S×P tensors built with shared dedup, shared
        compiled replays and per-scenario compiled artifacts) and the tensors are
        collapsed by ``aggregator`` into the scalar objectives; the per-scenario
        breakdown rides along on :attr:`PlanQuality.scenarios`.  With ``scenarios=None``
        and no bound set, this is byte-identical to the classic single-workload path.
        """
        scenario_set, aggregator = self._resolve_scenarios(scenarios, aggregator)
        matrix, components = self._lower(vectors, components)
        keys = [tuple(row) for row in matrix.tolist()]
        cache = (
            self._robust_cache(scenario_set, aggregator)
            if scenario_set is not None
            else self._cache
        )
        missing: Dict[Tuple[int, ...], int] = {}
        for index, key in enumerate(keys):
            if key not in cache and key not in missing:
                missing[key] = index
        if missing:
            rows = matrix[list(missing.values())]
            plans = [
                MigrationPlan.from_vector(components, list(key)) for key in missing
            ]
            if scenario_set is not None:
                qualities = self._score_matrix_scenarios(
                    rows, components, plans, scenario_set, aggregator
                )
            else:
                qualities = self._score_matrix(rows, components, plans)
            for key, quality in zip(missing, qualities):
                cache[key] = quality
        return [cache[key] for key in keys]

    def evaluate_many(self, plans: Sequence[MigrationPlan]) -> List[PlanQuality]:
        return self.evaluate_batch(plans)

    # -- the K-objective execution engine --------------------------------------------------
    def _score_matrix(
        self,
        matrix: np.ndarray,
        components: Sequence[str],
        plans: Sequence[MigrationPlan],
    ) -> List[PlanQuality]:
        """Score distinct, uncached plans in a handful of vectorized passes.

        One ``score_matrix`` call per objective, one ``check`` per constraint — the
        K objective vectors, the feasibility mask and the numbers behind the
        violation strings are each computed once for the whole matrix; results are
        bitwise identical to the per-plan reference path.
        """
        ctx = self._matrix_context(matrix, components)
        scores = [
            objective.minimized(
                np.asarray(objective.score_matrix(ctx), dtype=np.float64)
            )
            for objective in self.problem.objectives
        ]
        checks = [constraint.check(ctx) for constraint in self.problem.constraints]
        feasible = self._feasible_from_checks(checks, matrix.shape[0])
        legacy_triple = self.problem.legacy_triple
        # Lower the score columns and mask to Python scalars once: the per-row loop
        # below runs for every distinct plan of a generation, so per-element
        # ndarray indexing would dominate the small-K dispatch budget.
        columns = [score.tolist() for score in scores]
        feasible_rows = feasible.tolist()
        qualities: List[PlanQuality] = []
        if self._triple_layout:
            # The paper triple: perf/avail/cost ARE the whole vector, so the
            # values/names fields stay at their defaults (objectives() falls back
            # to the triple) — construction is exactly the pre-problem pipeline's.
            perf_column, avail_column, cost_column = columns
            for row, plan in enumerate(plans):
                self.evaluations += 1
                ok = feasible_rows[row]
                violations: Tuple[str, ...] = ()
                if not ok:
                    violations = tuple(self._materialize_row(checks, row))
                qualities.append(
                    PlanQuality(
                        plan=plan,
                        perf=perf_column[row],
                        avail=avail_column[row],
                        cost=cost_column[row],
                        feasible=ok,
                        violations=violations,
                    )
                )
            return qualities
        names = self.problem.objective_names
        for row, plan in enumerate(plans):
            self.evaluations += 1
            ok = feasible_rows[row]
            violations: Tuple[str, ...] = ()
            if not ok:
                violations = tuple(self._materialize_row(checks, row))
            values = tuple(column[row] for column in columns)
            perf, avail, cost = legacy_triple(values)
            qualities.append(
                PlanQuality(
                    plan=plan,
                    perf=perf,
                    avail=avail,
                    cost=cost,
                    feasible=ok,
                    violations=violations,
                    values=values,
                    names=names,
                )
            )
        return qualities

    @staticmethod
    def _feasible_from_checks(
        checks: Sequence[ConstraintCheck], n_plans: int
    ) -> np.ndarray:
        violated = np.zeros(n_plans, dtype=bool)
        for check in checks:
            violated |= check.violated
        return ~violated

    @staticmethod
    def _materialize_row(checks: Sequence[ConstraintCheck], row: int) -> List[str]:
        """Violation strings of one infeasible plan, in constraint-stack order."""
        violations: List[str] = []
        for check in checks:
            if check.violated[row]:
                violations.extend(check.materialize(row))
        return violations

    # -- scenario compilation / robust scoring ----------------------------------------------
    def _scenario_context(self, spec: ScenarioSpec) -> _ScenarioContext:
        """Compile one scenario into the artifacts the models bake in, cached by spec.

        The baseline spec *is* the base stack (same model objects), so evaluating the
        default scenario robustly shares every cache with — and scores bitwise equal
        to — the classic path.  Non-baseline specs derive: a scenario resource
        estimate (re-predicted per-API rate series), a payload-scaled footprint, a
        performance scenario view (shared compiled traces + replay caches) and a
        scenario τ_A weight vector.  Specs with faults additionally derive the
        network/availability/catalog/preference artifacts through
        :class:`~repro.quality.faults.FaultedStack`.
        """
        key = spec.compile_key()
        context = self._scenario_contexts.get(key)
        if context is None:
            # Specs that differ only in name compile to the same artifacts
            # (identity_key strips the name): reuse the compiled state and only
            # rewrap the spec — names flow into violation prefixes and result
            # labels, never into the models.
            state = self._scenario_states.get(spec.identity_key())
            if state is not None:
                context = replace(state, spec=spec)
                self._scenario_contexts[key] = context
                return context
            self._validate_spec_apis(spec)
            if spec.is_baseline:
                context = _ScenarioContext(
                    spec=spec,
                    performance=self.performance,
                    cost=self.cost,
                    estimate=self.estimate,
                    weights=self._weights,
                    availability=self.availability,
                    preferences=self.preferences,
                )
            else:
                estimate = self._scenario_estimate(spec)
                availability = self.availability
                preferences = self.preferences
                network = None
                catalogs = None
                if spec.faults:
                    stack = FaultedStack(
                        network=self.performance.network,
                        availability=self.availability,
                        catalogs=dict(self.cost.catalogs),
                        preferences=self.preferences,
                        locations=tuple(self.performance.network.locations()),
                    )
                    for fault in spec.faults:
                        fault.apply(stack)
                    if stack.network is not self.performance.network:
                        network = stack.network
                    availability = stack.availability
                    preferences = stack.preferences
                    if stack.catalogs_changed:
                        catalogs = stack.catalogs
                performance = self.performance.scenario_view(
                    scaled_footprint(self.performance.footprint, spec),
                    # A faulted network can shift every API's Δ tables, so the
                    # changed-API row reuse only applies on the base network.
                    changed_apis=(
                        spec.changed_payload_apis() if network is None else None
                    ),
                    network=network,
                )
                cost = self.cost.derive(
                    estimate=estimate,
                    footprint=scaled_footprint(self.cost.footprint, spec),
                    catalogs=catalogs,
                )
                weights = {
                    api: weight * spec.mix_factor(api)
                    for api, weight in self._weights.items()
                }
                context = _ScenarioContext(
                    spec=spec,
                    performance=performance,
                    cost=cost,
                    estimate=estimate,
                    weights=weights,
                    availability=availability,
                    preferences=preferences,
                )
            self._scenario_contexts[key] = context
            self._scenario_states[spec.identity_key()] = context
        return context

    def _validate_spec_apis(self, spec: ScenarioSpec) -> None:
        """Reject scenario factor maps naming APIs the evaluator does not know.

        A typo'd API name in ``api_rate_factors`` / ``payload_factors`` would
        otherwise silently no-op (the factors are looked up per known API), making
        the scenario weaker than the author intended.
        """
        referenced = set(spec.api_rate_factors) | set(spec.payload_factors)
        if not referenced:
            return
        known = set(self.performance.apis) | set(self.estimate.api_rates)
        unknown = sorted(referenced - known)
        if unknown:
            raise ValueError(
                f"scenario {spec.name!r} references unknown APIs {unknown}; "
                f"known APIs are {sorted(known)}"
            )

    def _scenario_eval_context(
        self,
        context: _ScenarioContext,
        matrix: np.ndarray,
        components: Sequence[str],
        shared: Dict,
        views: Optional[List[ApiPerformanceModel]] = None,
    ) -> EvalContext:
        """Scenario-resolved evaluation context for one compiled scenario."""
        return EvalContext(
            matrix=matrix,
            components=list(components),
            performance=context.performance,
            availability=context.availability,
            cost=context.cost,
            estimate=context.estimate,
            weights=context.weights,
            preferences=context.preferences,
            evaluator=self,
            scenario=context.spec,
            base_performance=self.performance,
            scenario_performances=views,
            shared=shared,
        )

    def _scenario_estimate(self, spec: ScenarioSpec) -> ResourceEstimate:
        """The scenario's expected resource-usage series (per-API rate compilation)."""
        if not spec.changes_rates:
            return self.estimate
        if self.estimator is None:
            raise ValueError(
                f"scenario {spec.name!r} changes request rates; construct the "
                "evaluator with estimator=... (the fitted ResourceEstimator) to "
                "compile scenario resource estimates"
            )
        if not self.estimate.api_rates:
            raise ValueError(
                "the base resource estimate has no per-API rate series to scale"
            )
        rates = {
            api: [value * spec.rate_factor(api) for value in series]
            for api, series in self.estimate.api_rates.items()
        }
        return self.estimator.predict(rates, step_ms=self.estimate.step_ms)

    def _score_matrix_scenarios(
        self,
        matrix: np.ndarray,
        components: Sequence[str],
        plans: Sequence[MigrationPlan],
        scenario_set: ScenarioSet,
        aggregator: RobustAggregator,
    ) -> List[PlanQuality]:
        """Score distinct plans over the whole scenario axis in S batched passes.

        Builds K per-objective ``(S, P)`` tensors (one set of vectorized passes per
        compiled scenario, all sharing the plan-level dedup and — through the QPerf
        plugin's impact cache on the call-wide ``shared`` dict — the performance
        model's compiled trace sets / replay caches), collapses each with
        ``aggregator`` and attaches the per-scenario breakdown.  A plan is feasible
        iff it is feasible under every scenario; each infeasible scenario's violation
        strings are materialized lazily and prefixed with the scenario name when
        S > 1.
        """
        contexts = [self._scenario_context(spec) for spec in scenario_set]
        objectives = self.problem.objectives
        n_objectives = len(objectives)
        n_scenarios, n_plans = len(contexts), matrix.shape[0]
        scores = [
            np.empty((n_scenarios, n_plans), dtype=np.float64)
            for _ in range(n_objectives)
        ]
        checks_by_scenario: List[List[ConstraintCheck]] = []
        # The call-wide shared dict: the QPerf plugin keeps its per-view impact
        # matrices here, so payload-neutral scenarios share one Δ-row gather/replay
        # per distinct performance view instead of one per scenario.
        shared: Dict = {}
        views = [context.performance for context in contexts]
        for index, context in enumerate(contexts):
            ctx = self._scenario_eval_context(
                context, matrix, components, shared, views
            )
            for k, objective in enumerate(objectives):
                scores[k][index] = objective.minimized(
                    np.asarray(objective.score_matrix(ctx), dtype=np.float64)
                )
            checks_by_scenario.append(
                [constraint.check(ctx) for constraint in self.problem.constraints]
            )
        weights = scenario_set.weight_array()
        aggregated = [
            aggregator.combine(scores[k], weights) for k in range(n_objectives)
        ]
        feasible_by_scenario = [
            self._feasible_from_checks(checks, n_plans)
            for checks in checks_by_scenario
        ]
        feasible_all = feasible_by_scenario[0].copy()
        for mask in feasible_by_scenario[1:]:
            feasible_all &= mask
        triple = self._triple_layout
        names = None if triple else self.problem.objective_names
        qualities: List[PlanQuality] = []
        for row, plan in enumerate(plans):
            self.evaluations += 1
            self.scenario_evaluations += n_scenarios
            per_scenario: List[ScenarioQuality] = []
            violations: List[str] = []
            for index, context in enumerate(contexts):
                ok = bool(feasible_by_scenario[index][row])
                scenario_violations: Tuple[str, ...] = ()
                if not ok:
                    scenario_violations = tuple(
                        self._materialize_row(checks_by_scenario[index], row)
                    )
                    if n_scenarios == 1:
                        violations.extend(scenario_violations)
                    else:
                        violations.extend(
                            f"[{context.spec.name}] {violation}"
                            for violation in scenario_violations
                        )
                scenario_values = tuple(
                    float(scores[k][index, row]) for k in range(n_objectives)
                )
                s_perf, s_avail, s_cost = self.problem.legacy_triple(scenario_values)
                per_scenario.append(
                    ScenarioQuality(
                        scenario=context.spec.name,
                        perf=s_perf,
                        avail=s_avail,
                        cost=s_cost,
                        feasible=ok,
                        violations=scenario_violations,
                        values=None if triple else scenario_values,
                        names=names,
                    )
                )
            values = tuple(float(aggregated[k][row]) for k in range(n_objectives))
            perf, avail, cost = self.problem.legacy_triple(values)
            qualities.append(
                PlanQuality(
                    plan=plan,
                    perf=perf,
                    avail=avail,
                    cost=cost,
                    feasible=bool(feasible_all[row]),
                    violations=tuple(violations),
                    scenarios=tuple(per_scenario),
                    values=None if triple else values,
                    names=names,
                )
            )
        return qualities

    def qcost_vectors(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Per-plan cost of a location matrix, scenario-aggregated when bound.

        Unbound this is exactly ``cost.qcost_batch`` after canonical lowering (the
        affinity-NSGA-II baseline's cost objective); bound, each plan's per-scenario
        costs collapse through the bound aggregator — the single-plan baselines
        become scenario-robust through the same door as the evaluators.
        """
        matrix, components = self._lower(vectors, components)
        if self._bound is None:
            return self.cost.qcost_batch(matrix, components)
        scenario_set, aggregator = self._bound
        costs = np.stack(
            [
                self._scenario_context(spec).cost.qcost_batch(matrix, components)
                for spec in scenario_set
            ]
        )
        return aggregator.combine(costs, scenario_set.weight_array())

    def invalidate_for_scenario(
        self,
        scenario: "Optional[ScenarioSpec | str]" = None,
        apis: Optional[Sequence[str]] = None,
    ) -> None:
        """Drop compiled scenario state so the next evaluation recompiles it.

        ``scenario`` (a spec or name) drops that scenario's compiled context and
        every robust cache that includes it; ``None`` drops all contexts and robust
        caches.  ``apis`` additionally invalidates those APIs' compiled projection /
        replay caches in the performance model *and* the single-workload result cache
        (their QPerf contributions are stale) — the drift monitor's refresh hook.
        """
        if scenario is None:
            self._scenario_contexts.clear()
            self._scenario_states.clear()
            self._robust_caches.clear()
        else:
            name = scenario.name if isinstance(scenario, ScenarioSpec) else scenario
            for key in [
                key
                for key, context in self._scenario_contexts.items()
                if context.spec.name == name
            ]:
                # Drop the shared identity state too: a by-name invalidation must
                # force a genuine recompile, not an identity-cache hit.
                self._scenario_states.pop(
                    self._scenario_contexts[key].spec.identity_key(), None
                )
                del self._scenario_contexts[key]
            for cache_key in [
                cache_key
                for cache_key in self._robust_caches
                if any(spec_key[0] == name for spec_key in cache_key[0])
            ]:
                del self._robust_caches[cache_key]
        if apis is not None:
            self.performance.invalidate_for_scenario(apis)
            self._cache.clear()
            self._robust_caches.clear()
            self._scenario_contexts.clear()
            self._scenario_states.clear()

    def splice(self, new_traces_by_api: Mapping[str, Sequence[Trace]]) -> None:
        """Incremental drift refresh: install re-profiled traces for the named APIs.

        The O(K) counterpart of ``invalidate_for_scenario(apis=...)``: the
        performance model splices only the named APIs' compiled state (see
        :meth:`~repro.quality.performance.ApiPerformanceModel.splice`), stale
        results are dropped, but the compiled *scenario* contexts survive — a
        scenario's estimate/footprint/cost/weights never depend on trace contents,
        and its performance view's per-API caches were purged family-wide by the
        model splice — so a K-of-N API refresh pays K trace compiles instead of a
        full evaluator rebuild, while scoring bitwise-identical to one.
        """
        self.performance.splice(new_traces_by_api)
        self._cache.clear()
        self._robust_caches.clear()

    def _evaluate_uncached(self, plan: MigrationPlan) -> PlanQuality:
        """Per-plan reference oracle; the batched pipeline must match it bitwise.

        Objectives score through their scalar kernels (``score_plan``), constraints
        through ``violations_plan`` — the built-in plugins run the exact historical
        per-plan code paths (memoized ``qcost``, per-projection QPerf/QAvai caches).
        """
        self.evaluations += 1
        ctx = self._plan_context(plan)
        values: List[float] = []
        for objective in self.problem.objectives:
            score = objective.score_plan(ctx, plan)
            values.append(float(-score if objective.sense == "max" else score))
        violations: List[str] = []
        for constraint in self.problem.constraints:
            violations.extend(constraint.violations_plan(ctx, plan))
        values_tuple = tuple(values)
        perf, avail, cost = self.problem.legacy_triple(values_tuple)
        return PlanQuality(
            plan=plan,
            perf=perf,
            avail=avail,
            cost=cost,
            feasible=not violations,
            violations=tuple(violations),
            values=None if self._triple_layout else values_tuple,
            names=None if self._triple_layout else self.problem.objective_names,
        )

    def is_feasible(self, plan: MigrationPlan) -> bool:
        if self._bound is not None:
            # Robust feasibility: the plan must satisfy Eq. 4 under every scenario.
            return bool(
                self.feasible_mask([list(self._key(plan))], list(self._canonical))[0]
            )
        return not self.constraint_violations(plan)

    # -- constraints -----------------------------------------------------------------------
    def constraint_violations(self, plan: MigrationPlan) -> List[str]:
        """Human-readable descriptions of every violated constraint of the problem."""
        ctx = self._plan_context(plan)
        violations: List[str] = []
        for constraint in self.problem.constraints:
            violations.extend(constraint.violations_plan(ctx, plan))
        return violations

    def feasible_mask(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]] = None,
        scenarios: "Optional[ScenarioSet | ScenarioSpec | Sequence[ScenarioSpec]]" = None,
    ) -> np.ndarray:
        """Per-plan feasibility of a location matrix — the batched ``is_feasible``.

        With ``scenarios`` (or a bound scenario set) a plan is feasible only if it
        satisfies the constraints under **every** scenario; per-scenario costs hit
        the scenario cost models' row memos, so a later robust evaluation of the
        same plans does not pay the cost passes again.
        """
        scenario_set, _aggregator = self._resolve_scenarios(scenarios, None)
        matrix, components = self._lower(vectors, components)
        if scenario_set is not None:
            mask: Optional[np.ndarray] = None
            for spec in scenario_set:
                context = self._scenario_context(spec)
                ctx = self._scenario_eval_context(context, matrix, components, {})
                checks = [
                    constraint.check(ctx) for constraint in self.problem.constraints
                ]
                feasible = self._feasible_from_checks(checks, matrix.shape[0])
                mask = feasible if mask is None else (mask & feasible)
            return mask
        ctx = self._matrix_context(matrix, components)
        checks = [constraint.check(ctx) for constraint in self.problem.constraints]
        return self._feasible_from_checks(checks, matrix.shape[0])

    def _lower(
        self,
        vectors: Sequence[Sequence[int]],
        components: Optional[Sequence[str]],
    ) -> Tuple[np.ndarray, List[str]]:
        """Validate a vector batch and permute it into the canonical column order.

        Shared by :meth:`evaluate_vectors` and :meth:`feasible_mask` so permuted
        component orders hit the same caches (result cache, batched cost memo) and
        fail with the same explicit error on a mismatched component set.
        """
        components = self._columns(components)
        matrix = np.asarray(vectors, dtype=np.int64)
        if matrix.size == 0:
            matrix = matrix.reshape(0, len(components))
        if matrix.ndim != 2 or matrix.shape[1] != len(components):
            raise ValueError("vectors must form a (plans, len(components)) matrix")
        if tuple(components) != self._canonical:
            if set(components) != set(self._canonical):
                raise ValueError(
                    "vector components do not match the evaluator's component set"
                )
            column_of = {c: i for i, c in enumerate(components)}
            matrix = matrix[:, [column_of[c] for c in self._canonical]]
            components = list(self._canonical)
        return matrix, components

    # -- convenience -----------------------------------------------------------------------
    def _columns(self, components: Optional[Sequence[str]]) -> List[str]:
        if components is not None:
            return list(components)
        if self._component_order is not None:
            return list(self._component_order)
        return self.cost.baseline_plan.components

    @property
    def api_weights(self) -> Dict[str, float]:
        return dict(self._weights)

    def cache_size(self) -> int:
        """Distinct plans in the active result cache (the bound robust cache, if any)."""
        return len(self._active_cache())

    def evaluated_qualities(self) -> List[PlanQuality]:
        """Every distinct plan evaluated through this evaluator, in evaluation order.

        When scenarios are bound, these are the robust qualities of the bound
        (scenario set, aggregator) — each carrying its per-scenario breakdown."""
        return list(self._active_cache().values())
