"""Adversarial worst-case certification of a migration plan.

A robust recommendation is only as strong as the scenario set it was optimized
over.  :class:`ScenarioAdversary` plays the other side: given one concrete plan, it
searches the scenario space — workload knobs (rate/payload scale) *and* fault knobs
(:mod:`repro.quality.faults`) within declared :class:`AdversaryBounds` — for the
spec that maximizes the plan's aggregated regret against its fault-free baseline.
The search is a deterministic coordinate descent seeded by the named stress
families of :class:`~repro.quality.scenario_factory.ScenarioFactory` (every family
is evaluated first, so the certified worst case can never be weaker than any
enumerated family), followed by seeded random exploration while evaluation budget
remains — a small (μ+1)-style refinement rather than a full GA.

The result is a :class:`RobustnessCertificate`: the worst-case spec found, the
per-objective regret it inflicts, whether the plan stays feasible under it, and
the budget spent — the artifact :meth:`Atlas.recommend(certify=...)
<repro.recommend.advisor.Atlas.recommend>` attaches to its recommendation and the
drift monitor's escalation path refreshes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.placement import MigrationPlan
from ..cluster.topology import ON_PREM
from .evaluator import PlanQuality, QualityEvaluator
from .faults import CapacityCut, LinkDegradation, LocationOutage, PriceShock
from .scenario_factory import ScenarioFactory
from .scenarios import ScenarioSet, ScenarioSpec

__all__ = ["AdversaryBounds", "RobustnessCertificate", "ScenarioAdversary"]


@dataclass(frozen=True)
class AdversaryBounds:
    """Declared ranges the adversary may search; one field per scenario knob.

    The bounds are the contract that keeps certificates comparable: a certificate
    is "worst case within these bounds", not worst case over physically
    unrealizable futures.  ``infeasibility_penalty`` is the scalarized-regret
    surcharge for a spec that pushes a baseline-feasible plan out of feasibility —
    large enough that any infeasibility dominates any graceful degradation.
    """

    max_rate_scale: float = 5.0
    max_payload_scale: float = 3.0
    max_latency_factor: float = 8.0
    min_bandwidth_factor: float = 0.25
    max_price_factor: float = 4.0
    min_capacity_fraction: float = 0.4
    allow_outages: bool = True
    infeasibility_penalty: float = 10.0

    def __post_init__(self) -> None:
        if self.max_rate_scale < 1.0 or self.max_payload_scale < 1.0:
            raise ValueError("scale bounds must be >= 1")
        if self.max_latency_factor < 1.0 or self.max_price_factor < 1.0:
            raise ValueError("factor bounds must be >= 1")
        if not 0.0 < self.min_bandwidth_factor <= 1.0:
            raise ValueError("min_bandwidth_factor must be in (0, 1]")
        if not 0.0 < self.min_capacity_fraction <= 1.0:
            raise ValueError("min_capacity_fraction must be in (0, 1]")
        if self.infeasibility_penalty < 0:
            raise ValueError("infeasibility_penalty must be non-negative")


@dataclass(frozen=True)
class RobustnessCertificate:
    """What the adversary found: the certified worst case of one plan.

    ``regret`` is the per-objective vector ``worst_values - baseline_values`` in
    the problem's objective order; ``worst_regret`` is the scalarized maximum the
    adversary optimized (normalized positive regret plus the infeasibility
    surcharge).  ``family_regrets`` records the same scalar for every named stress
    family the search was seeded with — the certificate's worst case is by
    construction at least as bad as each of them.
    """

    plan: MigrationPlan
    objective_names: Tuple[str, ...]
    baseline_values: Tuple[float, ...]
    baseline_feasible: bool
    worst_spec: ScenarioSpec
    worst_values: Tuple[float, ...]
    regret: Tuple[float, ...]
    worst_regret: float
    feasible_under_fault: bool
    violations: Tuple[str, ...]
    budget_spent: int
    family_regrets: Dict[str, float] = field(default_factory=dict)

    @property
    def survives(self) -> bool:
        """Whether the plan stays feasible even under the certified worst case."""
        return self.feasible_under_fault

    def summary(self) -> str:
        """Human-readable certificate (what the example and benchmarks print)."""
        lines = [
            f"worst-case scenario : {self.worst_spec.name}",
            f"scalarized regret   : {self.worst_regret:.4f}",
            "feasible under fault: " + ("yes" if self.feasible_under_fault else "no"),
        ]
        for name, base, worst, regret in zip(
            self.objective_names, self.baseline_values, self.worst_values, self.regret
        ):
            lines.append(
                f"  {name:<10} {base:>12.4f} -> {worst:>12.4f}  (regret {regret:+.4f})"
            )
        if self.violations:
            lines.append("violations under worst case:")
            lines.extend(f"  - {violation}" for violation in self.violations)
        lines.append(f"scenarios evaluated : {self.budget_spent}")
        return "\n".join(lines)


@dataclass
class _Candidate:
    spec: ScenarioSpec
    quality: PlanQuality
    regret: Tuple[float, ...]
    score: float


#: Neutral parameter vector — the identity scenario the descent starts from.
_NEUTRAL = {
    "rate_scale": 1.0,
    "payload_scale": 1.0,
    "outage": None,
    "latency_factor": 1.0,
    "egress_factor": 1.0,
    "compute_factor": 1.0,
    "capacity_fraction": 1.0,
}


class ScenarioAdversary:
    """Deterministic worst-case search over the bounded scenario space of one plan."""

    def __init__(
        self,
        evaluator: QualityEvaluator,
        factory: Optional[ScenarioFactory] = None,
        bounds: Optional[AdversaryBounds] = None,
        budget: int = 48,
        seed: int = 0,
        extra_specs: Sequence[ScenarioSpec] = (),
    ) -> None:
        """``budget`` caps the number of distinct scenario evaluations; the factory
        families (and ``extra_specs``, e.g. a drift-refreshed scenario) are always
        scored even if that exceeds the budget — the descent and the random
        refinement only run on budget that remains."""
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.evaluator = evaluator
        self.factory = factory or ScenarioFactory.from_evaluator(evaluator)
        self.bounds = bounds or AdversaryBounds()
        self.budget = int(budget)
        self.seed = int(seed)
        self.extra_specs = tuple(extra_specs)
        #: Rate-changing scenarios need the fitted estimator to recompile usage.
        self._can_scale_rates = (
            evaluator.estimator is not None and bool(evaluator.estimate.api_rates)
        )
        #: The elastic site whose node pool the capacity knob shrinks (first
        #: billable location; the on-prem knob is a no-op without declared limits).
        billable = sorted(evaluator.cost.catalogs)
        self._cut_site = billable[0] if billable else None
        if self._cut_site is None and evaluator.preferences.onprem_limits:
            self._cut_site = ON_PREM

    # -- scoring ---------------------------------------------------------------------------
    def _score_spec(
        self, plan: MigrationPlan, spec: ScenarioSpec, baseline: PlanQuality
    ) -> _Candidate:
        quality = self.evaluator.evaluate_batch(
            [plan], scenarios=ScenarioSet((spec,))
        )[0]
        base_values = baseline.objectives()
        regret = tuple(
            value - base for value, base in zip(quality.objectives(), base_values)
        )
        # Scalarization: normalized positive regret summed over objectives.  Each
        # objective is normalized by max(|baseline|, 1) so dollar-scale and
        # unit-scale objectives weigh comparably; improvements (negative regret,
        # e.g. an outage making a cloud-heavy plan cheaper) never offset harm.
        score = sum(
            max(r, 0.0) / max(abs(base), 1.0)
            for r, base in zip(regret, base_values)
        )
        if baseline.feasible and not quality.feasible:
            score += self.bounds.infeasibility_penalty
        return _Candidate(spec=spec, quality=quality, regret=regret, score=score)

    def _supported(self, spec: ScenarioSpec) -> bool:
        return self._can_scale_rates or not spec.changes_rates

    # -- parameterized spec construction -----------------------------------------------------
    def _spec_from_params(self, params: Dict[str, object], index: int) -> Optional[ScenarioSpec]:
        faults = []
        if params["outage"] is not None:
            faults.append(LocationOutage(int(params["outage"])))
        if params["latency_factor"] > 1.0:
            faults.append(
                LinkDegradation(
                    latency_factor=float(params["latency_factor"]),
                    bandwidth_factor=self.bounds.min_bandwidth_factor,
                )
            )
        if params["egress_factor"] > 1.0 or params["compute_factor"] > 1.0:
            faults.append(
                PriceShock(
                    compute_factor=float(params["compute_factor"]),
                    egress_factor=float(params["egress_factor"]),
                )
            )
        if params["capacity_fraction"] < 1.0 and self._cut_site is not None:
            faults.append(
                CapacityCut(
                    self._cut_site,
                    remaining_fraction=float(params["capacity_fraction"]),
                )
            )
        spec = ScenarioSpec(
            name=f"adversary-{index}",
            rate_scale=float(params["rate_scale"]),
            payload_scale=float(params["payload_scale"]),
            faults=tuple(faults),
        )
        if spec.is_baseline:
            return None
        return spec

    def _knob_grid(self) -> List[Tuple[str, List[object]]]:
        """Coordinate-descent candidate values per knob, all within the bounds."""
        b = self.bounds
        grid: List[Tuple[str, List[object]]] = []
        if self._can_scale_rates:
            grid.append(
                ("rate_scale", [(1.0 + b.max_rate_scale) / 2.0, b.max_rate_scale])
            )
        grid.append(
            ("payload_scale", [(1.0 + b.max_payload_scale) / 2.0, b.max_payload_scale])
        )
        if b.allow_outages and self.factory.remote_locations:
            grid.append(("outage", list(self.factory.remote_locations)))
        grid.append(
            ("latency_factor", [(1.0 + b.max_latency_factor) / 2.0, b.max_latency_factor])
        )
        grid.append(
            ("egress_factor", [(1.0 + b.max_price_factor) / 2.0, b.max_price_factor])
        )
        grid.append(
            ("compute_factor", [(1.0 + b.max_price_factor) / 2.0, b.max_price_factor])
        )
        if self._cut_site is not None:
            grid.append(
                (
                    "capacity_fraction",
                    [b.min_capacity_fraction, (1.0 + b.min_capacity_fraction) / 2.0],
                )
            )
        return grid

    def _random_params(self, rng: np.random.Generator) -> Dict[str, object]:
        """One bounded random parameter vector (the exploration tail of the search)."""
        b = self.bounds
        params = dict(_NEUTRAL)
        if self._can_scale_rates:
            params["rate_scale"] = float(rng.uniform(1.0, b.max_rate_scale))
        params["payload_scale"] = float(rng.uniform(1.0, b.max_payload_scale))
        if b.allow_outages and self.factory.remote_locations and rng.random() < 0.5:
            params["outage"] = int(rng.choice(list(self.factory.remote_locations)))
        if rng.random() < 0.5:
            params["latency_factor"] = float(rng.uniform(1.0, b.max_latency_factor))
        if rng.random() < 0.5:
            params["egress_factor"] = float(rng.uniform(1.0, b.max_price_factor))
        if rng.random() < 0.5:
            params["compute_factor"] = float(rng.uniform(1.0, b.max_price_factor))
        if self._cut_site is not None and rng.random() < 0.5:
            params["capacity_fraction"] = float(
                rng.uniform(b.min_capacity_fraction, 1.0)
            )
        return params

    # -- the search ---------------------------------------------------------------------------
    def certify(self, plan: MigrationPlan) -> RobustnessCertificate:
        """Search the bounded scenario space for the plan's worst case.

        Order of play: (1) the fault-free baseline anchors the regret; (2) every
        factory family and extra spec is scored — the eventual worst case dominates
        them by construction; (3) deterministic coordinate descent over the knob
        grid from the neutral point; (4) seeded random exploration on leftover
        budget.  Distinct specs are deduplicated by compiled identity, so repeated
        candidates never double-bill the budget.
        """
        baseline = self.evaluator.evaluate_batch(
            [plan], scenarios=ScenarioSet((ScenarioSpec(name="certify-baseline"),))
        )[0]

        seen: set = set()
        candidates: List[_Candidate] = []
        spent = 0

        def consider(spec: ScenarioSpec) -> Optional[_Candidate]:
            nonlocal spent
            identity = spec.identity_key()
            if identity in seen:
                return None
            seen.add(identity)
            spent += 1
            candidate = self._score_spec(plan, spec, baseline)
            candidates.append(candidate)
            return candidate

        # (2) Seeds: every named stress family plus caller-supplied extras.
        family_regrets: Dict[str, float] = {}
        seed_specs = [
            spec
            for spec in self.factory.stress_families(include_baseline=False)
            if self._supported(spec)
        ]
        seed_specs.extend(spec for spec in self.extra_specs if self._supported(spec))
        for spec in seed_specs:
            candidate = consider(spec)
            if candidate is not None:
                family_regrets[spec.name] = candidate.score

        # (3) Coordinate descent from the neutral point over the knob grid.
        params = dict(_NEUTRAL)
        params_score = 0.0
        adversary_index = 0
        improved = True
        while improved and spent < self.budget:
            improved = False
            for knob, values in self._knob_grid():
                for value in values:
                    if spent >= self.budget:
                        break
                    trial = dict(params)
                    trial[knob] = value
                    spec = self._spec_from_params(trial, adversary_index)
                    if spec is None:
                        continue
                    candidate = consider(spec)
                    if candidate is None:
                        continue
                    adversary_index += 1
                    if candidate.score > params_score:
                        params, params_score = trial, candidate.score
                        improved = True

        # (4) Seeded random exploration on leftover budget.  The miss guard stops
        # the loop when the searchable space is effectively exhausted (every draw
        # deduplicates away) instead of spinning without spending budget.
        rng = np.random.default_rng(self.seed)
        misses = 0
        while spent < self.budget and misses < 25:
            spec = self._spec_from_params(self._random_params(rng), adversary_index)
            if spec is None or spec.identity_key() in seen:
                misses += 1
                continue
            misses = 0
            candidate = consider(spec)
            if candidate is not None:
                adversary_index += 1

        if not candidates:
            # Degenerate space (nothing searchable): certify the baseline itself.
            worst = _Candidate(
                spec=ScenarioSpec(name="certify-baseline"),
                quality=baseline,
                regret=tuple(0.0 for _ in baseline.objectives()),
                score=0.0,
            )
        else:
            worst = max(candidates, key=lambda candidate: candidate.score)
        return RobustnessCertificate(
            plan=plan,
            objective_names=self.evaluator.objective_names,
            baseline_values=baseline.objectives(),
            baseline_feasible=baseline.feasible,
            worst_spec=worst.spec,
            worst_values=worst.quality.objectives(),
            regret=worst.regret,
            worst_regret=worst.score,
            feasible_under_fault=worst.quality.feasible,
            violations=worst.quality.violations,
            budget_spent=spent,
            family_regrets=family_regrets,
        )
