"""Fused cross-API replay: all compiled trace sets as one level-scheduled program.

:class:`~repro.quality.compiled.CompiledTraceSet` already turned one API's delay
injection into a handful of vectorized passes, but an S×P robust evaluation still
launches that kernel once *per API per scenario view* — at A≈30 APIs and S=4
scenarios the numpy dispatch overhead of those A·S launches dominates the actual
arithmetic.  This module concatenates every API's compiled arrays into one jumbo
program over a single global span/edge index space:

* span indices of API ``k`` shift by the running span offset, so one
  ``(plans, total_spans)`` start/end workspace holds every API's state at once;
* edge indices shift into per-API *edge segments* of one fused Δ row, so a plan's
  delays for all APIs live in a single ``(plans, total_edges)`` matrix;
* level ``L`` of the fused program is the concatenation of every API's level-``L``
  ops — levels only ever read strictly lower levels and write disjoint spans, and
  no dependency crosses an API boundary, so merging by level position is exact.

Replaying the fused program executes ``max_levels`` vectorized passes over the big
workspace instead of ``Σ levels_api`` passes over small ones.  Every elementwise
operation is identical to the per-API replay (same dtype, same IEEE-754 op order,
``reduceat`` segments preserved per trace), so the float64 fused replay is
**bitwise identical** to :meth:`CompiledTraceSet.replay_batch` run per API.

Two faster, tolerance-contracted variants share the layout:

* :meth:`FusedProgram.replay32` runs the same passes in float32 (half the memory
  traffic); callers must treat it as an approximation of the float64 oracle
  (objective values agree within ``rtol=1e-5`` on the testbeds).
* :meth:`FusedProgram.replay_jit` compiles the per-level scatter/gather loops with
  numba when the optional dependency is importable (``HAS_NUMBA``); the float64
  kernel preserves the op order, so its output is bitwise equal to :meth:`replay`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .compiled import CompiledTraceSet, ShmArena, _LevelOps

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the tier-1 environment has no numba
    numba = None
    HAS_NUMBA = False

__all__ = ["FusedProgram", "HAS_NUMBA"]

#: Lazily numba-compiled replay kernel (None until first use; requires HAS_NUMBA).
_JIT_KERNEL = None


class _MergedLevel:
    """One fused level with the sp/ss start ops merged for the numpy replay.

    Indices address the combined ``start|end`` workspace: column ``i`` is span
    ``i``'s start, column ``total_spans + i`` its end.  Derived lazily (per
    workspace dtype) from the :class:`_LevelOps` the program is built from.
    """

    __slots__ = (
        "mv_tgt",
        "mv_src",
        "mv_base",
        "mv_edge",
        "el_src",
        "el_tgt",
        "el_dur",
        "ea_tgt",
        "ea_children",
        "ea_offsets",
        "ea_tail",
    )


def _build_jit_kernel():
    """Compile the per-level scatter/gather loops with numba (float64, op-order
    preserving: bitwise equal to the numpy passes)."""

    @numba.njit(cache=False)
    def kernel(
        deltas,
        start,
        end,
        n_levels,
        sp_bounds,
        sp_idx,
        sp_dep,
        sp_gap,
        sp_edge,
        ss_bounds,
        ss_idx,
        ss_dep,
        ss_gap,
        ss_edge,
        el_bounds,
        el_idx,
        el_dur,
        ea_bounds,
        ea_idx,
        ea_tail,
        ea_child_start,
        ea_children,
    ):  # pragma: no cover - requires numba (covered by the optional-deps CI job)
        n_plans = deltas.shape[0]
        for plan in range(n_plans):
            for level in range(n_levels):
                for k in range(sp_bounds[level], sp_bounds[level + 1]):
                    start[plan, sp_idx[k]] = (
                        start[plan, sp_dep[k]] + sp_gap[k] + deltas[plan, sp_edge[k]]
                    )
                for k in range(ss_bounds[level], ss_bounds[level + 1]):
                    start[plan, ss_idx[k]] = (
                        end[plan, ss_dep[k]] + ss_gap[k] + deltas[plan, ss_edge[k]]
                    )
                for k in range(el_bounds[level], el_bounds[level + 1]):
                    end[plan, el_idx[k]] = start[plan, el_idx[k]] + el_dur[k]
                for k in range(ea_bounds[level], ea_bounds[level + 1]):
                    best = end[plan, ea_children[ea_child_start[k]]]
                    for c in range(ea_child_start[k] + 1, ea_child_start[k + 1]):
                        value = end[plan, ea_children[c]]
                        if value > best:
                            best = value
                    end[plan, ea_idx[k]] = best + ea_tail[k]

    return kernel


class FusedProgram:
    """Every API's compiled trace set, concatenated into one replay program.

    ``compiled_by_api`` maps API name -> its :class:`CompiledTraceSet`;
    ``api_order`` fixes the segment layout (callers pass the model's sorted API
    list, so the fused Δ-row layout is deterministic).  The program never copies
    trace data semantics — only indices shift — and replay results per API segment
    are bitwise identical to replaying each set on its own.
    """

    def __init__(
        self,
        compiled_by_api: Mapping[str, CompiledTraceSet],
        api_order: Sequence[str],
    ) -> None:
        if not api_order:
            raise ValueError("cannot fuse an empty API set")
        self.api_order: Tuple[str, ...] = tuple(api_order)
        # Source sets are retained (references only) so splice() can re-concatenate
        # the program with just the dirty APIs' sets replaced.
        self._compiled_by_api: Dict[str, CompiledTraceSet] = {
            api: compiled_by_api[api] for api in self.api_order
        }
        self._edge_segments: Dict[str, Tuple[int, int]] = {}
        self._trace_segments: Dict[str, Tuple[int, int]] = {}
        span_offset = 0
        edge_offset = 0
        trace_offset = 0
        root_idx: List[np.ndarray] = []
        root_start: List[np.ndarray] = []
        max_levels = max(len(compiled_by_api[api]._levels) for api in self.api_order)
        staged: List[Dict[str, List[np.ndarray]]] = [
            {name: [] for name in _LevelOps.__slots__} for _ in range(max_levels)
        ]
        for api in self.api_order:
            compiled = compiled_by_api[api]
            self._edge_segments[api] = (edge_offset, edge_offset + compiled.n_edges)
            self._trace_segments[api] = (trace_offset, trace_offset + compiled.n_traces)
            root_idx.append(compiled._root_idx + span_offset)
            root_start.append(compiled._root_start)
            for position, ops in enumerate(compiled._levels):
                stage = staged[position]
                stage["sp_idx"].append(ops.sp_idx + span_offset)
                stage["sp_dep"].append(ops.sp_dep + span_offset)
                stage["sp_gap"].append(ops.sp_gap)
                stage["sp_edge"].append(ops.sp_edge + edge_offset)
                stage["ss_idx"].append(ops.ss_idx + span_offset)
                stage["ss_dep"].append(ops.ss_dep + span_offset)
                stage["ss_gap"].append(ops.ss_gap)
                stage["ss_edge"].append(ops.ss_edge + edge_offset)
                stage["el_idx"].append(ops.el_idx + span_offset)
                stage["el_dur"].append(ops.el_dur)
                stage["ea_idx"].append(ops.ea_idx + span_offset)
                stage["ea_children"].append(ops.ea_children + span_offset)
                # Child segments restart per level: rebase this API's offsets onto
                # the children already accumulated at the same fused level.
                accumulated = sum(
                    len(block) for block in stage["ea_children"][:-1]
                )
                stage["ea_offsets"].append(ops.ea_offsets + accumulated)
                stage["ea_tail"].append(ops.ea_tail)
            span_offset += compiled.n_spans
            edge_offset += compiled.n_edges
            trace_offset += compiled.n_traces
        self.total_spans = span_offset
        self.total_edges = edge_offset
        self.total_traces = trace_offset
        self.root_idx = np.concatenate(root_idx)
        self.root_start = np.concatenate(root_start)
        self._levels: List[_LevelOps] = []
        for stage in staged:
            ops = _LevelOps()
            for name in _LevelOps.__slots__:
                setattr(ops, name, np.concatenate(stage[name]))
            self._levels.append(ops)
        self._merged64: List[_MergedLevel] = []
        self._merged32: List[_MergedLevel] = []
        self._root_start32: np.ndarray = np.empty(0, dtype=np.float32)
        self._packed = None
        self._shm_backed = False
        self._shm_float32 = False

    # -- layout ----------------------------------------------------------------------------
    def edge_segment(self, api: str) -> Tuple[int, int]:
        """Half-open column range of one API's edges inside a fused Δ row."""
        return self._edge_segments[api]

    def trace_segment(self, api: str) -> Tuple[int, int]:
        """Half-open column range of one API's traces inside a replay result."""
        return self._trace_segments[api]

    def splice(self, replacements: Mapping[str, CompiledTraceSet]) -> "FusedProgram":
        """A new program with the named APIs' segments swapped in (warm-path rebuild).

        Unchanged APIs contribute the very same compiled arrays they already
        contributed — no recompilation, only the index shifts of fusion are redone —
        so splicing K of N APIs costs the concatenation pass plus whatever the
        caller spent compiling the K replacement sets.  By construction the result
        is bitwise-identical to fusing all N sets from scratch.
        """
        unknown = set(replacements) - set(self.api_order)
        if unknown:
            raise KeyError(f"unknown APIs in fused splice: {sorted(unknown)}")
        merged = dict(self._compiled_by_api)
        merged.update(replacements)
        return FusedProgram(merged, self.api_order)

    def share_memory(self, arena: "ShmArena", float32: bool = False) -> None:
        """Move the fused arrays into ``arena``-backed shared memory (idempotent).

        Mirrors :meth:`CompiledTraceSet.share_memory`: the island-model parallel
        search exports the fused program before forking, so workers replay against
        physically shared pages.  The merged-level replay arrays (the actual hot
        path of :meth:`replay`) are materialized and exported too, so forked
        workers stop lazily rebuilding private per-process copies; pass
        ``float32=True`` to additionally export the :meth:`replay32` arrays.
        """
        if not self._shm_backed:
            self.root_idx = arena.share(self.root_idx)
            self.root_start = arena.share(self.root_start)
            for ops in self._levels:
                for name in _LevelOps.__slots__:
                    setattr(ops, name, arena.share(getattr(ops, name)))
            for level in self._merged_levels(np.float64):
                for name in _MergedLevel.__slots__:
                    setattr(level, name, arena.share(getattr(level, name)))
            self._shm_backed = True
        if float32 and not self._shm_float32:
            if not len(self._root_start32):
                self._root_start32 = np.zeros(len(self.root_start), dtype=np.float32)
            self._root_start32 = arena.share(self._root_start32)
            for level in self._merged_levels(np.float32):
                for name in _MergedLevel.__slots__:
                    setattr(level, name, arena.share(getattr(level, name)))
            self._shm_float32 = True

    def __getstate__(self) -> Dict[str, object]:
        """Serialize only the canonical program state.

        The merged-level views, the float32 mirror and the packed JIT operand
        tuple are derived caches rebuilt lazily on first replay — dropping them
        keeps payloads small and, like :meth:`CompiledTraceSet.__getstate__`,
        resets the shm flags: a deserialized program owns private arrays and may
        be freshly exported to a new arena.
        """
        state = dict(self.__dict__)
        state["_merged64"] = []
        state["_merged32"] = []
        state["_root_start32"] = np.empty(0, dtype=np.float32)
        state["_packed"] = None
        state["_shm_backed"] = False
        state["_shm_float32"] = False
        return state

    # -- replay ----------------------------------------------------------------------------
    def _merged_levels(self, dtype) -> List["_MergedLevel"]:
        """Per-level ops with the sp/ss families merged into one scatter (lazy).

        The numpy replay runs over one combined ``start|end`` workspace: column
        ``i < total_spans`` is span ``i``'s start, column ``total_spans + i`` its
        end.  A start-from-parent op reads a parent *start* and a start-from-sibling
        op reads a sibling *end* — both from strictly lower levels with disjoint
        targets — so one fancy-indexed pass computes every start of the level:
        ``se[:, tgt] = se[:, src] + base + deltas[:, edge]``.  The elementwise
        arithmetic (operand order included) is exactly the per-family passes', so
        the float64 merge stays bitwise identical to per-API replay_batch.
        """
        cache = self._merged64 if dtype == np.float64 else self._merged32
        if cache:
            return cache
        shift = self.total_spans
        for ops in self._levels:
            level = _MergedLevel()
            level.mv_tgt = np.concatenate([ops.sp_idx, ops.ss_idx])
            level.mv_src = np.concatenate([ops.sp_dep, ops.ss_dep + shift])
            level.mv_base = np.concatenate([ops.sp_gap, ops.ss_gap]).astype(
                dtype, copy=False
            )
            level.mv_edge = np.concatenate([ops.sp_edge, ops.ss_edge])
            level.el_src = ops.el_idx
            level.el_tgt = ops.el_idx + shift
            level.el_dur = ops.el_dur.astype(dtype, copy=False)
            level.ea_tgt = ops.ea_idx + shift
            level.ea_children = ops.ea_children + shift
            level.ea_offsets = ops.ea_offsets
            level.ea_tail = ops.ea_tail.astype(dtype, copy=False)
            cache.append(level)
        return cache

    def _run_levels(
        self,
        deltas: np.ndarray,
        levels: List["_MergedLevel"],
        root_start: np.ndarray,
    ) -> np.ndarray:
        """The level-scheduled passes of :meth:`CompiledTraceSet.replay_batch`,
        over the fused index space and in the workspace dtype of ``deltas``."""
        dtype = deltas.dtype
        n_plans = deltas.shape[0]
        shift = self.total_spans
        # Uninitialized is safe: every span start is written by the root scatter or
        # a merged sp/ss op, every end by an el/ea op, and the level schedule never
        # reads a slot before the pass that writes it.
        se = np.empty((n_plans, 2 * shift), dtype=dtype)
        se[:, self.root_idx] = root_start
        for ops in levels:
            if len(ops.mv_tgt):
                se[:, ops.mv_tgt] = (
                    se[:, ops.mv_src] + ops.mv_base + deltas[:, ops.mv_edge]
                )
            if len(ops.el_tgt):
                se[:, ops.el_tgt] = se[:, ops.el_src] + ops.el_dur
            if len(ops.ea_tgt):
                segment_max = np.maximum.reduceat(
                    se[:, ops.ea_children], ops.ea_offsets, axis=1
                )
                segment_max += ops.ea_tail
                se[:, ops.ea_tgt] = segment_max
        return se[:, shift + self.root_idx] - se[:, self.root_idx]

    def _validated(self, delta_rows: np.ndarray, dtype) -> np.ndarray:
        deltas = np.atleast_2d(np.asarray(delta_rows, dtype=dtype))
        if deltas.shape[1] != self.total_edges:
            raise ValueError(
                f"fused delta rows have {deltas.shape[1]} edges, "
                f"program has {self.total_edges}"
            )
        return deltas

    def replay(self, delta_rows: np.ndarray) -> np.ndarray:
        """Latency matrix ``(plans, total_traces)`` — float64, bitwise identical to
        the per-API :meth:`CompiledTraceSet.replay_batch` results, concatenated."""
        deltas = self._validated(delta_rows, np.float64)
        return self._run_levels(deltas, self._merged_levels(np.float64), self.root_start)

    def replay32(self, delta_rows: np.ndarray) -> np.ndarray:
        """Float32 fast path: same passes, half the memory traffic.

        Every trace is rebased to a zero root start: the replay is exactly affine
        in the root base (it propagates additively through starts, ends and maxes,
        and ``end - start`` cancels it), but in float32 a ~1e5 ms absolute
        timestamp base would cost ~4e-3 ms of ulp on every ~1e1 ms latency.
        Rebasing keeps the result within the advertised ``rtol=1e-5`` of the
        float64 oracle instead of ~1e-4.
        """
        if not len(self._root_start32):
            self._root_start32 = np.zeros(len(self.root_start), dtype=np.float32)
        deltas = self._validated(delta_rows, np.float32)
        return self._run_levels(
            deltas, self._merged_levels(np.float32), self._root_start32
        )

    def replay_jit(self, delta_rows: np.ndarray) -> np.ndarray:
        """Numba-compiled float64 replay — bitwise identical to :meth:`replay`.

        Requires the optional ``numba`` dependency (guarded by ``HAS_NUMBA``); the
        first call pays the JIT compilation cost.
        """
        if not HAS_NUMBA:
            raise RuntimeError(
                "FusedProgram.replay_jit requires the optional numba dependency; "
                "install numba or use replay()/replay32()"
            )
        global _JIT_KERNEL
        if _JIT_KERNEL is None:
            _JIT_KERNEL = _build_jit_kernel()
        if self._packed is None:
            self._packed = self._pack_levels()
        deltas = np.ascontiguousarray(self._validated(delta_rows, np.float64))
        n_plans = deltas.shape[0]
        start = np.zeros((n_plans, self.total_spans), dtype=np.float64)
        end = np.zeros((n_plans, self.total_spans), dtype=np.float64)
        start[:, self.root_idx] = self.root_start
        _JIT_KERNEL(deltas, start, end, len(self._levels), *self._packed)
        return end[:, self.root_idx] - start[:, self.root_idx]

    def _pack_levels(self) -> Tuple[np.ndarray, ...]:
        """Flatten the per-level op bundles into bounds-indexed arrays for the JIT
        kernel (one contiguous array per field + per-level boundaries)."""

        def bounds(counts: List[int]) -> np.ndarray:
            return np.concatenate(
                ([0], np.cumsum(np.asarray(counts, dtype=np.int64)))
            ).astype(np.int64)

        def concat(name: str, dtype) -> np.ndarray:
            return np.concatenate(
                [np.asarray(getattr(ops, name)) for ops in self._levels]
            ).astype(dtype)

        sp_bounds = bounds([len(ops.sp_idx) for ops in self._levels])
        ss_bounds = bounds([len(ops.ss_idx) for ops in self._levels])
        el_bounds = bounds([len(ops.el_idx) for ops in self._levels])
        ea_bounds = bounds([len(ops.ea_idx) for ops in self._levels])
        # Global child segments: per ea op, [ea_child_start[k], ea_child_start[k+1])
        # indexes the packed ea_children array.
        child_start: List[int] = []
        children: List[np.ndarray] = []
        base = 0
        for ops in self._levels:
            offsets = np.asarray(ops.ea_offsets, dtype=np.int64)
            child_start.extend((offsets + base).tolist())
            children.append(np.asarray(ops.ea_children, dtype=np.int64))
            base += len(ops.ea_children)
        ea_child_start = np.asarray(child_start + [base], dtype=np.int64)
        ea_children = (
            np.concatenate(children).astype(np.int64)
            if children
            else np.zeros(0, dtype=np.int64)
        )
        return (
            sp_bounds,
            concat("sp_idx", np.int64),
            concat("sp_dep", np.int64),
            concat("sp_gap", np.float64),
            concat("sp_edge", np.int64),
            ss_bounds,
            concat("ss_idx", np.int64),
            concat("ss_dep", np.int64),
            concat("ss_gap", np.float64),
            concat("ss_edge", np.int64),
            el_bounds,
            concat("el_idx", np.int64),
            concat("el_dur", np.float64),
            ea_bounds,
            concat("ea_idx", np.int64),
            concat("ea_tail", np.float64),
            ea_child_start,
            ea_children,
        )
