"""API performance modeling via delay injection (Section 4.1.1, Figure 6).

Given a migration plan, Atlas previews each API's end-to-end latency without executing
the plan: it takes traces recorded under the current placement and *injects* the extra
network delay every invocation edge would experience if its caller and callee ended up
in different datacenters.  The injected delay Δ (Eq. 2) combines the change in link
latency and the change in serialization time of the edge's learned network footprint.

The cascade rules follow the paper:

* a delayed child shifts its own start; its execution duration is preserved;
* siblings running in parallel with it are unaffected; the next sequential operation
  starts after the (possibly delayed) completion of all foreground predecessors, keeping
  its original trigger gap;
* background operations inherit the shift of their trigger point but never extend the
  root span, so delaying them does not change the API latency.

**Compiled-replay architecture.**  Plan evaluation is the system's wall-clock cost (the
GA previews up to 10,000 plans per recommendation), so this module is organized around
three invariants:

* **Compile once, replay many** — each API's sample traces are compiled once into flat
  numpy arrays (:mod:`repro.quality.compiled`); injecting one plan's delays becomes a
  few vectorized array passes over all of the API's traces simultaneously, and a batch
  of plans replays as one ``(plans, edges)`` matrix.  The recursive
  :class:`DelayInjector` is kept as the reference oracle (``engine="reference"``) and
  the compiled engine is bitwise-identical to it, so either engine yields the same
  fixed-seed search trajectory.
* **Projection keys** — an API's latency depends only on the placements of the
  components its traces touch, so per-API results are cached by that *projection* of
  the plan: the thousands of GA plans that differ only in components an API never
  touches hit the cache instead of replaying.  Edge delays are further keyed by the
  cut-edge signature (the exact Δ map), which collapses distinct projections that
  induce identical delays.
* **Batched evaluation** — :meth:`ApiPerformanceModel.prime` resolves a whole
  generation of plans at once: dedup → project → one vectorized replay per API for all
  cache-missing delay signatures.  :class:`~repro.quality.evaluator.QualityEvaluator`
  drives it from ``evaluate_batch``.
"""

from __future__ import annotations

import copy
import statistics
import weakref
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.network import NetworkModel
from ..cluster.placement import MigrationPlan
from ..learning.api_profile import classify_background, classify_sibling
from ..learning.footprint import NetworkFootprint
from ..apps.model import ExecutionMode
from ..telemetry.tracing import Span, Trace
from .artifacts import ArtifactCache, fingerprint_network, fingerprint_traces
from .compiled import CompiledTraceSet, ShmArena
from .fused import HAS_NUMBA, FusedProgram

__all__ = ["DelayInjector", "ApiPerformanceModel", "PerformanceEstimate"]

#: Engines that evaluate plan matrices through the fused cross-API program.
#: ``"fused"`` replays in float64 (bitwise equal to ``"compiled"``), ``"fused32"``
#: in float32 (tolerance-contracted against the float64 oracle), ``"fused-jit"``
#: through the optional numba kernel (float64, bitwise equal to ``"fused"``).
_FUSED_ENGINES = ("fused", "fused32", "fused-jit")
_ENGINES = ("compiled", "reference") + _FUSED_ENGINES

Edge = Tuple[str, str]
#: Canonical cache key for one plan's per-edge delays: the cut-edge signature.
DelaySignature = Tuple[Tuple[Edge, float], ...]


class DelayInjector:
    """Applies per-edge delays to one trace and recomputes all span timings.

    This is the recursive reference implementation of the cascade rules; the compiled
    engine (:mod:`repro.quality.compiled`) must match it bitwise and is validated
    against it by the property-based equivalence tests.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def inject(self, edge_delays: Mapping[Tuple[str, str], float]) -> Trace:
        """Return a new trace with ``edge_delays`` (caller, callee) -> Δ ms applied."""
        root = self.trace.root
        new_spans: List[Span] = []
        self._adjust(root, root.start_ms, edge_delays, new_spans)
        return self.trace.with_spans(new_spans)

    def injected_latency_ms(self, edge_delays: Mapping[Tuple[str, str], float]) -> float:
        """End-to-end latency after injection (root span duration of the new trace)."""
        return self.inject(edge_delays).latency_ms

    # -- internals -----------------------------------------------------------------------
    def _adjust(
        self,
        span: Span,
        new_start: float,
        edge_delays: Mapping[Tuple[str, str], float],
        out: List[Span],
    ) -> float:
        """Recompute ``span`` starting at ``new_start``; returns its new end time."""
        children = self.trace.children(span.span_id)
        if not children:
            out.append(span.shifted(new_start))
            return new_start + span.duration_ms

        # Foreground children processed so far: (orig_end, new_end, span).
        foreground: List[Tuple[float, float, Span]] = []
        last_fg_orig_end = span.start_ms
        last_fg_new_end = new_start

        for child in children:
            background = classify_background(child, span)
            # Reference point: the latest original end among previously processed
            # foreground children that do NOT run in parallel with this child, or the
            # parent start when there is none.
            ref_orig = span.start_ms
            ref_new = new_start
            for orig_end, new_end, prev in foreground:
                if classify_sibling(prev, child) is ExecutionMode.PARALLEL:
                    continue
                if orig_end > ref_orig:
                    ref_orig, ref_new = orig_end, new_end
            gap = child.start_ms - ref_orig
            delta = edge_delays.get((span.component, child.component), 0.0)
            child_new_start = ref_new + gap + max(delta, 0.0)
            child_new_end = self._adjust(child, child_new_start, edge_delays, out)
            if not background:
                foreground.append((child.end_ms, child_new_end, child))
                if child.end_ms > last_fg_orig_end:
                    last_fg_orig_end = child.end_ms
                    last_fg_new_end = child_new_end

        if foreground:
            # Latest foreground completion, original and new, defines the tail reference.
            tail_ref_orig = max(orig_end for orig_end, _new, _s in foreground)
            tail_ref_new = max(new_end for _orig, new_end, _s in foreground)
        else:
            tail_ref_orig, tail_ref_new = span.start_ms, new_start
        tail_gap = span.end_ms - tail_ref_orig
        new_end = tail_ref_new + max(tail_gap, 0.0)
        out.append(span.shifted(new_start, duration_ms=new_end - new_start))
        return new_end


@dataclass
class PerformanceEstimate:
    """Latency preview of one API under one plan."""

    api: str
    baseline_mean_ms: float
    estimated_mean_ms: float
    estimated_latencies_ms: List[float]

    @property
    def impact_factor(self) -> float:
        """``Lat(A; p) / Lat(A)`` — how many times slower the API becomes."""
        if self.baseline_mean_ms <= 0:
            return 1.0
        return self.estimated_mean_ms / self.baseline_mean_ms


class ApiPerformanceModel:
    """Estimates per-API latency and the QPerf objective for any migration plan.

    ``engine`` selects how cache-missing delay signatures are replayed:

    * ``"compiled"`` (default) — vectorized per-API compiled trace sets;
    * ``"reference"`` — the recursive :class:`DelayInjector` oracle, trace by trace;
    * ``"fused"`` — all APIs concatenated into one cross-API program
      (:class:`~repro.quality.fused.FusedProgram`); plan-matrix evaluation becomes a
      single replay pass per generation, bitwise identical to ``"compiled"``;
    * ``"fused32"`` — the fused program in float32: objective values agree with the
      float64 oracle within ``rtol=1e-5`` on the testbeds (feasibility masks and
      Pareto ranks must agree exactly — enforced by the test suite), means are
      cached separately so float32 never leaks into the float64 caches;
    * ``"fused-jit"`` — the fused program through an optional numba kernel (raises
      ``RuntimeError`` at construction when numba is not installed); float64 and
      bitwise identical to ``"fused"``.

    All engines share the projection/signature caches; the scalar per-plan paths
    (``estimate``, ``qperf``) always go through the float64 compiled oracle, so the
    fused engines only change how whole plan matrices are scored.
    """

    def __init__(
        self,
        traces_by_api: Mapping[str, Sequence[Trace]],
        footprint: NetworkFootprint,
        network: NetworkModel,
        baseline_plan: MigrationPlan,
        traces_per_api: int = 50,
        engine: str = "compiled",
        artifact_cache: Optional["ArtifactCache"] = None,
    ) -> None:
        if traces_per_api <= 0:
            raise ValueError("traces_per_api must be positive")
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}")
        if engine == "fused-jit" and not HAS_NUMBA:
            raise RuntimeError(
                "engine='fused-jit' requires the optional numba dependency; "
                "install numba or use engine='fused'"
            )
        self.footprint = footprint
        self.network = network
        self.baseline_plan = baseline_plan
        self.engine = engine
        # Warm-path artifact cache (opt-in): compiled sets, fused programs and Δ
        # tables are fetched/stored by content fingerprint so repeated builds over
        # the same testbed share one physical compile.  ``None`` keeps the default
        # cold path byte-identical to a cache-free build.
        self._artifact_cache = artifact_cache
        # Per-API trace-content fingerprints (lazy; shared by reference with views).
        self._trace_fps: Dict[str, str] = {}
        self._traces_per_api = int(traces_per_api)
        self._traces: Dict[str, List[Trace]] = {
            api: list(traces)[-traces_per_api:]
            for api, traces in traces_by_api.items()
            if traces
        }
        if not self._traces:
            raise ValueError("performance model needs at least one trace")
        self._baseline_mean: Dict[str, float] = {
            api: float(statistics.fmean(t.latency_ms for t in traces))
            for api, traces in self._traces.items()
        }
        # Invocation edges per API (unioned over sample traces).
        self._edges: Dict[str, List[Edge]] = {}
        # Components each API touches — the projection axis of the plan caches.
        self._touched: Dict[str, List[str]] = {}
        for api, traces in self._traces.items():
            edges = set()
            for trace in traces:
                edges.update(trace.invocation_edges())
            self._edges[api] = sorted(edges)
            members = set()
            for caller, callee in self._edges[api]:
                members.add(caller)
                members.add(callee)
            self._touched[api] = sorted(members)
        self._apis = sorted(self._traces)
        # Compiled trace sets, built lazily on first replay of each API.
        self._compiled: Dict[str, CompiledTraceSet] = {}
        # Projection cache: (api, touched-component placements) -> per-edge Δ map.
        self._delays_by_projection: Dict[Tuple[str, Tuple[int, ...]], Dict[Edge, float]] = {}
        # Signature cache: (api, cut-edge signature) -> (latencies, mean latency).
        self._by_signature: Dict[Tuple[str, DelaySignature], Tuple[List[float], float]] = {}
        # Plan-matrix lowering: per component order, each API's touched columns.
        self._projection_columns: Dict[Tuple[str, ...], Dict[str, np.ndarray]] = {}
        # Per-API Δ lookup tables over (edge, caller location, callee location), built
        # lazily and regrown when a matrix mentions a higher location id.
        self._delta_tables: Dict[
            str, Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        # Fused-engine whole-row Δ gather state, per component order: the per-API
        # tables concatenated along the fused edge axis (view-owned, like the
        # tables it derives from).
        self._fused_deltas: Dict[Tuple[str, ...], Tuple] = {}
        # Matrix-pipeline result cache: per API, raw Δ-row bytes -> mean latency.
        # (The replay is deterministic, so this holds the same numbers as the
        # signature cache without paying for per-row signature tuples.)
        self._row_means: Dict[str, Dict[bytes, float]] = {}
        # Fused-engine state, shared by reference with every scenario view (the
        # fused program depends only on the compiled trace sets, which views
        # share): "program" -> FusedProgram, "row_means32" -> per-API float32
        # mean caches (kept apart from _row_means — float32 means must never
        # leak into the float64 oracle caches).
        self._fused_state: Dict[str, object] = {}
        # Set on scenario views: APIs whose footprint bytes differ from the base
        # model's (None = unknown/all).  The base model changes nothing.
        self._changed_apis: Optional[frozenset] = frozenset()
        # Weak registry of every model in this family (the base and all scenario
        # views share the same list), so invalidation reaches every member's
        # view-owned Δ caches, not just the callee's.
        self._family: List["weakref.ref[ApiPerformanceModel]"] = [weakref.ref(self)]
        # Highest location count whose compiled state this model has exported into
        # shared memory (0 = not exported); see :meth:`share_memory`.
        self._shm_locations = 0

    # -- scenario views --------------------------------------------------------------------
    def scenario_view(
        self,
        footprint: NetworkFootprint,
        changed_apis: Optional[Sequence[str]] = None,
        network: Optional[NetworkModel] = None,
    ) -> "ApiPerformanceModel":
        """A lightweight view of this model under a different footprint and/or network.

        The view shares everything that does not depend on footprint bytes or link
        characteristics: the sample traces, baseline means, per-API edge/touched
        sets, the compiled trace sets and — crucially — the replay result caches
        (``_by_signature`` and ``_row_means`` are keyed by the exact Δ map / raw
        Δ-row bytes, and a replay depends only on the compiled traces plus the Δ
        row, never on which footprint or network produced it).  It owns the
        Δ-producing caches (projection cache and Δ lookup tables).  Scenarios that
        scale no payloads and keep the base network get back ``self``, sharing
        everything.

        ``changed_apis`` names the APIs whose footprint bytes actually differ from
        this model's (``None`` means "assume all changed"): robust evaluation then
        copies the *unchanged* APIs' impact rows straight from the base impact
        matrix instead of re-gathering their Δ rows per scenario.  ``network``
        overrides the link model (the :class:`~repro.quality.faults.LinkDegradation`
        / :class:`~repro.quality.faults.LocationOutage` hook); a network change
        potentially shifts every API's Δ tables, so callers must leave
        ``changed_apis`` at ``None`` when they pass one.
        """
        if footprint is self.footprint and network is None:
            return self
        # Shallow-copy so every attribute (current and future) is shared by
        # reference, then give the view its own copies of exactly the
        # footprint/network-dependent state.
        view = copy.copy(self)
        view.footprint = footprint
        if network is not None:
            view.network = network
        view._delays_by_projection = {}
        view._delta_tables = {}
        view._fused_deltas = {}
        view._shm_locations = 0
        view._changed_apis = (
            frozenset(changed_apis) if changed_apis is not None else None
        )
        # copy.copy shares the family list by reference — register the new view in
        # it so invalidation on any member reaches this view's Δ caches.
        self._family.append(weakref.ref(view))
        return view

    def invalidate_for_scenario(self, apis: Optional[Sequence[str]] = None) -> None:
        """Drop the compiled/projection caches of the given APIs (all when ``None``).

        This is the incremental-recompilation hook the drift monitor calls when a
        refreshed scenario changes some APIs' behaviour: only the named APIs pay the
        recompile/replay cost on the next evaluation.  The replay caches are shared
        by every :meth:`scenario_view`, and each view's *own* Δ caches are reached
        through the family registry — one invalidation on any member covers the base
        model and every live view.
        """
        members: List["ApiPerformanceModel"] = []
        for reference in self._family:
            model = reference()
            if model is not None:
                members.append(model)
        self._family[:] = [weakref.ref(model) for model in members]
        # The fused program concatenates every API's compiled arrays, so any
        # invalidation obsoletes it wholesale; the float32 mean caches go with it
        # (conservative for targeted invalidations, always correct).  The dict is
        # shared by reference with every view — one clear reaches the family.
        self._fused_state.clear()
        if apis is None:
            self._compiled.clear()
            self._by_signature.clear()
            self._row_means.clear()
            for model in members:
                model._delays_by_projection.clear()
                model._delta_tables.clear()
                model._fused_deltas.clear()
                model._shm_locations = 0
            return
        targets = set(apis)

        def purge(cache: Dict, api_of) -> None:
            for key in [key for key in cache if api_of(key) in targets]:
                del cache[key]

        purge(self._compiled, lambda key: key)
        purge(self._by_signature, lambda key: key[0])
        purge(self._row_means, lambda key: key)
        for model in members:
            purge(model._delays_by_projection, lambda key: key[0])
            purge(model._delta_tables, lambda key: key)
            # The fused gather concatenates the per-API tables — derived state,
            # dropped wholesale and rebuilt cheaply on the next fused evaluation.
            model._fused_deltas.clear()
            model._shm_locations = 0

    def splice(self, new_traces_by_api: Mapping[str, Sequence[Trace]]) -> None:
        """Install refreshed sample traces for the named APIs — the O(K) drift path.

        Where :meth:`invalidate_for_scenario` only *drops* the stale APIs' state and
        leaves the rebuild to the next evaluation, splice *replaces* it: the named
        APIs' traces, baseline means, edge vocabularies and touched sets are
        recomputed exactly as the constructor would, their compiled sets are rebuilt
        through :meth:`CompiledTraceSet.splice` (reusing every unchanged trace's
        fragment when the edge vocabulary held still), and the fused program — when
        this family runs a fused engine — re-concatenates around the K fresh sets
        instead of recompiling all N.  Every other API's compiled arrays and replay
        caches survive untouched, so a K-of-N refresh costs O(K) compile work while
        staying bitwise-identical to a from-scratch model over the updated traces.
        """
        targets = sorted(new_traces_by_api)
        unknown = [api for api in targets if api not in self._traces]
        if unknown:
            raise KeyError(f"cannot splice unknown APIs: {unknown}")
        old_program = self._fused_state.get("program")
        old_compiled = {api: self._compiled.get(api) for api in targets}
        old_edges = {api: self._edges[api] for api in targets}
        for api in targets:
            traces = list(new_traces_by_api[api])[-self._traces_per_api :]
            if not traces:
                raise ValueError(f"cannot splice API {api!r} to an empty trace set")
            self._traces[api] = traces
            self._baseline_mean[api] = float(
                statistics.fmean(t.latency_ms for t in traces)
            )
            edges = set()
            for trace in traces:
                edges.update(trace.invocation_edges())
            self._edges[api] = sorted(edges)
            members = set()
            for caller, callee in self._edges[api]:
                members.add(caller)
                members.add(callee)
            self._touched[api] = sorted(members)
            self._trace_fps.pop(api, None)
        # Touched sets may have changed, so the per-order projection columns
        # (shared by reference with every view) are stale.
        self._projection_columns.clear()
        self.invalidate_for_scenario(apis=targets)
        for api in targets:
            previous = old_compiled[api]
            if previous is not None and self._edges[api] == old_edges[api]:
                compiled = previous.splice(self._traces[api])
                if self._artifact_cache is not None:
                    # Register the spliced set under its new content key so other
                    # models over the refreshed traces share it too.
                    key = (
                        "compiled",
                        self._trace_fingerprint(api),
                        tuple(self._edges[api]),
                    )
                    compiled = self._artifact_cache.get_or_build(key, lambda: compiled)
                self._compiled[api] = compiled
            # else: the edge vocabulary moved (or the set was never compiled) —
            # _compiled_set recompiles from scratch on first use.
        if old_program is not None and self.is_fused:
            self._fused_state["program"] = old_program.splice(
                {api: self._compiled_set(api) for api in targets}
            )

    # -- shared-memory export --------------------------------------------------------------
    def share_memory(self, arena: "ShmArena", n_locations: int) -> None:
        """Export this model's compiled replay state into shared memory (idempotent).

        Compiles every API's trace set (if not already compiled), moves the compiled
        arrays into ``arena``, builds each API's Δ lookup table for ``n_locations``
        locations and moves its four arrays into ``arena`` too.  After this, a
        forked worker evaluating plan matrices touches only shared read-only pages
        for the replay hot path.  Re-invocations with the same or a smaller location
        count are no-ops; :meth:`invalidate_for_scenario` resets the guard so
        refreshed state is re-exported.
        """
        if self._shm_locations >= n_locations:
            return
        for api in self._apis:
            self._compiled_set(api).share_memory(arena)
            size, table, missing, src_pos, dst_pos = self._delta_table(
                api, n_locations
            )
            self._delta_tables[api] = (
                size,
                arena.share(table),
                arena.share(missing),
                arena.share(src_pos),
                arena.share(dst_pos),
            )
        if self.is_fused:
            self._fused_program().share_memory(arena, float32=self.engine == "fused32")
        self._shm_locations = n_locations

    # -- public API ------------------------------------------------------------------------
    @property
    def apis(self) -> List[str]:
        return list(self._apis)

    def baseline_latency_ms(self, api: str) -> float:
        return self._baseline_mean[api]

    def invocation_edges(self) -> List[Edge]:
        """Union of (caller, callee) invocation edges over all profiled APIs."""
        edges = set()
        for api_edges in self._edges.values():
            edges.update(api_edges)
        return sorted(edges)

    def api_components(self) -> Dict[str, List[str]]:
        """Components appearing in each API's traces (callers and callees)."""
        return {api: list(members) for api, members in self._touched.items()}

    # -- projection / caching ----------------------------------------------------------------
    def projection_key(self, api: str, plan: MigrationPlan) -> Tuple[int, ...]:
        """Placements of only the components this API touches — its plan projection."""
        return tuple(plan[c] for c in self._touched[api])

    def edge_delays(self, api: str, plan: MigrationPlan) -> Dict[Edge, float]:
        """Δ per invocation edge of one API under ``plan`` (Eq. 2), projection-cached."""
        if api not in self._traces:
            return {}
        key = (api, self.projection_key(api, plan))
        cached = self._delays_by_projection.get(key)
        if cached is None:
            cached = self._compute_edge_delays(api, plan)
            self._delays_by_projection[key] = cached
        return dict(cached)

    def _compute_edge_delays(self, api: str, plan: Mapping[str, int]) -> Dict[Edge, float]:
        """Δ per edge given any component -> location mapping covering the API."""
        delays: Dict[Edge, float] = {}
        for caller, callee in self._edges.get(api, []):
            before = (self.baseline_plan[caller], self.baseline_plan[callee])
            after = (plan[caller], plan[callee])
            if before == after:
                continue
            req = self.footprint.request_bytes(api, caller, callee)
            resp = self.footprint.response_bytes(api, caller, callee)
            delta = self.network.extra_delay_ms(before, after, req, resp)
            if delta > 0.0:
                delays[(caller, callee)] = delta
        return delays

    @staticmethod
    def _signature(delays: Mapping[Edge, float]) -> DelaySignature:
        return tuple(sorted(delays.items()))

    def _trace_fingerprint(self, api: str) -> str:
        """Content fingerprint of one API's sample trace set (lazy, family-shared)."""
        fingerprint = self._trace_fps.get(api)
        if fingerprint is None:
            fingerprint = fingerprint_traces(self._traces[api])
            self._trace_fps[api] = fingerprint
        return fingerprint

    def _compiled_set(self, api: str) -> CompiledTraceSet:
        compiled = self._compiled.get(api)
        if compiled is None:
            if self._artifact_cache is not None:
                # A compiled set is a pure function of (trace contents, edge order):
                # equal key ⇒ bitwise-equal arrays, so sharing the physical object
                # across models/tenants is sound.
                key = ("compiled", self._trace_fingerprint(api), tuple(self._edges[api]))
                compiled = self._artifact_cache.get_or_build(
                    key, lambda: CompiledTraceSet(self._traces[api], self._edges[api])
                )
            else:
                compiled = CompiledTraceSet(self._traces[api], self._edges[api])
            self._compiled[api] = compiled
        return compiled

    def _replay_reference(self, api: str, delays: Mapping[Edge, float]) -> List[float]:
        return [
            DelayInjector(trace).injected_latency_ms(delays) for trace in self._traces[api]
        ]

    def _store_signature(
        self, api: str, signature: DelaySignature, latencies: List[float]
    ) -> Tuple[List[float], float]:
        entry = (latencies, float(statistics.fmean(latencies)))
        self._by_signature[(api, signature)] = entry
        return entry

    def _resolve(self, api: str, plan: MigrationPlan) -> Tuple[List[float], float]:
        """(latencies, mean) of one API under one plan, through both cache layers."""
        delays = self.edge_delays(api, plan)
        signature = self._signature(delays)
        cached = self._by_signature.get((api, signature))
        if cached is None:
            if self.engine != "reference":
                # All vectorized engines resolve scalar queries through the float64
                # compiled oracle — fused engines only change matrix evaluation.
                latencies = self._compiled_set(api).latencies(delays)
            else:
                latencies = self._replay_reference(api, delays)
            cached = self._store_signature(api, signature, latencies)
        return cached

    def _resolve_pending(
        self, api: str, pending: Mapping[DelaySignature, Dict[Edge, float]]
    ) -> None:
        """Replay every cache-missing delay signature of one API (batched when compiled)."""
        if not pending:
            return
        if self.engine == "reference":
            for signature, delays in pending.items():
                self._store_signature(api, signature, self._replay_reference(api, delays))
            return
        compiled = self._compiled_set(api)
        signatures = list(pending)
        rows = compiled.delta_rows([pending[s] for s in signatures])
        matrix = compiled.replay_batch(rows)
        for signature, row in zip(signatures, matrix):
            self._store_signature(api, signature, [float(v) for v in row])

    # -- batched evaluation --------------------------------------------------------------------
    def prime(self, plans: Sequence[MigrationPlan]) -> None:
        """Resolve a batch of plans in one pass: dedup → project → vectorized replay.

        After priming, per-plan queries (:meth:`qperf`, :meth:`estimate`, ...) for the
        same plans are pure cache hits.  With the reference engine this degrades to the
        per-plan walk, preserving semantics.
        """
        if not plans:
            return
        for api in self._apis:
            pending: Dict[DelaySignature, Dict[Edge, float]] = {}
            seen_projections = set()
            for plan in plans:
                projection = self.projection_key(api, plan)
                if projection in seen_projections:
                    continue
                seen_projections.add(projection)
                delays = self.edge_delays(api, plan)
                signature = self._signature(delays)
                if (api, signature) in self._by_signature or signature in pending:
                    continue
                pending[signature] = delays
            self._resolve_pending(api, pending)

    # -- plan-matrix pipeline ---------------------------------------------------------------
    def _columns_for(self, components: Sequence[str]) -> Dict[str, np.ndarray]:
        """Per-API touched-component column indices for one matrix component order."""
        key = tuple(components)
        cached = self._projection_columns.get(key)
        if cached is None:
            column_of = {c: i for i, c in enumerate(key)}
            cached = {
                api: np.asarray([column_of[c] for c in touched], dtype=np.intp)
                for api, touched in self._touched.items()
            }
            self._projection_columns[key] = cached
        return cached

    def _delta_table(
        self, api: str, n_locations: int
    ) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Δ of every (edge, caller location, callee location) triple of one API.

        Returns ``(size, table, missing, src_pos, dst_pos)``: ``table[e, a, b]`` is
        the scalar :meth:`_compute_edge_delays` value for edge ``e`` relocated to
        ``(a, b)`` (zero where the pair does not move or the Δ is non-positive),
        ``missing`` flags pairs the network has no link for, and ``src_pos``/
        ``dst_pos`` map each edge endpoint into the API's touched-component axis.
        Built once per API and regrown when a higher location id appears.
        """
        cached = self._delta_tables.get(api)
        if cached is None or cached[0] < n_locations:
            if self._artifact_cache is not None:
                # Content-complete key: a table is a function of the edge list, the
                # touched components' baseline placements, the per-edge footprint
                # bytes, the network links and the location count.  Consumers only
                # ever read the arrays, so cross-model sharing is safe.
                edges = self._edges[api]
                key = (
                    "delta",
                    api,
                    tuple(edges),
                    tuple(self.baseline_plan[c] for c in self._touched[api]),
                    tuple(
                        (
                            self.footprint.request_bytes(api, caller, callee),
                            self.footprint.response_bytes(api, caller, callee),
                        )
                        for caller, callee in edges
                    ),
                    fingerprint_network(self.network),
                    n_locations,
                )
                cached = self._artifact_cache.get_or_build(
                    key, lambda: self._build_delta_table(api, n_locations)
                )
            else:
                cached = self._build_delta_table(api, n_locations)
            self._delta_tables[api] = cached
        return cached

    def _build_delta_table(
        self, api: str, n_locations: int
    ) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        edges = self._edges[api]
        table = np.zeros((len(edges), n_locations, n_locations), dtype=np.float64)
        missing = np.zeros(table.shape, dtype=bool)
        for index, (caller, callee) in enumerate(edges):
            before = (self.baseline_plan[caller], self.baseline_plan[callee])
            request = self.footprint.request_bytes(api, caller, callee)
            response = self.footprint.response_bytes(api, caller, callee)
            for caller_loc in range(n_locations):
                for callee_loc in range(n_locations):
                    after = (caller_loc, callee_loc)
                    if after == before:
                        continue
                    try:
                        table[index, caller_loc, callee_loc] = (
                            self.network.extra_delay_ms(
                                before, after, request, response
                            )
                        )
                    except KeyError:
                        missing[index, caller_loc, callee_loc] = True
        position = {c: i for i, c in enumerate(self._touched[api])}
        src_pos = np.asarray([position[c] for c, _ in edges], dtype=np.intp)
        dst_pos = np.asarray([position[c] for _, c in edges], dtype=np.intp)
        return (n_locations, table, missing, src_pos, dst_pos)

    def _delta_rows_for(
        self, api: str, matrix: np.ndarray, columns: np.ndarray
    ) -> np.ndarray:
        """Per-plan Δ rows of one API over a plan matrix: ``(plans, api edges)``.

        Projects the matrix onto the API's touched columns and gathers each plan's
        per-edge Δ row from the API's delta table (zero-clipped, exactly the
        ``delta_row`` values of the scalar path).
        """
        edges = self._edges[api]
        if edges and columns.size:
            sub = matrix[:, columns]
            _size, table, missing, src_pos, dst_pos = self._delta_table(
                api, int(matrix.max()) + 1
            )
            edge_axis = np.arange(len(edges))
            src_locs = sub[:, src_pos]
            dst_locs = sub[:, dst_pos]
            deltas = table[edge_axis[None, :], src_locs, dst_locs]
            if missing.any() and missing[edge_axis[None, :], src_locs, dst_locs].any():
                # Mimic the scalar error for a plan using a linkless pair.
                bad = int(
                    np.nonzero(
                        missing[edge_axis[None, :], src_locs, dst_locs].any(axis=1)
                    )[0][0]
                )
                self._compute_edge_delays(
                    api, dict(zip(self._touched[api], (int(v) for v in sub[bad])))
                )
            return np.where(deltas > 0.0, deltas, 0.0)
        return np.zeros((matrix.shape[0], 0), dtype=np.float64)

    def _fused_delta_rows(
        self,
        matrix: np.ndarray,
        components: Sequence[str],
        program: FusedProgram,
    ) -> Optional[np.ndarray]:
        """Whole-row fused Δ gather: every API's Δ rows in one table lookup.

        Concatenates the per-API Δ tables along the fused edge axis (cached per
        component order, regrown with the location count) so a full
        ``(plans, total_edges)`` Δ matrix is one fancy-indexed gather instead of
        one :meth:`_delta_rows_for` call per API.  Segment ``lo:hi`` of the result
        is bitwise identical to the per-API gather — same table entries, same
        zero clip.  Returns None when a plan touches a linkless location pair;
        callers then fall back to the per-API path, which raises the exact
        missing-link error of the scalar pipeline.
        """
        n_locations = int(matrix.max()) + 1
        key = tuple(components)
        cached = self._fused_deltas.get(key)
        if cached is None or cached[0] < n_locations:
            for api in self._apis:
                table_cached = self._delta_tables.get(api)
                if table_cached is not None:
                    n_locations = max(n_locations, table_cached[0])
            columns = self._columns_for(components)
            tables: List[np.ndarray] = []
            missing_parts: List[np.ndarray] = []
            src_cols: List[np.ndarray] = []
            dst_cols: List[np.ndarray] = []
            for api in self._apis:
                _size, table, missing, src_pos, dst_pos = self._delta_table(
                    api, n_locations
                )
                tables.append(table)
                missing_parts.append(missing)
                src_cols.append(columns[api][src_pos])
                dst_cols.append(columns[api][dst_pos])
            fused_missing = np.concatenate(missing_parts)
            cached = (
                n_locations,
                np.concatenate(tables),
                fused_missing if fused_missing.any() else None,
                np.concatenate(src_cols),
                np.concatenate(dst_cols),
                np.arange(program.total_edges)[None, :],
            )
            self._fused_deltas[key] = cached
        _size, table, missing, src, dst, edge_axis = cached
        src_locs = matrix[:, src]
        dst_locs = matrix[:, dst]
        deltas = table[edge_axis, src_locs, dst_locs]
        if missing is not None and missing[edge_axis, src_locs, dst_locs].any():
            return None
        return np.where(deltas > 0.0, deltas, 0.0)

    def _means_for(
        self, api: str, matrix: np.ndarray, columns: np.ndarray
    ) -> np.ndarray:
        """Per-plan mean injected latency of one API over a plan matrix.

        Projects the matrix onto the API's touched columns, gathers each distinct
        projection's per-edge Δ row from the API's delta table (all cache-missing
        signatures replay in one vectorized batch) and broadcasts the cached means
        back to the plan axis.
        """
        edges = self._edges[api]
        rows = self._delta_rows_for(api, matrix, columns)
        # Dedup at the Δ-row level (the cut-edge signature), keyed by the raw row
        # bytes: the thousands of plans of a generation collapse to the distinct rows
        # that actually replay, and repeat generations hit the mean cache outright.
        # (Rows are built with a +0.0 fill and no NaNs, so byte equality is value
        # equality.)
        cache = self._row_means.setdefault(api, {})
        n_plans = rows.shape[0]
        row_size = rows.shape[1] * rows.itemsize
        buffer = rows.tobytes()
        keys = [buffer[p * row_size : (p + 1) * row_size] for p in range(n_plans)]
        means = np.empty(n_plans, dtype=np.float64)
        unknown: Dict[bytes, int] = {}
        for plan_index, key in enumerate(keys):
            cached = cache.get(key)
            if cached is None and key not in unknown:
                unknown[key] = plan_index
        if unknown:
            distinct = list(unknown.values())
            if self.engine != "reference":
                replayed = self._compiled_set(api).replay_batch(rows[distinct])
            else:
                replayed = [
                    self._replay_reference(
                        api,
                        {
                            edges[i]: float(rows[index, i])
                            for i in np.nonzero(rows[index])[0]
                        },
                    )
                    for index in distinct
                ]
            for key, latencies in zip(unknown, replayed):
                # fmean is fsum-based, so feeding it np.float64 values directly is
                # bit-identical to _store_signature's float-converted arithmetic —
                # mixed scalar/batched use of one evaluator yields the same means.
                cache[key] = float(statistics.fmean(latencies))
        for plan_index, key in enumerate(keys):
            means[plan_index] = cache[key]
        return means

    # -- fused cross-API pipeline -----------------------------------------------------------
    @property
    def is_fused(self) -> bool:
        """Whether plan matrices are evaluated through the fused cross-API program."""
        return self.engine in _FUSED_ENGINES

    def _fused_program(self) -> FusedProgram:
        """The cross-API fused program, built lazily and shared with every view."""
        program = self._fused_state.get("program")
        if program is None:
            if self._artifact_cache is not None:
                # The program is determined by the per-API compiled identities plus
                # the API order, so the fused key composes the per-API keys.
                key = (
                    "fused",
                    tuple(self._apis),
                    tuple(self._trace_fingerprint(api) for api in self._apis),
                )
                program = self._artifact_cache.get_or_build(
                    key,
                    lambda: FusedProgram(
                        {api: self._compiled_set(api) for api in self._apis},
                        self._apis,
                    ),
                )
            else:
                program = FusedProgram(
                    {api: self._compiled_set(api) for api in self._apis}, self._apis
                )
            self._fused_state["program"] = program
        return program

    def _fused_mean_cache(self, api: str) -> Dict[bytes, float]:
        """The Δ-row-bytes -> mean cache a fused replay fills for one API.

        float64 fused engines share ``_row_means`` with the compiled path (their
        replayed segments are bitwise identical, so the cached numbers coincide);
        ``fused32`` keeps its approximate means in a separate family-shared cache.
        """
        if self.engine == "fused32":
            caches = self._fused_state.setdefault("row_means32", {})
            return caches.setdefault(api, {})
        return self._row_means.setdefault(api, {})

    def _fused_replay(self, program: FusedProgram, rows: np.ndarray) -> np.ndarray:
        if self.engine == "fused32":
            return program.replay32(rows)
        if self.engine == "fused-jit":
            return program.replay_jit(rows)
        return program.replay(rows)

    def impact_matrices_multi(
        self,
        views: Sequence["ApiPerformanceModel"],
        plan_matrix: np.ndarray,
        components: Sequence[str],
    ) -> Dict[int, np.ndarray]:
        """Impact matrices of every distinct view over one plan matrix, in one pass.

        The fused engines' core: each distinct view's per-API Δ rows are gathered
        into one ``(plans, total_edges)`` fused matrix, every cache-missing
        ``(api, Δ-row)`` combination across *all* views and APIs replays in a single
        fused kernel launch, and the per-API mean caches broadcast the results back.
        Returns ``{id(view): (apis, plans) impact matrix}`` — the cache layout of
        the robust-evaluation pipeline.  Payload-neutral APIs of a scenario view
        produce byte-identical Δ segments, so they hit the cache instead of
        replaying, which subsumes the ``base_impacts`` row-copy optimization of
        :meth:`impact_matrix`.
        """
        matrix = np.asarray(plan_matrix, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(components):
            raise ValueError("plan matrix must be (plans, len(components))")
        distinct: List["ApiPerformanceModel"] = []
        for view in views:
            if all(view is not seen for seen in distinct):
                distinct.append(view)
        n_plans = matrix.shape[0]
        n_apis = len(self._apis)
        if n_plans == 0:
            return {
                id(view): np.empty((n_apis, 0), dtype=np.float64) for view in distinct
            }
        program = self._fused_program()
        caches = {api: self._fused_mean_cache(api) for api in self._apis}
        # Cache-missing (api, Δ-row) tasks, deduped per API across every view —
        # the same projection dedup the compiled path exploits.  API segments of
        # the fused program never interact, so independent tasks of different APIs
        # pack into the *same* replay row: the batch height is the largest per-API
        # task count, not the number of distinct plans.
        pending_keys: Dict[str, List[bytes]] = {api: [] for api in self._apis}
        pending_fill: Dict[str, List[Tuple[np.ndarray, List[int]]]] = {
            api: [] for api in self._apis
        }
        # An API a view's scenario does not payload-scale has Δ rows byte-identical
        # to the base model's, so its gather, plan keys and mean vector are shared
        # across every such view (the fused analogue of impact_matrix's
        # base_impacts row copy).  Views on a faulted network report
        # _changed_apis=None and opt out of the sharing.
        segment_keys: Dict[object, List[bytes]] = {}
        view_groups: List[Tuple["ApiPerformanceModel", List[object]]] = []
        for view in distinct:
            columns: Optional[Dict[str, np.ndarray]] = None
            groups: List[object] = []
            fresh: List[Tuple[str, object]] = []
            for api in self._apis:
                shared = (
                    view._changed_apis is not None and api not in view._changed_apis
                )
                group = api if shared else (api, id(view))
                groups.append(group)
                if group not in segment_keys:
                    fresh.append((api, group))
            view_groups.append((view, groups))
            # A view needing every API (typically the base view) gathers all its
            # Δ rows in one fused table lookup; views needing only their changed
            # APIs gather per API.
            full_rows = (
                view._fused_delta_rows(matrix, components, program)
                if len(fresh) == n_apis
                else None
            )
            if full_rows is not None:
                # One serialization of the whole fused matrix; per-API keys are
                # byte slices of it (C-contiguous, so segment columns are
                # contiguous within each row's byte span).
                row_bytes = full_rows.tobytes()
                row_size = full_rows.shape[1] * 8
            for api, group in fresh:
                if full_rows is not None:
                    lo, hi = program.edge_segment(api)
                    seg_rows = full_rows[:, lo:hi]
                    keys = [
                        row_bytes[plan * row_size + lo * 8 : plan * row_size + hi * 8]
                        for plan in range(n_plans)
                    ]
                else:
                    if columns is None:
                        columns = view._columns_for(components)
                    seg_rows = np.ascontiguousarray(
                        view._delta_rows_for(api, matrix, columns[api])
                    )
                    buffer = seg_rows.tobytes()
                    width = seg_rows.shape[1] * 8  # float64 bytes per Δ segment
                    keys = [
                        buffer[plan * width : (plan + 1) * width]
                        for plan in range(n_plans)
                    ]
                segment_keys[group] = keys
                cache = caches[api]
                queued = set(pending_keys[api])
                misses: List[int] = []
                for plan, key in enumerate(keys):
                    if key not in cache and key not in queued:
                        queued.add(key)
                        misses.append(plan)
                if misses:
                    pending_fill[api].append((seg_rows, misses))
                    pending_keys[api].extend(keys[plan] for plan in misses)
        n_batch = max((len(keys) for keys in pending_keys.values()), default=0)
        if n_batch:
            batch_dtype = np.float32 if self.engine == "fused32" else np.float64
            batch = np.zeros((n_batch, program.total_edges), dtype=batch_dtype)
            for api, blocks in pending_fill.items():
                lo, hi = program.edge_segment(api)
                index = 0
                for seg_rows, plans in blocks:
                    batch[index : index + len(plans), lo:hi] = seg_rows[plans]
                    index += len(plans)
            latencies = self._fused_replay(program, batch)
            for api, keys in pending_keys.items():
                if not keys:
                    continue
                t0, t1 = program.trace_segment(api)
                cache = caches[api]
                if self.engine == "fused32":
                    # The float32 tier is bound by the rtol contract, not bitwise
                    # identity — one vectorized float64-accumulated mean per API.
                    means = latencies[: len(keys), t0:t1].mean(
                        axis=1, dtype=np.float64
                    )
                    for index, key in enumerate(keys):
                        cache[key] = float(means[index])
                else:
                    for index, key in enumerate(keys):
                        # fmean is fsum-based over np.float64 scalars, matching
                        # _means_for bit for bit on the float64 engines.
                        cache[key] = float(statistics.fmean(latencies[index, t0:t1]))
        # One impact row per distinct Δ segment; views sharing a segment share it.
        impact_rows: Dict[object, np.ndarray] = {}
        for index, api in enumerate(self._apis):
            baseline = self._baseline_mean[api]
            cache = caches[api]
            for group, keys in segment_keys.items():
                if (group if isinstance(group, str) else group[0]) != api:
                    continue
                if baseline > 0:
                    row = np.fromiter(
                        (cache[key] for key in keys),
                        dtype=np.float64,
                        count=n_plans,
                    )
                    row /= baseline
                else:
                    row = np.ones(n_plans, dtype=np.float64)
                impact_rows[group] = row
        results: Dict[int, np.ndarray] = {}
        for view, groups in view_groups:
            impacts = np.empty((n_apis, n_plans), dtype=np.float64)
            for index, group in enumerate(groups):
                impacts[index] = impact_rows[group]
            results[id(view)] = impacts
        return results

    def impact_matrix(
        self,
        plan_matrix: np.ndarray,
        components: Sequence[str],
        base_impacts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-API impact factors of a whole plan matrix: ``(apis, plans)``.

        Row ``i`` is API ``apis[i]``'s ``Lat(A;p)/Lat(A)`` for every plan.  The
        factors depend only on the placements (through this model's footprint), not
        on trace weights, so robust evaluation computes them once per performance
        view and reuses them for every scenario's weighting.

        ``base_impacts`` is the base model's impact matrix for the *same* plan
        matrix: when this view knows which APIs its footprint actually changes
        (``scenario_view(..., changed_apis=...)``), unchanged APIs' rows are copied
        from it — their Δ rows would be byte-identical anyway.
        """
        if self.is_fused:
            # Fused engines score matrices through the cross-API program; the
            # byte-keyed mean caches subsume the base_impacts row copy.
            return self.impact_matrices_multi([self], plan_matrix, components)[id(self)]
        matrix = np.asarray(plan_matrix, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(components):
            raise ValueError("plan matrix must be (plans, len(components))")
        columns = self._columns_for(components)
        impacts = np.empty((len(self._apis), matrix.shape[0]), dtype=np.float64)
        if matrix.shape[0] == 0:
            return impacts
        reusable = (
            self._changed_apis
            if base_impacts is not None and self._changed_apis is not None
            else None
        )
        for index, api in enumerate(self._apis):
            if reusable is not None and api not in reusable:
                impacts[index] = base_impacts[index]
                continue
            baseline = self._baseline_mean[api]
            if baseline > 0:
                impacts[index] = self._means_for(api, matrix, columns[api]) / baseline
            else:
                impacts[index] = 1.0
        return impacts

    def qperf_from_impacts(
        self,
        impacts: np.ndarray,
        api_weights: Optional[Mapping[str, float]] = None,
    ) -> np.ndarray:
        """Collapse an :meth:`impact_matrix` into QPerf under one trace-weight vector.

        Accumulates API by API in the scalar iteration order, so the result is
        bitwise equal to :meth:`qperf_batch` (and per-plan ``qperf``) whatever the
        weights.  The float32 tier is bound by the rtol contract instead and takes
        one BLAS-reassociated weighted sum."""
        if self.engine == "fused32":
            weights = np.fromiter(
                (
                    api_weights.get(api, 1.0) if api_weights else 1.0
                    for api in self._apis
                ),
                dtype=np.float64,
                count=len(self._apis),
            )
            return (weights @ impacts) / len(self._apis)
        totals = np.zeros(impacts.shape[1], dtype=np.float64)
        for index, api in enumerate(self._apis):
            weight = api_weights.get(api, 1.0) if api_weights else 1.0
            totals += weight * impacts[index]
        return totals / len(self._apis)

    def qperf_batch(
        self,
        plan_matrix: np.ndarray,
        components: Sequence[str],
        api_weights: Optional[Mapping[str, float]] = None,
    ) -> np.ndarray:
        """QPerf for a whole plan matrix at once — bitwise equal to per-plan ``qperf``.

        ``plan_matrix`` is ``(plans, len(components))`` integer location ids; per-plan
        totals accumulate API by API in the scalar iteration order, so every entry
        matches ``qperf`` of the corresponding plan bit for bit.
        """
        return self.qperf_from_impacts(
            self.impact_matrix(plan_matrix, components), api_weights
        )

    # -- estimates ------------------------------------------------------------------------
    def estimate_latencies(self, api: str, plan: MigrationPlan) -> List[float]:
        """Injected latency of every sample trace of one API under ``plan``."""
        if api not in self._traces:
            raise KeyError(f"no traces available for API {api!r}")
        latencies, _mean = self._resolve(api, plan)
        return list(latencies)

    def estimate(self, api: str, plan: MigrationPlan) -> PerformanceEstimate:
        if api not in self._traces:
            raise KeyError(f"no traces available for API {api!r}")
        latencies, mean = self._resolve(api, plan)
        return PerformanceEstimate(
            api=api,
            baseline_mean_ms=self._baseline_mean[api],
            estimated_mean_ms=mean,
            estimated_latencies_ms=list(latencies),
        )

    def estimate_all(self, plan: MigrationPlan) -> Dict[str, PerformanceEstimate]:
        return {api: self.estimate(api, plan) for api in self.apis}

    def _impact_factor(self, api: str, plan: MigrationPlan) -> float:
        baseline = self._baseline_mean[api]
        if baseline <= 0:
            return 1.0
        _latencies, mean = self._resolve(api, plan)
        return mean / baseline

    def qperf(
        self, plan: MigrationPlan, api_weights: Optional[Mapping[str, float]] = None
    ) -> float:
        """QPerf(p) = (1/|A|) Σ_A τ_A Lat(A;p)/Lat(A) — lower is better (≥ ~1)."""
        apis = self._apis
        total = 0.0
        for api in apis:
            weight = api_weights.get(api, 1.0) if api_weights else 1.0
            total += weight * self._impact_factor(api, plan)
        return total / len(apis)

    def impact_factors(self, plan: MigrationPlan) -> Dict[str, float]:
        """Per-API slowdown factors (used by Figures 11, 12 and 16)."""
        return {api: self._impact_factor(api, plan) for api in self.apis}
