"""API performance modeling via delay injection (Section 4.1.1, Figure 6).

Given a migration plan, Atlas previews each API's end-to-end latency without executing
the plan: it takes traces recorded under the current placement and *injects* the extra
network delay every invocation edge would experience if its caller and callee ended up
in different datacenters.  The injected delay Δ (Eq. 2) combines the change in link
latency and the change in serialization time of the edge's learned network footprint.

The cascade rules follow the paper:

* a delayed child shifts its own start; its execution duration is preserved;
* siblings running in parallel with it are unaffected; the next sequential operation
  starts after the (possibly delayed) completion of all foreground predecessors, keeping
  its original trigger gap;
* background operations inherit the shift of their trigger point but never extend the
  root span, so delaying them does not change the API latency.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.network import NetworkModel
from ..cluster.placement import MigrationPlan
from ..learning.api_profile import classify_background, classify_sibling
from ..learning.footprint import NetworkFootprint
from ..apps.model import ExecutionMode
from ..telemetry.tracing import Span, Trace

__all__ = ["DelayInjector", "ApiPerformanceModel", "PerformanceEstimate"]


class DelayInjector:
    """Applies per-edge delays to one trace and recomputes all span timings."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def inject(self, edge_delays: Mapping[Tuple[str, str], float]) -> Trace:
        """Return a new trace with ``edge_delays`` (caller, callee) -> Δ ms applied."""
        root = self.trace.root
        new_spans: List[Span] = []
        self._adjust(root, root.start_ms, edge_delays, new_spans)
        return self.trace.with_spans(new_spans)

    def injected_latency_ms(self, edge_delays: Mapping[Tuple[str, str], float]) -> float:
        """End-to-end latency after injection (root span duration of the new trace)."""
        return self.inject(edge_delays).latency_ms

    # -- internals -----------------------------------------------------------------------
    def _adjust(
        self,
        span: Span,
        new_start: float,
        edge_delays: Mapping[Tuple[str, str], float],
        out: List[Span],
    ) -> float:
        """Recompute ``span`` starting at ``new_start``; returns its new end time."""
        children = self.trace.children(span.span_id)
        if not children:
            out.append(span.shifted(new_start))
            return new_start + span.duration_ms

        # Foreground children processed so far: (orig_end, new_end, span).
        foreground: List[Tuple[float, float, Span]] = []
        last_fg_orig_end = span.start_ms
        last_fg_new_end = new_start

        for child in children:
            background = classify_background(child, span)
            # Reference point: the latest original end among previously processed
            # foreground children that do NOT run in parallel with this child, or the
            # parent start when there is none.
            ref_orig = span.start_ms
            ref_new = new_start
            for orig_end, new_end, prev in foreground:
                if classify_sibling(prev, child) is ExecutionMode.PARALLEL:
                    continue
                if orig_end > ref_orig:
                    ref_orig, ref_new = orig_end, new_end
            gap = child.start_ms - ref_orig
            delta = edge_delays.get((span.component, child.component), 0.0)
            child_new_start = ref_new + gap + max(delta, 0.0)
            child_new_end = self._adjust(child, child_new_start, edge_delays, out)
            if not background:
                foreground.append((child.end_ms, child_new_end, child))
                if child.end_ms > last_fg_orig_end:
                    last_fg_orig_end = child.end_ms
                    last_fg_new_end = child_new_end

        if foreground:
            # Latest foreground completion, original and new, defines the tail reference.
            tail_ref_orig = max(orig_end for orig_end, _new, _s in foreground)
            tail_ref_new = max(new_end for _orig, new_end, _s in foreground)
        else:
            tail_ref_orig, tail_ref_new = span.start_ms, new_start
        tail_gap = span.end_ms - tail_ref_orig
        new_end = tail_ref_new + max(tail_gap, 0.0)
        out.append(span.shifted(new_start, duration_ms=new_end - new_start))
        return new_end


@dataclass
class PerformanceEstimate:
    """Latency preview of one API under one plan."""

    api: str
    baseline_mean_ms: float
    estimated_mean_ms: float
    estimated_latencies_ms: List[float]

    @property
    def impact_factor(self) -> float:
        """``Lat(A; p) / Lat(A)`` — how many times slower the API becomes."""
        if self.baseline_mean_ms <= 0:
            return 1.0
        return self.estimated_mean_ms / self.baseline_mean_ms


class ApiPerformanceModel:
    """Estimates per-API latency and the QPerf objective for any migration plan."""

    def __init__(
        self,
        traces_by_api: Mapping[str, Sequence[Trace]],
        footprint: NetworkFootprint,
        network: NetworkModel,
        baseline_plan: MigrationPlan,
        traces_per_api: int = 50,
    ) -> None:
        if traces_per_api <= 0:
            raise ValueError("traces_per_api must be positive")
        self.footprint = footprint
        self.network = network
        self.baseline_plan = baseline_plan
        self._traces: Dict[str, List[Trace]] = {
            api: list(traces)[-traces_per_api:]
            for api, traces in traces_by_api.items()
            if traces
        }
        if not self._traces:
            raise ValueError("performance model needs at least one trace")
        self._baseline_mean: Dict[str, float] = {
            api: float(statistics.fmean(t.latency_ms for t in traces))
            for api, traces in self._traces.items()
        }
        # Invocation edges per API (unioned over sample traces).
        self._edges: Dict[str, List[Tuple[str, str]]] = {}
        for api, traces in self._traces.items():
            edges = set()
            for trace in traces:
                edges.update(trace.invocation_edges())
            self._edges[api] = sorted(edges)
        # Cache: (api, canonical delay key) -> list of injected latencies.
        self._cache: Dict[Tuple[str, Tuple[Tuple[Tuple[str, str], float], ...]], List[float]] = {}

    # -- public API ------------------------------------------------------------------------
    @property
    def apis(self) -> List[str]:
        return sorted(self._traces)

    def baseline_latency_ms(self, api: str) -> float:
        return self._baseline_mean[api]

    def invocation_edges(self) -> List[Tuple[str, str]]:
        """Union of (caller, callee) invocation edges over all profiled APIs."""
        edges = set()
        for api_edges in self._edges.values():
            edges.update(api_edges)
        return sorted(edges)

    def api_components(self) -> Dict[str, List[str]]:
        """Components appearing in each API's traces (callers and callees)."""
        result: Dict[str, List[str]] = {}
        for api, edges in self._edges.items():
            members = set()
            for caller, callee in edges:
                members.add(caller)
                members.add(callee)
            result[api] = sorted(members)
        return result

    def edge_delays(self, api: str, plan: MigrationPlan) -> Dict[Tuple[str, str], float]:
        """Δ per invocation edge of one API under ``plan`` (Eq. 2)."""
        delays: Dict[Tuple[str, str], float] = {}
        for caller, callee in self._edges.get(api, []):
            before = (self.baseline_plan[caller], self.baseline_plan[callee])
            after = (plan[caller], plan[callee])
            if before == after:
                continue
            req = self.footprint.request_bytes(api, caller, callee)
            resp = self.footprint.response_bytes(api, caller, callee)
            delta = self.network.extra_delay_ms(before, after, req, resp)
            if delta > 0.0:
                delays[(caller, callee)] = delta
        return delays

    def estimate_latencies(self, api: str, plan: MigrationPlan) -> List[float]:
        """Injected latency of every sample trace of one API under ``plan``."""
        if api not in self._traces:
            raise KeyError(f"no traces available for API {api!r}")
        delays = self.edge_delays(api, plan)
        key = (api, tuple(sorted((edge, round(d, 4)) for edge, d in delays.items())))
        cached = self._cache.get(key)
        if cached is not None:
            return list(cached)
        latencies = [
            DelayInjector(trace).injected_latency_ms(delays) for trace in self._traces[api]
        ]
        self._cache[key] = latencies
        return list(latencies)

    def estimate(self, api: str, plan: MigrationPlan) -> PerformanceEstimate:
        latencies = self.estimate_latencies(api, plan)
        return PerformanceEstimate(
            api=api,
            baseline_mean_ms=self._baseline_mean[api],
            estimated_mean_ms=float(statistics.fmean(latencies)),
            estimated_latencies_ms=latencies,
        )

    def estimate_all(self, plan: MigrationPlan) -> Dict[str, PerformanceEstimate]:
        return {api: self.estimate(api, plan) for api in self.apis}

    def qperf(
        self, plan: MigrationPlan, api_weights: Optional[Mapping[str, float]] = None
    ) -> float:
        """QPerf(p) = (1/|A|) Σ_A τ_A Lat(A;p)/Lat(A) — lower is better (≥ ~1)."""
        apis = self.apis
        total = 0.0
        for api in apis:
            weight = api_weights.get(api, 1.0) if api_weights else 1.0
            estimate = self.estimate(api, plan)
            total += weight * estimate.impact_factor
        return total / len(apis)

    def impact_factors(self, plan: MigrationPlan) -> Dict[str, float]:
        """Per-API slowdown factors (used by Figures 11, 12 and 16)."""
        return {api: self.estimate(api, plan).impact_factor for api in self.apis}
