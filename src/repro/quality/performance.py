"""API performance modeling via delay injection (Section 4.1.1, Figure 6).

Given a migration plan, Atlas previews each API's end-to-end latency without executing
the plan: it takes traces recorded under the current placement and *injects* the extra
network delay every invocation edge would experience if its caller and callee ended up
in different datacenters.  The injected delay Δ (Eq. 2) combines the change in link
latency and the change in serialization time of the edge's learned network footprint.

The cascade rules follow the paper:

* a delayed child shifts its own start; its execution duration is preserved;
* siblings running in parallel with it are unaffected; the next sequential operation
  starts after the (possibly delayed) completion of all foreground predecessors, keeping
  its original trigger gap;
* background operations inherit the shift of their trigger point but never extend the
  root span, so delaying them does not change the API latency.

**Compiled-replay architecture.**  Plan evaluation is the system's wall-clock cost (the
GA previews up to 10,000 plans per recommendation), so this module is organized around
three invariants:

* **Compile once, replay many** — each API's sample traces are compiled once into flat
  numpy arrays (:mod:`repro.quality.compiled`); injecting one plan's delays becomes a
  few vectorized array passes over all of the API's traces simultaneously, and a batch
  of plans replays as one ``(plans, edges)`` matrix.  The recursive
  :class:`DelayInjector` is kept as the reference oracle (``engine="reference"``) and
  the compiled engine is bitwise-identical to it, so either engine yields the same
  fixed-seed search trajectory.
* **Projection keys** — an API's latency depends only on the placements of the
  components its traces touch, so per-API results are cached by that *projection* of
  the plan: the thousands of GA plans that differ only in components an API never
  touches hit the cache instead of replaying.  Edge delays are further keyed by the
  cut-edge signature (the exact Δ map), which collapses distinct projections that
  induce identical delays.
* **Batched evaluation** — :meth:`ApiPerformanceModel.prime` resolves a whole
  generation of plans at once: dedup → project → one vectorized replay per API for all
  cache-missing delay signatures.  :class:`~repro.quality.evaluator.QualityEvaluator`
  drives it from ``evaluate_batch``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.network import NetworkModel
from ..cluster.placement import MigrationPlan
from ..learning.api_profile import classify_background, classify_sibling
from ..learning.footprint import NetworkFootprint
from ..apps.model import ExecutionMode
from ..telemetry.tracing import Span, Trace
from .compiled import CompiledTraceSet

__all__ = ["DelayInjector", "ApiPerformanceModel", "PerformanceEstimate"]

Edge = Tuple[str, str]
#: Canonical cache key for one plan's per-edge delays: the cut-edge signature.
DelaySignature = Tuple[Tuple[Edge, float], ...]


class DelayInjector:
    """Applies per-edge delays to one trace and recomputes all span timings.

    This is the recursive reference implementation of the cascade rules; the compiled
    engine (:mod:`repro.quality.compiled`) must match it bitwise and is validated
    against it by the property-based equivalence tests.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def inject(self, edge_delays: Mapping[Tuple[str, str], float]) -> Trace:
        """Return a new trace with ``edge_delays`` (caller, callee) -> Δ ms applied."""
        root = self.trace.root
        new_spans: List[Span] = []
        self._adjust(root, root.start_ms, edge_delays, new_spans)
        return self.trace.with_spans(new_spans)

    def injected_latency_ms(self, edge_delays: Mapping[Tuple[str, str], float]) -> float:
        """End-to-end latency after injection (root span duration of the new trace)."""
        return self.inject(edge_delays).latency_ms

    # -- internals -----------------------------------------------------------------------
    def _adjust(
        self,
        span: Span,
        new_start: float,
        edge_delays: Mapping[Tuple[str, str], float],
        out: List[Span],
    ) -> float:
        """Recompute ``span`` starting at ``new_start``; returns its new end time."""
        children = self.trace.children(span.span_id)
        if not children:
            out.append(span.shifted(new_start))
            return new_start + span.duration_ms

        # Foreground children processed so far: (orig_end, new_end, span).
        foreground: List[Tuple[float, float, Span]] = []
        last_fg_orig_end = span.start_ms
        last_fg_new_end = new_start

        for child in children:
            background = classify_background(child, span)
            # Reference point: the latest original end among previously processed
            # foreground children that do NOT run in parallel with this child, or the
            # parent start when there is none.
            ref_orig = span.start_ms
            ref_new = new_start
            for orig_end, new_end, prev in foreground:
                if classify_sibling(prev, child) is ExecutionMode.PARALLEL:
                    continue
                if orig_end > ref_orig:
                    ref_orig, ref_new = orig_end, new_end
            gap = child.start_ms - ref_orig
            delta = edge_delays.get((span.component, child.component), 0.0)
            child_new_start = ref_new + gap + max(delta, 0.0)
            child_new_end = self._adjust(child, child_new_start, edge_delays, out)
            if not background:
                foreground.append((child.end_ms, child_new_end, child))
                if child.end_ms > last_fg_orig_end:
                    last_fg_orig_end = child.end_ms
                    last_fg_new_end = child_new_end

        if foreground:
            # Latest foreground completion, original and new, defines the tail reference.
            tail_ref_orig = max(orig_end for orig_end, _new, _s in foreground)
            tail_ref_new = max(new_end for _orig, new_end, _s in foreground)
        else:
            tail_ref_orig, tail_ref_new = span.start_ms, new_start
        tail_gap = span.end_ms - tail_ref_orig
        new_end = tail_ref_new + max(tail_gap, 0.0)
        out.append(span.shifted(new_start, duration_ms=new_end - new_start))
        return new_end


@dataclass
class PerformanceEstimate:
    """Latency preview of one API under one plan."""

    api: str
    baseline_mean_ms: float
    estimated_mean_ms: float
    estimated_latencies_ms: List[float]

    @property
    def impact_factor(self) -> float:
        """``Lat(A; p) / Lat(A)`` — how many times slower the API becomes."""
        if self.baseline_mean_ms <= 0:
            return 1.0
        return self.estimated_mean_ms / self.baseline_mean_ms


class ApiPerformanceModel:
    """Estimates per-API latency and the QPerf objective for any migration plan.

    ``engine`` selects how cache-missing delay signatures are replayed: ``"compiled"``
    (default) uses the vectorized compiled trace sets, ``"reference"`` walks every
    trace with the recursive :class:`DelayInjector`.  Both engines share the same
    projection/signature caches and produce identical numbers.
    """

    def __init__(
        self,
        traces_by_api: Mapping[str, Sequence[Trace]],
        footprint: NetworkFootprint,
        network: NetworkModel,
        baseline_plan: MigrationPlan,
        traces_per_api: int = 50,
        engine: str = "compiled",
    ) -> None:
        if traces_per_api <= 0:
            raise ValueError("traces_per_api must be positive")
        if engine not in ("compiled", "reference"):
            raise ValueError("engine must be 'compiled' or 'reference'")
        self.footprint = footprint
        self.network = network
        self.baseline_plan = baseline_plan
        self.engine = engine
        self._traces: Dict[str, List[Trace]] = {
            api: list(traces)[-traces_per_api:]
            for api, traces in traces_by_api.items()
            if traces
        }
        if not self._traces:
            raise ValueError("performance model needs at least one trace")
        self._baseline_mean: Dict[str, float] = {
            api: float(statistics.fmean(t.latency_ms for t in traces))
            for api, traces in self._traces.items()
        }
        # Invocation edges per API (unioned over sample traces).
        self._edges: Dict[str, List[Edge]] = {}
        # Components each API touches — the projection axis of the plan caches.
        self._touched: Dict[str, List[str]] = {}
        for api, traces in self._traces.items():
            edges = set()
            for trace in traces:
                edges.update(trace.invocation_edges())
            self._edges[api] = sorted(edges)
            members = set()
            for caller, callee in self._edges[api]:
                members.add(caller)
                members.add(callee)
            self._touched[api] = sorted(members)
        self._apis = sorted(self._traces)
        # Compiled trace sets, built lazily on first replay of each API.
        self._compiled: Dict[str, CompiledTraceSet] = {}
        # Projection cache: (api, touched-component placements) -> per-edge Δ map.
        self._delays_by_projection: Dict[Tuple[str, Tuple[int, ...]], Dict[Edge, float]] = {}
        # Signature cache: (api, cut-edge signature) -> (latencies, mean latency).
        self._by_signature: Dict[Tuple[str, DelaySignature], Tuple[List[float], float]] = {}

    # -- public API ------------------------------------------------------------------------
    @property
    def apis(self) -> List[str]:
        return list(self._apis)

    def baseline_latency_ms(self, api: str) -> float:
        return self._baseline_mean[api]

    def invocation_edges(self) -> List[Edge]:
        """Union of (caller, callee) invocation edges over all profiled APIs."""
        edges = set()
        for api_edges in self._edges.values():
            edges.update(api_edges)
        return sorted(edges)

    def api_components(self) -> Dict[str, List[str]]:
        """Components appearing in each API's traces (callers and callees)."""
        return {api: list(members) for api, members in self._touched.items()}

    # -- projection / caching ----------------------------------------------------------------
    def projection_key(self, api: str, plan: MigrationPlan) -> Tuple[int, ...]:
        """Placements of only the components this API touches — its plan projection."""
        return tuple(plan[c] for c in self._touched[api])

    def edge_delays(self, api: str, plan: MigrationPlan) -> Dict[Edge, float]:
        """Δ per invocation edge of one API under ``plan`` (Eq. 2), projection-cached."""
        if api not in self._traces:
            return {}
        key = (api, self.projection_key(api, plan))
        cached = self._delays_by_projection.get(key)
        if cached is None:
            cached = self._compute_edge_delays(api, plan)
            self._delays_by_projection[key] = cached
        return dict(cached)

    def _compute_edge_delays(self, api: str, plan: MigrationPlan) -> Dict[Edge, float]:
        delays: Dict[Edge, float] = {}
        for caller, callee in self._edges.get(api, []):
            before = (self.baseline_plan[caller], self.baseline_plan[callee])
            after = (plan[caller], plan[callee])
            if before == after:
                continue
            req = self.footprint.request_bytes(api, caller, callee)
            resp = self.footprint.response_bytes(api, caller, callee)
            delta = self.network.extra_delay_ms(before, after, req, resp)
            if delta > 0.0:
                delays[(caller, callee)] = delta
        return delays

    @staticmethod
    def _signature(delays: Mapping[Edge, float]) -> DelaySignature:
        return tuple(sorted(delays.items()))

    def _compiled_set(self, api: str) -> CompiledTraceSet:
        compiled = self._compiled.get(api)
        if compiled is None:
            compiled = CompiledTraceSet(self._traces[api], self._edges[api])
            self._compiled[api] = compiled
        return compiled

    def _replay_reference(self, api: str, delays: Mapping[Edge, float]) -> List[float]:
        return [
            DelayInjector(trace).injected_latency_ms(delays) for trace in self._traces[api]
        ]

    def _store_signature(
        self, api: str, signature: DelaySignature, latencies: List[float]
    ) -> Tuple[List[float], float]:
        entry = (latencies, float(statistics.fmean(latencies)))
        self._by_signature[(api, signature)] = entry
        return entry

    def _resolve(self, api: str, plan: MigrationPlan) -> Tuple[List[float], float]:
        """(latencies, mean) of one API under one plan, through both cache layers."""
        delays = self.edge_delays(api, plan)
        signature = self._signature(delays)
        cached = self._by_signature.get((api, signature))
        if cached is None:
            if self.engine == "compiled":
                latencies = self._compiled_set(api).latencies(delays)
            else:
                latencies = self._replay_reference(api, delays)
            cached = self._store_signature(api, signature, latencies)
        return cached

    # -- batched evaluation --------------------------------------------------------------------
    def prime(self, plans: Sequence[MigrationPlan]) -> None:
        """Resolve a batch of plans in one pass: dedup → project → vectorized replay.

        After priming, per-plan queries (:meth:`qperf`, :meth:`estimate`, ...) for the
        same plans are pure cache hits.  With the reference engine this degrades to the
        per-plan walk, preserving semantics.
        """
        if not plans:
            return
        for api in self._apis:
            pending: Dict[DelaySignature, Dict[Edge, float]] = {}
            seen_projections = set()
            for plan in plans:
                projection = self.projection_key(api, plan)
                if projection in seen_projections:
                    continue
                seen_projections.add(projection)
                delays = self.edge_delays(api, plan)
                signature = self._signature(delays)
                if (api, signature) in self._by_signature or signature in pending:
                    continue
                pending[signature] = delays
            if not pending:
                continue
            if self.engine != "compiled":
                for signature, delays in pending.items():
                    self._store_signature(api, signature, self._replay_reference(api, delays))
                continue
            compiled = self._compiled_set(api)
            signatures = list(pending)
            rows = np.vstack([compiled.delta_row(pending[s]) for s in signatures])
            matrix = compiled.replay_batch(rows)
            for signature, row in zip(signatures, matrix):
                self._store_signature(api, signature, [float(v) for v in row])

    # -- estimates ------------------------------------------------------------------------
    def estimate_latencies(self, api: str, plan: MigrationPlan) -> List[float]:
        """Injected latency of every sample trace of one API under ``plan``."""
        if api not in self._traces:
            raise KeyError(f"no traces available for API {api!r}")
        latencies, _mean = self._resolve(api, plan)
        return list(latencies)

    def estimate(self, api: str, plan: MigrationPlan) -> PerformanceEstimate:
        if api not in self._traces:
            raise KeyError(f"no traces available for API {api!r}")
        latencies, mean = self._resolve(api, plan)
        return PerformanceEstimate(
            api=api,
            baseline_mean_ms=self._baseline_mean[api],
            estimated_mean_ms=mean,
            estimated_latencies_ms=list(latencies),
        )

    def estimate_all(self, plan: MigrationPlan) -> Dict[str, PerformanceEstimate]:
        return {api: self.estimate(api, plan) for api in self.apis}

    def _impact_factor(self, api: str, plan: MigrationPlan) -> float:
        baseline = self._baseline_mean[api]
        if baseline <= 0:
            return 1.0
        _latencies, mean = self._resolve(api, plan)
        return mean / baseline

    def qperf(
        self, plan: MigrationPlan, api_weights: Optional[Mapping[str, float]] = None
    ) -> float:
        """QPerf(p) = (1/|A|) Σ_A τ_A Lat(A;p)/Lat(A) — lower is better (≥ ~1)."""
        apis = self._apis
        total = 0.0
        for api in apis:
            weight = api_weights.get(api, 1.0) if api_weights else 1.0
            total += weight * self._impact_factor(api, plan)
        return total / len(apis)

    def impact_factors(self, plan: MigrationPlan) -> Dict[str, float]:
        """Per-API slowdown factors (used by Figures 11, 12 and 16)."""
        return {api: self._impact_factor(api, plan) for api in self.apis}
