"""Fingerprint-keyed LRU cache of compiled replay artifacts (the warm path).

Every :class:`~repro.recommend.advisor.Atlas` recommendation today compiles the
same artifacts from scratch: per-API :class:`~repro.quality.compiled.CompiledTraceSet`
programs, per-API Δ lookup tables and the merged
:class:`~repro.quality.fused.FusedProgram`.  The replay kernels made *evaluation*
fast, so for repeated / multi-tenant serving the compile step now dominates
recommend latency.  :class:`ArtifactCache` amortizes it: artifacts are keyed by
**content fingerprints** of exactly the inputs their construction consumes —
trace structure exports, edge orders, footprint bytes, baseline placements,
network links — so N tenants working off the same testbed share one physical
compile, and a changed input can never serve a stale artifact (the key changes
with the content).

The cache composes with :class:`~repro.quality.compiled.ShmArena`: a cached
``CompiledTraceSet`` or ``FusedProgram`` that one evaluator exports to shared
memory is the *same object* every other evaluator replays, so parallel islands
of different recommend calls map the same physical pages.

Soundness: every cached artifact is a deterministic pure function of its key's
content (compilation is replay-order preserving, IEEE-754 op order fixed), so a
cache hit is bitwise-identical to a fresh build.  The cache is strictly opt-in —
models built without one compile exactly as before, keeping the default cold
path fingerprint-locked.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.network import NetworkModel
    from ..learning.footprint import NetworkFootprint
    from ..serving.store import ArtifactStore
    from ..telemetry.tracing import Trace

__all__ = [
    "ArtifactCache",
    "fingerprint_traces",
    "fingerprint_network",
    "fingerprint_footprint",
]


def _sha(parts: Iterable[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def fingerprint_traces(traces: Sequence["Trace"]) -> str:
    """Content fingerprint of an ordered trace set — the compiled-replay identity.

    Hashes exactly what :class:`~repro.quality.compiled.CompiledTraceSet` consumes:
    each trace's :meth:`~repro.telemetry.tracing.Trace.structure` export in canonical
    span order (component, operation, ``repr``-exact start/duration floats), parent
    positions and root position.  Equal fingerprints therefore imply bitwise-equal
    compiled arrays; ids (trace/span ids) are excluded beyond their effect on the
    canonical order, so re-profiled-but-identical traces still hit.
    """
    parts = []
    for trace in traces:
        structure = trace.structure()
        parts.append(trace.api)
        parts.append(str(structure.root_index))
        parts.append(",".join(str(i) for i in structure.parent_index))
        for span in structure.spans:
            parts.append(
                f"{span.component}|{span.operation}|{span.start_ms!r}|{span.duration_ms!r}"
            )
    return _sha(parts)


def fingerprint_footprint(footprint: "NetworkFootprint") -> str:
    """Content fingerprint of a learned network footprint (all edge byte sizes)."""
    parts = []
    for api in footprint.apis:
        for (source, destination), edge in sorted(footprint.edges_of(api).items()):
            parts.append(
                f"{api}|{source}|{destination}|"
                f"{edge.request_bytes!r}|{edge.response_bytes!r}"
            )
    return _sha(parts)


def fingerprint_network(network: "NetworkModel") -> str:
    """Content fingerprint of a network model's link table (latency + bandwidth)."""
    parts = []
    for (a, b), link in sorted(network._links.items()):
        parts.append(f"{a}-{b}|{link.latency_ms!r}|{link.bandwidth_mbps!r}")
    return _sha(parts)


class _Flight:
    """One in-progress compile: racing threads park on ``done`` instead of rebuilding."""

    __slots__ = ("done", "value", "failed")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: object = None
        self.failed = False


class ArtifactCache:
    """Bounded LRU of compiled artifacts keyed by content fingerprints.

    One cache instance is meant to outlive individual :class:`Atlas` /
    :class:`~repro.quality.evaluator.QualityEvaluator` objects (the
    :class:`~repro.recommend.advisor.AdvisorService` holds one for its whole
    lifetime): ``get_or_build`` returns the cached artifact when the key was seen
    before — across evaluator instances and tenants — and builds + remembers it
    otherwise.  Keys must be content-complete (see the module docstring); values
    are treated as immutable by every consumer, so sharing one physical artifact
    between models is safe.

    The cache is thread-safe with **single-flight** builds: one short-critical-
    section mutex guards the LRU map and the counters, while compiles run with
    no lock held (compiles nest — a fused-program build compiles per-API sets
    through the same cache).  N threads racing on one fingerprint trigger
    exactly one ``build()``; the racers park on the flight and are served its
    result as hits.  A failed build releases the flight so a parked racer
    becomes the next builder (an exception is never cached).

    ``store`` (opt-in) is the durable second tier — an
    :class:`~repro.serving.store.ArtifactStore` consulted on every miss before
    compiling, and written through on every build, so a fresh process pointed at
    a populated store recovers its artifacts instead of recompiling.  A
    defective stored object degrades to a recompile.  ``store=None`` (the
    default) keeps the in-memory-only behaviour byte-identical.

    ``hits`` / ``misses`` / ``evictions`` counters make warm-path behaviour
    observable in benchmarks and tests (``store_hits`` counts misses answered
    from disk); ``max_entries`` bounds residency with least-recently-used
    eviction.
    """

    def __init__(
        self, max_entries: int = 256, store: Optional["ArtifactStore"] = None
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.store = store
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._flights: Dict[Tuple, _Flight] = {}
        self._mu = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0

    def __len__(self) -> int:
        with self._mu:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._mu:
            return key in self._entries

    def get_or_build(self, key: Tuple, build: Callable[[], object]) -> object:
        """The artifact for ``key`` — cached if seen before, else ``build()`` + remember."""
        while True:
            with self._mu:
                try:
                    value = self._entries[key]
                except KeyError:
                    flight = self._flights.get(key)
                    if flight is None:
                        flight = _Flight()
                        self._flights[key] = flight
                        self.misses += 1
                        building = True
                    else:
                        building = False
                else:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return value
            if building:
                return self._run_flight(key, flight, build)
            flight.done.wait()
            if not flight.failed:
                with self._mu:
                    self.hits += 1
                return flight.value
            # The builder raised: race again — one parked thread rebuilds.

    def _run_flight(self, key: Tuple, flight: _Flight, build: Callable[[], object]) -> object:
        """Build (or restore from the durable tier) with no lock held, then publish."""
        try:
            value = self._restore(key)
            if value is None:
                value = build()
                self._persist(key, value)
        except BaseException:
            flight.failed = True
            with self._mu:
                self._flights.pop(key, None)
            flight.done.set()
            raise
        with self._mu:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._flights.pop(key, None)
        flight.value = value
        flight.done.set()
        return value

    def _restore(self, key: Tuple) -> Optional[object]:
        if self.store is None:
            return None
        value = self.store.load(key)
        if value is not None:
            with self._mu:
                self.store_hits += 1
        return value

    def _persist(self, key: Tuple, value: object) -> None:
        if self.store is not None:
            self.store.save(key, value)

    def stats(self) -> Dict[str, int]:
        """Consistent counter snapshot (taken under the cache mutex)."""
        with self._mu:
            stats = {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
            if self.store is not None:
                stats["store_hits"] = self.store_hits
            return stats

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating — they describe the lifetime)."""
        with self._mu:
            self._entries.clear()
