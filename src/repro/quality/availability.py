"""API availability modeling (Section 4.1.2, Eq. 3).

Offloading a stateless component is near-disruption-free (rolling update), but a
stateful component must transfer its data to the new location, taking the APIs that
depend on it offline for the duration of the transfer (and losing warm caches).  The
availability quality of a plan is therefore the (weighted) number of APIs that use at
least one stateful component whose location changes.

Note on Eq. 3: the equation's quantifier reads "∀c ∈ SC(A)", but the surrounding text
and the evaluation ("the number of APIs that will be unavailable during the migration
process") make clear that an API is disrupted as soon as *any* of its stateful
components moves; we implement that interpretation.

**Per-location failure domains.**  With more than one remote site, not every
destination is equally disruptive: migrating state to a nearby region transfers faster
than to a far one, and sites differ in reliability.  ``location_weights`` assigns a
disruption weight to each *destination* location; a disrupted API is charged the
heaviest weight among the destinations its stateful components move to.  The default
(no weights) charges every disruption 1.0 — exactly the paper's two-location QAvai.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..cluster.placement import MigrationPlan

__all__ = ["ApiAvailabilityModel", "AvailabilityEstimate"]


@dataclass(frozen=True)
class AvailabilityEstimate:
    """Disruption preview of one plan."""

    disrupted_apis: List[str]
    weighted_disruption: float

    @property
    def disrupted_count(self) -> int:
        return len(self.disrupted_apis)


class ApiAvailabilityModel:
    """Computes QAvai from per-API stateful component sets learned from traces."""

    def __init__(
        self,
        stateful_components_by_api: Mapping[str, Sequence[str]],
        baseline_plan: MigrationPlan,
        location_weights: Optional[Mapping[int, float]] = None,
    ) -> None:
        self._stateful: Dict[str, Set[str]] = {
            api: set(components) for api, components in stateful_components_by_api.items()
        }
        self.baseline_plan = baseline_plan
        self.location_weights: Dict[int, float] = dict(location_weights or {})
        for location, weight in self.location_weights.items():
            if weight < 0:
                raise ValueError(f"disruption weight for location {location} must be >= 0")
        self._apis = sorted(self._stateful)
        # Projection axis per API: disruption depends only on the placements of the
        # API's stateful components, so results are cached by that tuple.
        self._projection_axis: Dict[str, List[str]] = {
            api: sorted(components) for api, components in self._stateful.items()
        }
        # (api, axis placements) -> (disrupted, per-location disruption factor).
        self._disrupted_cache: Dict[Tuple[str, Tuple[int, ...]], Tuple[bool, float]] = {}
        # Plan-matrix lowering: per component order, the per-API axis columns and
        # baseline placements.
        self._lowerings: Dict[
            Tuple[str, ...], List[Tuple[str, np.ndarray, np.ndarray]]
        ] = {}

    @property
    def apis(self) -> List[str]:
        return list(self._apis)

    def derive(
        self, location_weights: Optional[Mapping[int, float]] = None
    ) -> "ApiAvailabilityModel":
        """A sibling model with different failure-domain weights (the fault hook).

        Shares the learned stateful-component sets and the baseline plan; caches are
        per-model, so a faulted scenario's heavier destination weights (e.g. a
        :class:`~repro.quality.faults.LocationOutage` penalizing its failed site)
        never contaminate the fault-free model.
        """
        return ApiAvailabilityModel(
            stateful_components_by_api=self._stateful,
            baseline_plan=self.baseline_plan,
            location_weights=(
                location_weights if location_weights is not None else self.location_weights
            ),
        )

    def stateful_components_of(self, api: str) -> Set[str]:
        """``SC(A)`` — the stateful components the API touches."""
        return set(self._stateful.get(api, set()))

    def _resolve(self, api: str, plan: MigrationPlan) -> Tuple[bool, float]:
        """(disrupted, failure-domain factor) of one API, projection-cached."""
        axis = self._projection_axis.get(api)
        if not axis:
            return (False, 0.0)
        key = (api, tuple(plan[c] for c in axis))
        cached = self._disrupted_cache.get(key)
        if cached is None:
            moved_to = [plan[c] for c in axis if plan[c] != self.baseline_plan[c]]
            if not moved_to:
                cached = (False, 0.0)
            else:
                factor = max(
                    self.location_weights.get(location, 1.0) for location in moved_to
                )
                cached = (True, factor)
            self._disrupted_cache[key] = cached
        return cached

    def api_disrupted(self, api: str, plan: MigrationPlan) -> bool:
        """Whether migrating to ``plan`` disrupts the API (any stateful dependency moves)."""
        return self._resolve(api, plan)[0]

    def disruption_factor(self, api: str, plan: MigrationPlan) -> float:
        """Failure-domain weight of the API's disruption: the heaviest destination site."""
        return self._resolve(api, plan)[1]

    def disrupted_apis(self, plan: MigrationPlan) -> List[str]:
        return [api for api in self.apis if self.api_disrupted(api, plan)]

    def qavai(
        self, plan: MigrationPlan, api_weights: Optional[Mapping[str, float]] = None
    ) -> float:
        """QAvai(p) = Σ_A τ_A · w_dc(A; p) · [A disrupted] — lower is better.

        ``w_dc`` is the per-location failure-domain factor (1.0 when no
        ``location_weights`` were configured, reproducing Eq. 3 verbatim).
        """
        total = 0.0
        for api in self.apis:
            disrupted, factor = self._resolve(api, plan)
            if disrupted:
                weight = api_weights.get(api, 1.0) if api_weights else 1.0
                if self.location_weights:
                    weight *= factor
                total += weight
        return total

    # -- batched evaluation (plan-matrix pipeline) -----------------------------------------
    def _lowering(
        self, components: Sequence[str]
    ) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        key = tuple(components)
        lowering = self._lowerings.get(key)
        if lowering is None:
            column_of = {c: i for i, c in enumerate(key)}
            lowering = []
            for api in self._apis:
                axis = self._projection_axis.get(api) or []
                columns = np.asarray([column_of[c] for c in axis], dtype=np.intp)
                baseline = np.asarray(
                    [self.baseline_plan[c] for c in axis], dtype=np.int64
                )
                lowering.append((api, columns, baseline))
            self._lowerings[key] = lowering
        return lowering

    def qavai_batch(
        self,
        plan_matrix: np.ndarray,
        components: Sequence[str],
        api_weights: Optional[Mapping[str, float]] = None,
    ) -> np.ndarray:
        """QAvai for a whole plan matrix at once — bitwise equal to per-plan ``qavai``.

        ``plan_matrix`` is ``(plans, len(components))`` integer location ids.  Each
        API contributes one vectorized pass over its stateful-component columns, and
        per-plan totals accumulate API by API in the scalar iteration order.
        """
        matrix = np.asarray(plan_matrix, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(components):
            raise ValueError("plan matrix must be (plans, len(components))")
        totals = np.zeros(matrix.shape[0], dtype=np.float64)
        if matrix.shape[0] == 0:
            return totals
        weight_lut: Optional[np.ndarray] = None
        if self.location_weights:
            size = int(matrix.max()) + 1
            weight_lut = np.asarray(
                [self.location_weights.get(loc, 1.0) for loc in range(size)]
            )
        for api, columns, baseline in self._lowering(components):
            if columns.size == 0:
                continue
            placements = matrix[:, columns]
            moved = placements != baseline
            disrupted = moved.any(axis=1)
            if not disrupted.any():
                continue
            weight = api_weights.get(api, 1.0) if api_weights else 1.0
            if weight_lut is not None:
                factor = np.where(moved, weight_lut[placements], -np.inf).max(axis=1)
                term = weight * factor
                totals[disrupted] += term[disrupted]
            else:
                totals[disrupted] += weight
        return totals

    def estimate(
        self, plan: MigrationPlan, api_weights: Optional[Mapping[str, float]] = None
    ) -> AvailabilityEstimate:
        return AvailabilityEstimate(
            disrupted_apis=self.disrupted_apis(plan),
            weighted_disruption=self.qavai(plan, api_weights),
        )
