"""Migration quality modeling: performance (delay injection), availability, cost.

The scenario axis (:mod:`repro.quality.scenarios`) threads workload scenarios —
bursts, mix shifts, payload growth — through the whole stack: ``ScenarioSet`` names
the S axis, ``RobustAggregator`` collapses the S×P objective tensor, and
``QualityEvaluator.evaluate_vectors(..., scenarios=...)`` (or ``bind_scenarios``)
scores plans robustly against the whole family.
"""

from .availability import ApiAvailabilityModel, AvailabilityEstimate
from .compiled import CompiledTraceSet, compile_traces
from .cost import CloudCostModel, CostEstimate, PricingCatalog
from .evaluator import PlanQuality, QualityEvaluator
from .performance import ApiPerformanceModel, DelayInjector, PerformanceEstimate
from .preferences import MigrationPreferences
from .scenarios import (
    CVaR,
    RobustAggregator,
    ScenarioQuality,
    ScenarioSet,
    ScenarioSpec,
    WeightedMean,
    WorstCase,
    scaled_footprint,
)

__all__ = [
    "CompiledTraceSet",
    "compile_traces",
    "DelayInjector",
    "ApiPerformanceModel",
    "PerformanceEstimate",
    "ApiAvailabilityModel",
    "AvailabilityEstimate",
    "PricingCatalog",
    "CostEstimate",
    "CloudCostModel",
    "MigrationPreferences",
    "PlanQuality",
    "QualityEvaluator",
    "ScenarioSpec",
    "ScenarioSet",
    "ScenarioQuality",
    "RobustAggregator",
    "WorstCase",
    "WeightedMean",
    "CVaR",
    "scaled_footprint",
]
