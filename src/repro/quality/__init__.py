"""Migration quality modeling: performance (delay injection), availability, cost.

The objective/constraint surface is a plugin API (:mod:`repro.quality.problem`):
``PlacementProblem`` declares K objectives + constraints (+ an optional scenario
axis) and ``QualityEvaluator`` executes it over plan matrices; the paper's QPerf /
QAvai / QCost triple and the Eq. 4 constraints are the built-in plugins, and
``PlacementProblem.default()`` reproduces them byte-for-byte.

The scenario axis (:mod:`repro.quality.scenarios`) threads workload scenarios —
bursts, mix shifts, payload growth — through the whole stack: ``ScenarioSet`` names
the S axis, ``RobustAggregator`` collapses the S×P objective tensor, and
``QualityEvaluator.evaluate_vectors(..., scenarios=...)`` (or ``bind_scenarios``)
scores plans robustly against the whole family.
"""

from .adversary import AdversaryBounds, RobustnessCertificate, ScenarioAdversary
from .artifacts import (
    ArtifactCache,
    fingerprint_footprint,
    fingerprint_network,
    fingerprint_traces,
)
from .availability import ApiAvailabilityModel, AvailabilityEstimate
from .compiled import CompiledTraceSet, compile_traces
from .cost import CloudCostModel, CostEstimate, PricingCatalog
from .evaluator import PlanQuality, QualityEvaluator
from .faults import (
    CapacityCut,
    FaultedStack,
    FaultSpec,
    LinkDegradation,
    LocationOutage,
    PriceShock,
)
from .fused import HAS_NUMBA, FusedProgram
from .performance import ApiPerformanceModel, DelayInjector, PerformanceEstimate
from .preferences import MigrationPreferences
from .problem import (
    AllowedLocationsConstraint,
    BudgetConstraint,
    Constraint,
    ConstraintCheck,
    EgressTrafficObjective,
    EvalContext,
    MigrationChurnObjective,
    Objective,
    OnPremPeakConstraint,
    PinnedPlacementConstraint,
    PlacementProblem,
    QAvaiObjective,
    QCostObjective,
    QPerfObjective,
    make_constraint,
    make_objective,
    register_constraint,
    register_objective,
    registered_constraints,
    registered_objectives,
)
from .scenario_factory import ScenarioFactory
from .scenarios import (
    CVaR,
    RobustAggregator,
    ScenarioQuality,
    ScenarioSet,
    ScenarioSpec,
    WeightedMean,
    WorstCase,
    scaled_footprint,
)

__all__ = [
    "ArtifactCache",
    "fingerprint_traces",
    "fingerprint_network",
    "fingerprint_footprint",
    "CompiledTraceSet",
    "compile_traces",
    "FusedProgram",
    "HAS_NUMBA",
    "DelayInjector",
    "ApiPerformanceModel",
    "PerformanceEstimate",
    "ApiAvailabilityModel",
    "AvailabilityEstimate",
    "PricingCatalog",
    "CostEstimate",
    "CloudCostModel",
    "MigrationPreferences",
    "PlanQuality",
    "QualityEvaluator",
    "PlacementProblem",
    "Objective",
    "Constraint",
    "ConstraintCheck",
    "EvalContext",
    "QPerfObjective",
    "QAvaiObjective",
    "QCostObjective",
    "EgressTrafficObjective",
    "MigrationChurnObjective",
    "PinnedPlacementConstraint",
    "AllowedLocationsConstraint",
    "OnPremPeakConstraint",
    "BudgetConstraint",
    "register_objective",
    "register_constraint",
    "make_objective",
    "make_constraint",
    "registered_objectives",
    "registered_constraints",
    "ScenarioSpec",
    "ScenarioSet",
    "ScenarioQuality",
    "RobustAggregator",
    "WorstCase",
    "WeightedMean",
    "CVaR",
    "scaled_footprint",
    "FaultSpec",
    "FaultedStack",
    "LocationOutage",
    "LinkDegradation",
    "PriceShock",
    "CapacityCut",
    "ScenarioFactory",
    "AdversaryBounds",
    "RobustnessCertificate",
    "ScenarioAdversary",
]
