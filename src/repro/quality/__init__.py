"""Migration quality modeling: performance (delay injection), availability, cost."""

from .availability import ApiAvailabilityModel, AvailabilityEstimate
from .compiled import CompiledTraceSet, compile_traces
from .cost import CloudCostModel, CostEstimate, PricingCatalog
from .evaluator import PlanQuality, QualityEvaluator
from .performance import ApiPerformanceModel, DelayInjector, PerformanceEstimate
from .preferences import MigrationPreferences

__all__ = [
    "CompiledTraceSet",
    "compile_traces",
    "DelayInjector",
    "ApiPerformanceModel",
    "PerformanceEstimate",
    "ApiAvailabilityModel",
    "AvailabilityEstimate",
    "PricingCatalog",
    "CostEstimate",
    "CloudCostModel",
    "MigrationPreferences",
    "PlanQuality",
    "QualityEvaluator",
]
