"""Migration quality modeling: performance (delay injection), availability, cost."""

from .availability import ApiAvailabilityModel, AvailabilityEstimate
from .cost import CloudCostModel, CostEstimate, PricingCatalog
from .evaluator import PlanQuality, QualityEvaluator
from .performance import ApiPerformanceModel, DelayInjector, PerformanceEstimate
from .preferences import MigrationPreferences

__all__ = [
    "DelayInjector",
    "ApiPerformanceModel",
    "PerformanceEstimate",
    "ApiAvailabilityModel",
    "AvailabilityEstimate",
    "PricingCatalog",
    "CostEstimate",
    "CloudCostModel",
    "MigrationPreferences",
    "PlanQuality",
    "QualityEvaluator",
]
