"""Compiled trace replay: delay injection as vectorized array passes.

:class:`~repro.quality.performance.DelayInjector` recomputes one trace's span timings
with a recursive Python tree walk — correct, but far too slow when the GA previews
thousands of candidate plans against dozens of sample traces per API.  This module
compiles each API's sample traces **once** into flat numpy arrays and then replays any
number of delay vectors over *all* of the API's traces simultaneously.

Compilation exploits the key invariant of the cascade rules (Section 4.1.1): which
predecessor a span's new start is anchored to — its parent's start or a foreground
sibling's end — together with the trigger gap, the background masks and the
parallel-sibling classification, depends only on the *original* timestamps, never on
the injected delays.  So the whole control structure of the recursion can be resolved
at compile time into a static dataflow DAG:

* ``start(i) = anchor(i) + gap(i) + delta(edge(i))`` where the anchor is the parent's
  new start or the reference foreground sibling's new end;
* ``end(i) = start(i) + duration(i)`` for spans without foreground children;
* ``end(i) = max(end(c) for c in foreground(i)) + tail_gap(i)`` otherwise.

Replay schedules these assignments by dependency level (longest dependency chain) and
executes each level as one vectorized numpy operation over a ``(plans, spans)`` state
matrix — so a batch of plans replays every trace of an API in a handful of array
passes.  Arithmetic preserves the exact IEEE-754 operation order of the recursive
reference, so compiled latencies are bitwise identical to ``DelayInjector``'s, which
keeps fixed-seed GA trajectories unchanged when switching engines.
"""

from __future__ import annotations

import math
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..apps.model import ExecutionMode
from ..learning.api_profile import classify_background, classify_sibling
from ..telemetry.tracing import Trace

__all__ = ["CompiledTraceSet", "compile_traces", "ShmArena"]


class ShmArena:
    """A bump allocator over ``multiprocessing.shared_memory`` segments.

    The island-model parallel search exports the compiled evaluation state — the
    level-scheduled trace arrays below, the per-API Δ lookup tables and the plan
    matrices of the migration/result channels — into shared memory before forking
    its workers, so every process scores plans against physically shared pages.
    Arrays are packed into large chunks (64-byte aligned) instead of one POSIX shm
    object each, so exporting a compiled model — hundreds of small level arrays —
    costs a handful of file descriptors, not hundreds.  Fork children inherit the
    mappings; only the creating process should :meth:`release`.
    """

    def __init__(self, chunk_bytes: int = 1 << 24) -> None:
        self._chunk_bytes = int(chunk_bytes)
        self._segments: List[shared_memory.SharedMemory] = []
        self._offset = 0
        self.nbytes = 0

    def _alloc(self, nbytes: int) -> Tuple[shared_memory.SharedMemory, int]:
        offset = (self._offset + 63) & ~63
        if not self._segments or offset + nbytes > self._segments[-1].size:
            size = max(self._chunk_bytes, nbytes)
            self._segments.append(shared_memory.SharedMemory(create=True, size=size))
            offset = 0
        self._offset = offset + nbytes
        self.nbytes += nbytes
        return self._segments[-1], offset

    def empty(self, shape: Sequence[int], dtype) -> np.ndarray:
        """A new shared-memory ndarray (uninitialized)."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        segment, offset = self._alloc(max(nbytes, 1))
        return np.ndarray(tuple(shape), dtype=dtype, buffer=segment.buf, offset=offset)

    def share(self, array: np.ndarray) -> np.ndarray:
        """A shared-memory copy of ``array`` (same shape/dtype/contents)."""
        array = np.ascontiguousarray(array)
        view = self.empty(array.shape, array.dtype)
        view[...] = array
        return view

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    def release(self, unlink: bool = True) -> None:
        """Unlink and unmap every segment (best effort: live views keep their pages)."""
        for segment in self._segments:
            if unlink:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
            try:
                segment.close()
            except BufferError:
                # An ndarray view is still alive (e.g. a model cache); the name is
                # already unlinked, the mapping dies with the last view.
                pass
        self._segments = []
        self._offset = 0

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.release()
        except Exception:
            pass

Edge = Tuple[str, str]


def _same_float(a: float, b: float) -> bool:
    """Exact float equality including the sign of zero (bitwise-compile equality)."""
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)


def _trace_content_equal(a: Trace, b: Trace) -> bool:
    """Structural equality of exactly what compilation consumes — the splice reuse test.

    Compares the :meth:`~repro.telemetry.tracing.Trace.structure` exports field by
    field (API, root/parent positions, per-span component, operation and exact
    timings), so equal traces compile to bitwise-identical fragments.  A direct
    comparison, not a hash: splice probes one specific (old, new) pair per position,
    where equality is ~20x cheaper than fingerprinting both sides.
    """
    if a is b:
        return True
    if a.api != b.api:
        return False
    sa, sb = a.structure(), b.structure()
    if sa.root_index != sb.root_index or list(sa.parent_index) != list(sb.parent_index):
        return False
    if len(sa.spans) != len(sb.spans):
        return False
    for x, y in zip(sa.spans, sb.spans):
        if (
            x.component != y.component
            or x.operation != y.operation
            or not _same_float(x.start_ms, y.start_ms)
            or not _same_float(x.duration_ms, y.duration_ms)
        ):
            return False
    return True


class _LevelOps:
    """Vectorized instruction bundle for one dependency level."""

    __slots__ = (
        "sp_idx",
        "sp_dep",
        "sp_gap",
        "sp_edge",
        "ss_idx",
        "ss_dep",
        "ss_gap",
        "ss_edge",
        "el_idx",
        "el_dur",
        "ea_idx",
        "ea_children",
        "ea_offsets",
        "ea_tail",
    )

    def __init__(self) -> None:
        # start-from-parent ops: start[idx] = start[dep] + gap + delta[edge]
        self.sp_idx: List[int] = []
        self.sp_dep: List[int] = []
        self.sp_gap: List[float] = []
        self.sp_edge: List[int] = []
        # start-from-sibling ops: start[idx] = end[dep] + gap + delta[edge]
        self.ss_idx: List[int] = []
        self.ss_dep: List[int] = []
        self.ss_gap: List[float] = []
        self.ss_edge: List[int] = []
        # end ops without foreground children: end[idx] = start[idx] + duration
        self.el_idx: List[int] = []
        self.el_dur: List[float] = []
        # end ops aggregating foreground children: end[idx] = segmax(children) + tail
        self.ea_idx: List[int] = []
        self.ea_children: List[int] = []
        self.ea_offsets: List[int] = []
        self.ea_tail: List[float] = []

    def freeze(self) -> None:
        """Convert the accumulated python lists into contiguous numpy arrays."""
        self.sp_idx = np.asarray(self.sp_idx, dtype=np.intp)
        self.sp_dep = np.asarray(self.sp_dep, dtype=np.intp)
        self.sp_gap = np.asarray(self.sp_gap, dtype=np.float64)
        self.sp_edge = np.asarray(self.sp_edge, dtype=np.intp)
        self.ss_idx = np.asarray(self.ss_idx, dtype=np.intp)
        self.ss_dep = np.asarray(self.ss_dep, dtype=np.intp)
        self.ss_gap = np.asarray(self.ss_gap, dtype=np.float64)
        self.ss_edge = np.asarray(self.ss_edge, dtype=np.intp)
        self.el_idx = np.asarray(self.el_idx, dtype=np.intp)
        self.el_dur = np.asarray(self.el_dur, dtype=np.float64)
        self.ea_idx = np.asarray(self.ea_idx, dtype=np.intp)
        self.ea_children = np.asarray(self.ea_children, dtype=np.intp)
        self.ea_offsets = np.asarray(self.ea_offsets, dtype=np.intp)
        self.ea_tail = np.asarray(self.ea_tail, dtype=np.float64)


#: dtype of every index-like `_LevelOps` slot (the rest are float64 values).
_INTP_SLOTS = frozenset(
    {"sp_idx", "sp_dep", "sp_edge", "ss_idx", "ss_dep", "ss_edge",
     "el_idx", "ea_idx", "ea_children", "ea_offsets"}
)
#: slots holding absolute span indices — shifted by the trace's span offset on assembly.
_SPAN_INDEX_SLOTS = frozenset(
    {"sp_idx", "sp_dep", "ss_idx", "ss_dep", "el_idx", "ea_idx", "ea_children"}
)


class _TraceFragment:
    """One trace compiled at local span offset 0 — the reusable unit of :meth:`splice`.

    Holds the trace's frozen per-level ops with *local* span indices; assembly shifts
    them by the trace's global span offset.  Every float in a fragment is computed
    trace-locally by ``_compile_one`` (offsets only ever enter integer indices), so
    concatenating fragments is bitwise-identical to compiling the whole set in one
    monolithic pass.
    """

    __slots__ = ("n_spans", "root_idx", "root_start", "levels")

    def __init__(
        self,
        n_spans: int,
        root_idx: int,
        root_start: float,
        levels: Dict[int, _LevelOps],
    ) -> None:
        self.n_spans = n_spans
        self.root_idx = root_idx
        self.root_start = root_start
        self.levels = levels


class CompiledTraceSet:
    """All sample traces of one API, compiled for batched delay injection.

    Spans of every trace are concatenated into one global index space; per span the
    compiler resolves its anchor (parent start or reference foreground sibling end),
    trigger gap, invocation-edge id and foreground-children segment, then buckets every
    assignment by dependency level.  :meth:`replay_batch` evaluates a whole matrix of
    per-plan delay vectors in one pass; :meth:`latencies` is the single-plan view.

    Compilation is staged per trace: each trace becomes a :class:`_TraceFragment`
    (its frozen level ops at local offset 0) and assembly concatenates the fragments
    with index shifts.  The fragments are retained so :meth:`splice` can swap a
    drifted subset of traces and recompile only those — the warm-path incremental
    rebuild — at the cost of roughly doubling the (small) compiled-array footprint.
    """

    def __init__(self, traces: Sequence[Trace], edge_order: Sequence[Edge]) -> None:
        if not traces:
            raise ValueError("cannot compile an empty trace set")
        self.edge_index: Dict[Edge, int] = {}
        for edge in edge_order:
            if edge not in self.edge_index:
                self.edge_index[edge] = len(self.edge_index)
        self.n_edges = len(self.edge_index)
        self._traces = list(traces)
        self._fragments = [self._compile_fragment(trace) for trace in self._traces]
        self._assemble()

    def _compile_fragment(self, trace: Trace) -> _TraceFragment:
        root_idx: List[int] = []
        root_start: List[float] = []
        levels: Dict[int, _LevelOps] = {}
        n_spans = self._compile_one(trace, 0, root_idx, root_start, levels)
        for ops in levels.values():
            ops.freeze()
        return _TraceFragment(n_spans, root_idx[0], root_start[0], levels)

    def _assemble(self) -> None:
        """Concatenate the per-trace fragments into the global replay arrays.

        Reproduces exactly what a monolithic compile over all traces emits: per
        dependency level, each trace's ops in trace order, span indices shifted by
        the trace's span offset and ``ea_offsets`` rebased by the level's
        accumulated foreground-children count.
        """
        fragments = self._fragments
        self.n_traces = len(fragments)
        offsets: List[int] = []
        total = 0
        for fragment in fragments:
            offsets.append(total)
            total += fragment.n_spans
        self.n_spans = total
        self._root_idx = np.asarray(
            [off + frag.root_idx for off, frag in zip(offsets, fragments)], dtype=np.intp
        )
        self._root_start = np.asarray(
            [frag.root_start for frag in fragments], dtype=np.float64
        )
        self._levels = []
        for depth in sorted({d for frag in fragments for d in frag.levels}):
            ops = _LevelOps()
            parts: Dict[str, List[np.ndarray]] = {name: [] for name in _LevelOps.__slots__}
            children_total = 0
            for offset, fragment in zip(offsets, fragments):
                local = fragment.levels.get(depth)
                if local is None:
                    continue
                for name in _LevelOps.__slots__:
                    block = getattr(local, name)
                    if name in _SPAN_INDEX_SLOTS:
                        block = block + offset
                    elif name == "ea_offsets":
                        block = block + children_total
                    parts[name].append(block)
                children_total += len(local.ea_children)
            for name in _LevelOps.__slots__:
                dtype = np.intp if name in _INTP_SLOTS else np.float64
                blocks = parts[name]
                merged = (
                    np.concatenate(blocks) if blocks else np.asarray([], dtype=dtype)
                )
                setattr(ops, name, merged.astype(dtype, copy=False))
            self._levels.append(ops)
        self._shm_backed = False

    def splice(self, new_traces: Sequence[Trace]) -> "CompiledTraceSet":
        """A new set over ``new_traces`` recompiling only the traces that changed.

        The incremental half of the warm path: a drift refresh of one API typically
        replaces a handful of its sample traces, so positions whose trace content
        (the :meth:`~repro.telemetry.tracing.Trace.structure` export — exactly what
        compilation consumes) is unchanged reuse this set's already-compiled fragment
        verbatim and only genuinely new traces pay ``_compile_one``.  Assembly then
        re-concatenates fragments exactly as ``__init__`` does, so the result is
        bitwise-identical to ``CompiledTraceSet(new_traces, edge_order)`` over the
        same edge vocabulary.

        The new traces must stay within this set's invocation-edge vocabulary
        (``KeyError`` otherwise) — callers that detect a changed edge set recompile
        from scratch instead, because the cached fragments' edge ids would shift.
        """
        if not new_traces:
            raise ValueError("cannot splice to an empty trace set")
        clone = object.__new__(CompiledTraceSet)
        clone.edge_index = dict(self.edge_index)
        clone.n_edges = self.n_edges
        fragments: List[_TraceFragment] = []
        for pos, trace in enumerate(new_traces):
            fragment = None
            if pos < len(self._traces) and _trace_content_equal(trace, self._traces[pos]):
                fragment = self._fragments[pos]
            if fragment is None:
                fragment = clone._compile_fragment(trace)
            fragments.append(fragment)
        clone._traces = list(new_traces)
        clone._fragments = fragments
        clone._assemble()
        return clone

    def share_memory(self, arena: "ShmArena") -> None:
        """Move every compiled array into ``arena``-backed shared memory (idempotent).

        Called by the parallel search before forking workers so the replay state —
        the read-only hot path of ``evaluate_vectors`` — is physically shared across
        processes instead of copy-on-write duplicated.  Contents are unchanged;
        replay results are bitwise identical.
        """
        if self._shm_backed:
            return
        self._root_idx = arena.share(self._root_idx)
        self._root_start = arena.share(self._root_start)
        for ops in self._levels:
            for name in _LevelOps.__slots__:
                setattr(ops, name, arena.share(getattr(ops, name)))
        self._shm_backed = True

    def __getstate__(self) -> Dict[str, object]:
        """Pickled sets are private copies: shm backing does not survive a process.

        Serializing an shm-backed set copies the array contents into the payload
        (numpy pickles by value), so the deserialized set must not claim — and,
        via the idempotence guard, must not refuse — a fresh ``share_memory``.
        """
        state = dict(self.__dict__)
        state["_shm_backed"] = False
        return state

    # -- compilation -----------------------------------------------------------------------
    def _compile_one(
        self,
        trace: Trace,
        offset: int,
        root_idx: List[int],
        root_start: List[float],
        levels: Dict[int, _LevelOps],
    ) -> int:
        structure = trace.structure()
        spans = structure.spans
        n = len(spans)
        children_index = structure.children_index

        # Resolve per-span anchors statically, mirroring DelayInjector._adjust: process
        # each parent's children in order, tracking the processed foreground siblings.
        anchor_sibling = [-1] * n  # local index of the reference FG sibling, or -1
        gap = [0.0] * n
        edge_id = [0] * n
        fg_children: List[List[int]] = [[] for _ in range(n)]
        tail_gap = [0.0] * n

        for parent_pos in range(n):
            parent = spans[parent_pos]
            child_positions = children_index[parent_pos]
            if not child_positions:
                continue
            # Processed foreground children: (orig_end, local position).
            foreground: List[Tuple[float, int]] = []
            for child_pos in child_positions:
                child = spans[child_pos]
                background = classify_background(child, parent)
                ref_orig = parent.start_ms
                ref_pos = -1
                for orig_end, prev_pos in foreground:
                    if classify_sibling(spans[prev_pos], child) is ExecutionMode.PARALLEL:
                        continue
                    if orig_end > ref_orig:
                        ref_orig, ref_pos = orig_end, prev_pos
                anchor_sibling[child_pos] = ref_pos
                gap[child_pos] = child.start_ms - ref_orig
                edge_id[child_pos] = self.edge_index[(parent.component, child.component)]
                if not background:
                    foreground.append((child.end_ms, child_pos))
                    fg_children[parent_pos].append(child_pos)
            if fg_children[parent_pos]:
                tail_ref_orig = max(
                    spans[pos].end_ms for pos in fg_children[parent_pos]
                )
                tail_gap[parent_pos] = max(parent.end_ms - tail_ref_orig, 0.0)

        # Dependency levels: start of the root is known up front (level 0); every other
        # value is 1 + the level of its single gather dependency (starts) or 1 + the
        # max level of its foreground children's ends (aggregating ends).
        start_level = [0] * n
        end_level = [0] * n
        root_pos = structure.root_index
        # Spans are stored in (start_ms, span_id) order, but a child always starts at or
        # after its anchor, so position order is a valid evaluation order for levels...
        # except for ties; compute levels with an explicit worklist to stay safe.
        order = _topological_value_order(structure.parent_index, anchor_sibling, fg_children, root_pos)
        for kind, pos in order:
            if kind == 0:  # start
                if pos == root_pos:
                    start_level[pos] = 0
                    continue
                sibling = anchor_sibling[pos]
                dep_level = (
                    end_level[sibling]
                    if sibling >= 0
                    else start_level[structure.parent_index[pos]]
                )
                start_level[pos] = dep_level + 1
            else:  # end
                if fg_children[pos]:
                    end_level[pos] = 1 + max(end_level[c] for c in fg_children[pos])
                else:
                    end_level[pos] = start_level[pos] + 1

        def ops_at(level: int) -> _LevelOps:
            if level not in levels:
                levels[level] = _LevelOps()
            return levels[level]

        root_idx.append(offset + root_pos)
        # A leaf root keeps its original duration verbatim in the reference path, so
        # the replayed latency must be exactly duration_ms, not (start + dur) - start
        # (the two can differ in the last ulp).  Its start anchors nothing, so pinning
        # it to zero makes end - start come out exact.
        if children_index[root_pos]:
            root_start.append(spans[root_pos].start_ms)
        else:
            root_start.append(0.0)
        for pos in range(n):
            if pos != root_pos:
                ops = ops_at(start_level[pos])
                sibling = anchor_sibling[pos]
                if sibling >= 0:
                    ops.ss_idx.append(offset + pos)
                    ops.ss_dep.append(offset + sibling)
                    ops.ss_gap.append(gap[pos])
                    ops.ss_edge.append(edge_id[pos])
                else:
                    ops.sp_idx.append(offset + pos)
                    ops.sp_dep.append(offset + structure.parent_index[pos])
                    ops.sp_gap.append(gap[pos])
                    ops.sp_edge.append(edge_id[pos])
            ops = ops_at(end_level[pos])
            if fg_children[pos]:
                ops.ea_idx.append(offset + pos)
                ops.ea_offsets.append(len(ops.ea_children))
                ops.ea_children.extend(offset + c for c in fg_children[pos])
                ops.ea_tail.append(tail_gap[pos])
            else:
                ops.el_idx.append(offset + pos)
                # The reference path extends a childless span by duration_ms, but a span
                # whose children are all background by end_ms - start_ms; the two can
                # differ in the last ulp, and bitwise equality is a contract here.
                span = spans[pos]
                if children_index[pos]:
                    ops.el_dur.append(max(span.end_ms - span.start_ms, 0.0))
                else:
                    ops.el_dur.append(span.duration_ms)
        return offset + n

    # -- replay ----------------------------------------------------------------------------
    def delta_row(self, edge_delays: Mapping[Edge, float]) -> np.ndarray:
        """One plan's per-edge Δ vector in the compiled edge order (clipped at zero)."""
        row = np.zeros(self.n_edges, dtype=np.float64)
        for edge, delta in edge_delays.items():
            index = self.edge_index.get(edge)
            if index is not None and delta > 0.0:
                row[index] = delta
        return row

    def delta_rows(self, delay_maps: Sequence[Mapping[Edge, float]]) -> np.ndarray:
        """A batch of plans' Δ vectors as one matrix — the vectorized :meth:`delta_row`.

        One zeroed ``(plans, edges)`` allocation plus a single fancy-index scatter
        instead of per-plan row construction; each row is bitwise identical to
        ``delta_row`` of the corresponding map.
        """
        rows = np.zeros((len(delay_maps), self.n_edges), dtype=np.float64)
        row_idx: List[int] = []
        col_idx: List[int] = []
        values: List[float] = []
        for row, edge_delays in enumerate(delay_maps):
            for edge, delta in edge_delays.items():
                index = self.edge_index.get(edge)
                if index is not None and delta > 0.0:
                    row_idx.append(row)
                    col_idx.append(index)
                    values.append(delta)
        if values:
            rows[row_idx, col_idx] = values
        return rows

    def replay_batch(self, delta_rows: np.ndarray) -> np.ndarray:
        """Latency matrix ``(plans, traces)`` for a batch of per-edge delay vectors."""
        deltas = np.atleast_2d(np.asarray(delta_rows, dtype=np.float64))
        if deltas.shape[1] != self.n_edges:
            raise ValueError(
                f"delta rows have {deltas.shape[1]} edges, compiled set has {self.n_edges}"
            )
        n_plans = deltas.shape[0]
        start = np.zeros((n_plans, self.n_spans), dtype=np.float64)
        end = np.zeros((n_plans, self.n_spans), dtype=np.float64)
        start[:, self._root_idx] = self._root_start
        for ops in self._levels:
            if len(ops.sp_idx):
                start[:, ops.sp_idx] = (
                    start[:, ops.sp_dep] + ops.sp_gap + deltas[:, ops.sp_edge]
                )
            if len(ops.ss_idx):
                start[:, ops.ss_idx] = (
                    end[:, ops.ss_dep] + ops.ss_gap + deltas[:, ops.ss_edge]
                )
            if len(ops.el_idx):
                end[:, ops.el_idx] = start[:, ops.el_idx] + ops.el_dur
            if len(ops.ea_idx):
                segment_max = np.maximum.reduceat(
                    end[:, ops.ea_children], ops.ea_offsets, axis=1
                )
                end[:, ops.ea_idx] = segment_max + ops.ea_tail
        return end[:, self._root_idx] - start[:, self._root_idx]

    def latencies(self, edge_delays: Mapping[Edge, float]) -> List[float]:
        """Injected latency of every compiled trace under one plan's edge delays."""
        return [float(v) for v in self.replay_batch(self.delta_row(edge_delays))[0]]


def _topological_value_order(
    parent_index: Sequence[int],
    anchor_sibling: Sequence[int],
    fg_children: Sequence[Sequence[int]],
    root_pos: int,
) -> List[Tuple[int, int]]:
    """DFS value order of one trace: (0=start, 1=end) events in dependency order.

    Mirrors the recursion of ``DelayInjector._adjust``: a span's start is emitted on
    entry, its children are processed in order, and its end is emitted on exit — which
    guarantees every anchor sibling's end and every foreground child's end precede the
    values that read them.
    """
    order: List[Tuple[int, int]] = []
    # Rebuild child lists from parent_index to visit every span (incl. background).
    children: Dict[int, List[int]] = {}
    for pos, parent in enumerate(parent_index):
        if parent >= 0:
            children.setdefault(parent, []).append(pos)
    for child_list in children.values():
        child_list.sort()  # span storage order == (start_ms, span_id) order
    stack: List[Tuple[int, bool]] = [(root_pos, False)]
    while stack:
        pos, expanded = stack.pop()
        if expanded:
            order.append((1, pos))
            continue
        order.append((0, pos))
        stack.append((pos, True))
        for child in reversed(children.get(pos, [])):
            stack.append((child, False))
    return order


def compile_traces(
    traces: Sequence[Trace], edge_order: Sequence[Edge]
) -> CompiledTraceSet:
    """Compile one API's sample traces against its invocation-edge vocabulary."""
    return CompiledTraceSet(traces, edge_order)
