"""Component-focused resource metrics (cAdvisor-like).

Per-component, per-window time series of CPU, memory, ingress/egress traffic and served
request counts.  The windows are aligned with the pairwise network metrics so the
resource estimator and the cost model can join them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["MetricSample", "ComponentMetricsStore"]

#: Metric names recorded for every component.
METRIC_NAMES = ("cpu_millicores", "memory_mb", "ingress_bytes", "egress_bytes", "requests")


@dataclass(frozen=True)
class MetricSample:
    """Resource usage of one component during one time window."""

    component: str
    window: int
    cpu_millicores: float = 0.0
    memory_mb: float = 0.0
    ingress_bytes: float = 0.0
    egress_bytes: float = 0.0
    requests: float = 0.0

    def __post_init__(self) -> None:
        for name in METRIC_NAMES:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class ComponentMetricsStore:
    """Accumulating store of per-component, per-window resource metrics."""

    def __init__(self, window_ms: float = 5_000.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = window_ms
        # (component, window) -> {metric: value}
        self._data: Dict[Tuple[str, int], Dict[str, float]] = defaultdict(
            lambda: {name: 0.0 for name in METRIC_NAMES}
        )
        self._components: List[str] = []

    # -- writes ------------------------------------------------------------------
    def record(
        self,
        component: str,
        time_ms: float,
        cpu_millicores: float = 0.0,
        memory_mb: float = 0.0,
        ingress_bytes: float = 0.0,
        egress_bytes: float = 0.0,
        requests: float = 0.0,
    ) -> None:
        """Add usage observed at ``time_ms`` to the enclosing window (values accumulate,
        except memory which is tracked as a high-water mark within the window)."""
        window = self.window_of(time_ms)
        cell = self._data[(component, window)]
        cell["cpu_millicores"] += cpu_millicores
        cell["memory_mb"] = max(cell["memory_mb"], memory_mb)
        cell["ingress_bytes"] += ingress_bytes
        cell["egress_bytes"] += egress_bytes
        cell["requests"] += requests
        if component not in self._components:
            self._components.append(component)

    def record_sample(self, sample: MetricSample) -> None:
        cell = self._data[(sample.component, sample.window)]
        cell["cpu_millicores"] += sample.cpu_millicores
        cell["memory_mb"] = max(cell["memory_mb"], sample.memory_mb)
        cell["ingress_bytes"] += sample.ingress_bytes
        cell["egress_bytes"] += sample.egress_bytes
        cell["requests"] += sample.requests
        if sample.component not in self._components:
            self._components.append(sample.component)

    # -- reads --------------------------------------------------------------------
    def window_of(self, time_ms: float) -> int:
        return int(time_ms // self.window_ms)

    @property
    def components(self) -> List[str]:
        return list(self._components)

    def windows(self) -> List[int]:
        """All windows with at least one sample, sorted."""
        return sorted({w for (_c, w) in self._data})

    def value(self, component: str, window: int, metric: str) -> float:
        if metric not in METRIC_NAMES:
            raise KeyError(f"unknown metric {metric!r}")
        return self._data.get((component, window), {name: 0.0 for name in METRIC_NAMES})[metric]

    def series(
        self,
        component: str,
        metric: str,
        windows: Optional[Sequence[int]] = None,
    ) -> List[float]:
        """Time series of one metric for one component over the given (or all) windows."""
        windows = list(windows) if windows is not None else self.windows()
        return [self.value(component, w, metric) for w in windows]

    def total(self, component: str, metric: str) -> float:
        return sum(
            cell[metric] for (comp, _w), cell in self._data.items() if comp == component
        )

    def aggregate(
        self,
        metric: str,
        components: Optional[Iterable[str]] = None,
        windows: Optional[Sequence[int]] = None,
    ) -> List[float]:
        """Sum of one metric over a set of components, as a series over windows."""
        selected = set(components) if components is not None else set(self._components)
        windows = list(windows) if windows is not None else self.windows()
        return [
            sum(self.value(c, w, metric) for c in selected)
            for w in windows
        ]

    def peak(self, metric: str, components: Optional[Iterable[str]] = None) -> float:
        """Maximum over windows of the aggregate of one metric (used for capacity checks)."""
        series = self.aggregate(metric, components)
        return max(series) if series else 0.0

    def samples(self) -> List[MetricSample]:
        """All accumulated samples (mainly for persistence and tests)."""
        return [
            MetricSample(component=comp, window=window, **cell)
            for (comp, window), cell in sorted(self._data.items())
        ]
