"""Observability substrate: tracing, component metrics, mesh metrics, telemetry server."""

from .mesh import PairwiseNetworkMetrics
from .metrics import ComponentMetricsStore, MetricSample
from .server import TelemetryServer
from .tracing import Span, Trace, TraceStore, TraceStructure, new_trace_id

__all__ = [
    "Span",
    "Trace",
    "TraceStore",
    "TraceStructure",
    "new_trace_id",
    "ComponentMetricsStore",
    "MetricSample",
    "PairwiseNetworkMetrics",
    "TelemetryServer",
]
