"""Distributed tracing substrate (Jaeger-like).

A :class:`Span` mirrors the attributes shown in Figure 4 of the paper: trace id, span
id, parent id, component, operation, start timestamp and duration.  A :class:`Trace`
groups the spans of one API request, and a :class:`TraceStore` is the queryable archive
Atlas pulls traces from during application learning and drift detection.

Spans intentionally do *not* carry payload sizes: per the paper's observability model,
byte counts are only available as pairwise aggregates from the service mesh
(:mod:`repro.telemetry.mesh`), which is exactly why the network-footprint learning
problem (Eq. 1) exists.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

__all__ = ["Span", "Trace", "TraceStructure", "TraceStore", "new_trace_id"]

_trace_counter = itertools.count(1)


def new_trace_id() -> str:
    """Generate a process-unique trace id."""
    return f"trace-{next(_trace_counter):08d}"


#: Shared empty child list returned for leaf spans (callers treat children as read-only).
_NO_CHILDREN: List["Span"] = []


@dataclass(frozen=True, slots=True)
class Span:
    """One operation executed while serving an API request."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    component: str
    operation: str
    start_ms: float
    duration_ms: float

    def __post_init__(self) -> None:
        if self.duration_ms < 0:
            raise ValueError("span duration must be non-negative")

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def shifted(self, start_ms: float, duration_ms: Optional[float] = None) -> "Span":
        """A copy of this span with updated timing (used by delay injection)."""
        return Span(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            component=self.component,
            operation=self.operation,
            start_ms=start_ms,
            duration_ms=self.duration_ms if duration_ms is None else duration_ms,
        )


class TraceStructure(NamedTuple):
    """Flat, index-based view of one trace (the export consumed by compiled replay).

    ``spans`` is the canonical span order of the trace; ``parent_index[i]`` is the
    position of span ``i``'s parent in ``spans`` (``-1`` for the root);
    ``children_index[i]`` lists the positions of span ``i``'s direct children in the
    same order :meth:`Trace.children` yields them (start time, then span id).
    """

    spans: Tuple[Span, ...]
    root_index: int
    parent_index: Tuple[int, ...]
    children_index: Tuple[Tuple[int, ...], ...]


class Trace:
    """All spans created while serving one API request."""

    def __init__(self, trace_id: str, api: str, spans: Sequence[Span]) -> None:
        if not spans:
            raise ValueError("a trace must contain at least one span")
        self.trace_id = trace_id
        self.api = api
        self._spans: List[Span] = sorted(spans, key=lambda s: (s.start_ms, s.span_id))
        self._by_id: Dict[str, Span] = {s.span_id: s for s in self._spans}
        if len(self._by_id) != len(self._spans):
            raise ValueError("span ids within a trace must be unique")
        roots = [s for s in self._spans if s.parent_id is None]
        if len(roots) != 1:
            raise ValueError(f"a trace must have exactly one root span, found {len(roots)}")
        self._root = roots[0]
        self._children: Dict[str, List[Span]] = {}
        for span in self._spans:
            if span.parent_id is not None:
                if span.parent_id not in self._by_id:
                    raise ValueError(
                        f"span {span.span_id} references unknown parent {span.parent_id}"
                    )
                self._children.setdefault(span.parent_id, []).append(span)
        for children in self._children.values():
            children.sort(key=lambda s: (s.start_ms, s.span_id))
        self._structure: Optional[TraceStructure] = None

    # -- accessors -----------------------------------------------------------------
    @property
    def root(self) -> Span:
        return self._root

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def span(self, span_id: str) -> Span:
        try:
            return self._by_id[span_id]
        except KeyError:
            raise KeyError(f"unknown span {span_id!r} in trace {self.trace_id!r}") from None

    def children(self, span_id: str) -> List[Span]:
        """Direct child spans of ``span_id``, ordered by start time.

        Returns the prebuilt child index (no copy, no rescan): treat it as read-only.
        Leaves get a fresh empty list so no shared sentinel can be mutated.
        """
        return self._children.get(span_id) or []

    def parent(self, span_id: str) -> Optional[Span]:
        parent_id = self.span(span_id).parent_id
        return None if parent_id is None else self._by_id[parent_id]

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    # -- derived values ---------------------------------------------------------------
    @property
    def start_ms(self) -> float:
        return self._root.start_ms

    @property
    def latency_ms(self) -> float:
        """End-to-end latency of the API request (duration of the root span)."""
        return self._root.duration_ms

    def components(self) -> List[str]:
        """Distinct components touched by the request."""
        seen: List[str] = []
        for span in self._spans:
            if span.component not in seen:
                seen.append(span.component)
        return seen

    def invocation_edges(self) -> List[Tuple[str, str]]:
        """(caller component, callee component) for every parent/child span pair."""
        edges: List[Tuple[str, str]] = []
        for span in self._spans:
            if span.parent_id is None:
                continue
            parent = self._by_id[span.parent_id]
            edges.append((parent.component, span.component))
        return edges

    def structure(self) -> TraceStructure:
        """Index-based topology export (computed once, cached) for compiled replay.

        Compiling a trace into flat arrays needs positions, not span ids: this returns
        every span's parent position and ordered child positions in the canonical span
        order, so downstream consumers never re-walk the id maps.
        """
        if self._structure is None:
            position = {span.span_id: i for i, span in enumerate(self._spans)}
            parent_index = tuple(
                -1 if span.parent_id is None else position[span.parent_id]
                for span in self._spans
            )
            children_index = tuple(
                tuple(
                    position[child.span_id]
                    for child in self._children.get(span.span_id, _NO_CHILDREN)
                )
                for span in self._spans
            )
            self._structure = TraceStructure(
                spans=tuple(self._spans),
                root_index=position[self._root.span_id],
                parent_index=parent_index,
                children_index=children_index,
            )
        return self._structure

    def with_spans(self, spans: Sequence[Span]) -> "Trace":
        """A new trace with the same identity but replaced spans (delay injection output)."""
        return Trace(self.trace_id, self.api, spans)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Trace(api={self.api!r}, spans={len(self._spans)}, "
            f"latency={self.latency_ms:.2f}ms)"
        )


class TraceStore:
    """Queryable archive of traces, indexed by API and time."""

    def __init__(self) -> None:
        self._traces: List[Trace] = []
        self._by_api: Dict[str, List[Trace]] = {}

    def add(self, trace: Trace) -> None:
        self._traces.append(trace)
        self._by_api.setdefault(trace.api, []).append(trace)

    def extend(self, traces: Iterable[Trace]) -> None:
        for trace in traces:
            self.add(trace)

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def apis(self) -> List[str]:
        return sorted(self._by_api)

    def traces(
        self,
        api: Optional[str] = None,
        start_ms: Optional[float] = None,
        end_ms: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Trace]:
        """Traces filtered by API and root start time, most-recent last."""
        pool = self._by_api.get(api, []) if api is not None else self._traces
        selected = [
            t
            for t in pool
            if (start_ms is None or t.start_ms >= start_ms)
            and (end_ms is None or t.start_ms < end_ms)
        ]
        selected.sort(key=lambda t: t.start_ms)
        if limit is not None and limit >= 0:
            selected = selected[-limit:]
        return selected

    def latencies(
        self,
        api: str,
        start_ms: Optional[float] = None,
        end_ms: Optional[float] = None,
    ) -> List[float]:
        """End-to-end latencies of an API's requests within a time range."""
        return [t.latency_ms for t in self.traces(api, start_ms, end_ms)]

    def request_counts(
        self, window_ms: float, start_ms: float = 0.0, end_ms: Optional[float] = None
    ) -> Dict[str, Dict[int, int]]:
        """Per-API request counts bucketed into windows of ``window_ms``."""
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        counts: Dict[str, Dict[int, int]] = {}
        for trace in self._traces:
            if trace.start_ms < start_ms:
                continue
            if end_ms is not None and trace.start_ms >= end_ms:
                continue
            bucket = int((trace.start_ms - start_ms) // window_ms)
            counts.setdefault(trace.api, {}).setdefault(bucket, 0)
            counts[trace.api][bucket] += 1
        return counts

    def invocation_counts(
        self,
        api: str,
        window_ms: float,
        start_ms: float = 0.0,
        end_ms: Optional[float] = None,
    ) -> Dict[Tuple[str, str], Dict[int, int]]:
        """Per-(caller, callee) invocation counts of one API, bucketed by window.

        This is the quantity ``I^A_{ci->cj}[t]`` used by footprint learning (Eq. 1).
        """
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        counts: Dict[Tuple[str, str], Dict[int, int]] = {}
        for trace in self.traces(api, start_ms, end_ms):
            bucket = int((trace.start_ms - start_ms) // window_ms)
            for edge in trace.invocation_edges():
                counts.setdefault(edge, {}).setdefault(bucket, 0)
                counts[edge][bucket] += 1
        return counts
