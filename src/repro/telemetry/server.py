"""Telemetry server facade.

Atlas is observability-driven: everything it learns comes from a telemetry server that
exposes distributed traces, component-focused resource metrics and pairwise network
metrics (Figure 4).  :class:`TelemetryServer` bundles the three stores behind one query
interface so the application-learning stage, the resource estimator, the monitoring
stage and the benchmarks all consume telemetry the same way the real system would.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .mesh import PairwiseNetworkMetrics
from .metrics import ComponentMetricsStore
from .tracing import Trace, TraceStore

__all__ = ["TelemetryServer"]


class TelemetryServer:
    """Unified access point for traces, component metrics and mesh metrics."""

    def __init__(self, window_ms: float = 5_000.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = window_ms
        self.traces = TraceStore()
        self.metrics = ComponentMetricsStore(window_ms=window_ms)
        self.mesh = PairwiseNetworkMetrics(window_ms=window_ms)

    # -- ingestion ------------------------------------------------------------------
    def ingest_trace(self, trace: Trace) -> None:
        self.traces.add(trace)

    # -- trace queries ----------------------------------------------------------------
    def apis(self) -> List[str]:
        """APIs observed so far."""
        return self.traces.apis

    def get_traces(
        self,
        api: Optional[str] = None,
        start_ms: Optional[float] = None,
        end_ms: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Trace]:
        return self.traces.traces(api=api, start_ms=start_ms, end_ms=end_ms, limit=limit)

    def api_latencies(
        self,
        api: str,
        start_ms: Optional[float] = None,
        end_ms: Optional[float] = None,
    ) -> List[float]:
        return self.traces.latencies(api, start_ms=start_ms, end_ms=end_ms)

    def api_request_rates(self, window_ms: Optional[float] = None) -> Dict[str, List[float]]:
        """Requests per window for every API, over the observed window range."""
        window_ms = window_ms or self.window_ms
        counts = self.traces.request_counts(window_ms)
        if not counts:
            return {}
        max_bucket = max(max(buckets) for buckets in counts.values() if buckets)
        return {
            api: [float(buckets.get(i, 0)) for i in range(max_bucket + 1)]
            for api, buckets in counts.items()
        }

    def invocation_counts(
        self, api: str
    ) -> Dict[Tuple[str, str], Dict[int, int]]:
        """Per-window invocation counts of one API for every component pair."""
        return self.traces.invocation_counts(api, self.window_ms)

    # -- mesh queries -------------------------------------------------------------------
    def observed_pairs(self) -> List[Tuple[str, str]]:
        return self.mesh.pairs()

    def pair_request_series(self, source: str, destination: str) -> List[float]:
        return self.mesh.request_series(source, destination, self.common_windows())

    def pair_response_series(self, source: str, destination: str) -> List[float]:
        return self.mesh.response_series(source, destination, self.common_windows())

    def traffic_matrix(self) -> Dict[Tuple[str, str], float]:
        return self.mesh.total_traffic_matrix()

    # -- component metric queries ----------------------------------------------------------
    def component_series(self, component: str, metric: str) -> List[float]:
        return self.metrics.series(component, metric, self.common_windows())

    def component_total(self, component: str, metric: str) -> float:
        return self.metrics.total(component, metric)

    # -- window bookkeeping -------------------------------------------------------------------
    def common_windows(self) -> List[int]:
        """Union of the window indices observed by any telemetry source."""
        windows = set(self.metrics.windows()) | set(self.mesh.windows())
        return sorted(windows)

    def observation_span_ms(self) -> float:
        windows = self.common_windows()
        if not windows:
            return 0.0
        return (max(windows) + 1) * self.window_ms

    def summary(self) -> Dict[str, float]:
        """Small summary for logging and examples."""
        return {
            "traces": float(len(self.traces)),
            "apis": float(len(self.apis())),
            "components": float(len(self.metrics.components)),
            "pairs": float(len(self.mesh.pairs())),
            "windows": float(len(self.common_windows())),
        }
