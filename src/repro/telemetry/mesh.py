"""Pairwise network metrics (Istio-like service-mesh telemetry).

The mesh records, per time window, the total number of bytes transferred from one
component to another during requests and during responses — aggregated over *all* APIs.
That aggregation is precisely the limitation the paper calls out: the mesh alone cannot
tell how many bytes a single API's invocation moves, which is why Atlas learns per-API
network footprints (Eq. 1) by combining these counters with trace-derived invocation
counts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PairwiseNetworkMetrics"]


class PairwiseNetworkMetrics:
    """Windowed request/response byte counters per (source, destination) pair."""

    def __init__(self, window_ms: float = 5_000.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = window_ms
        # (src, dst, window) -> [request_bytes, response_bytes]
        self._data: Dict[Tuple[str, str, int], List[float]] = defaultdict(lambda: [0.0, 0.0])

    # -- writes ----------------------------------------------------------------
    def window_of(self, time_ms: float) -> int:
        return int(time_ms // self.window_ms)

    def record(
        self,
        source: str,
        destination: str,
        time_ms: float,
        request_bytes: float,
        response_bytes: float,
    ) -> None:
        """Accumulate one invocation's request/response bytes into its window."""
        if request_bytes < 0 or response_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        cell = self._data[(source, destination, self.window_of(time_ms))]
        cell[0] += request_bytes
        cell[1] += response_bytes

    # -- reads ------------------------------------------------------------------
    def pairs(self) -> List[Tuple[str, str]]:
        """All (source, destination) pairs with recorded traffic."""
        return sorted({(s, d) for (s, d, _w) in self._data})

    def windows(self) -> List[int]:
        return sorted({w for (_s, _d, w) in self._data})

    def request_bytes(self, source: str, destination: str, window: int) -> float:
        """Total request-direction bytes for one pair in one window (``U^req`` in Eq. 1)."""
        return self._data.get((source, destination, window), [0.0, 0.0])[0]

    def response_bytes(self, source: str, destination: str, window: int) -> float:
        return self._data.get((source, destination, window), [0.0, 0.0])[1]

    def request_series(
        self, source: str, destination: str, windows: Optional[Sequence[int]] = None
    ) -> List[float]:
        windows = list(windows) if windows is not None else self.windows()
        return [self.request_bytes(source, destination, w) for w in windows]

    def response_series(
        self, source: str, destination: str, windows: Optional[Sequence[int]] = None
    ) -> List[float]:
        windows = list(windows) if windows is not None else self.windows()
        return [self.response_bytes(source, destination, w) for w in windows]

    def total_bytes(self, source: str, destination: str) -> float:
        """All bytes (request + response) ever recorded for one directed pair."""
        return sum(
            cell[0] + cell[1]
            for (s, d, _w), cell in self._data.items()
            if s == source and d == destination
        )

    def total_traffic_matrix(self) -> Dict[Tuple[str, str], float]:
        """Directed pair -> total bytes.  This is what affinity-based baselines consume."""
        matrix: Dict[Tuple[str, str], float] = defaultdict(float)
        for (s, d, _w), cell in self._data.items():
            matrix[(s, d)] += cell[0] + cell[1]
        return dict(matrix)

    def traffic_between(self, group_a: Sequence[str], group_b: Sequence[str]) -> float:
        """Total bytes crossing between two disjoint component groups (either direction)."""
        set_a, set_b = set(group_a), set(group_b)
        total = 0.0
        for (s, d, _w), cell in self._data.items():
            if (s in set_a and d in set_b) or (s in set_b and d in set_a):
                total += cell[0] + cell[1]
        return total
