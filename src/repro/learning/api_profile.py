"""API profiling: learn each user-facing API's characteristics from traces.

Atlas's application-learning stage builds, for every API, a profile containing

* the components the API touches and the stateful subset ``SC(A)`` (Eq. 3),
* per-request invocation counts for every (caller, callee) component pair,
* the observed end-to-end latency distribution,
* the execution-workflow relationships between sibling spans (parallel / sequential)
  and between child and parent (background), recovered purely from span timestamps as
  described in Section 4.1.1.

Everything here is derived from telemetry only — no knowledge of the application's call
graphs is used, in line with the paper's unsupervised-learning design principle.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..apps.model import ExecutionMode
from ..telemetry.tracing import Span, Trace
from ..telemetry.server import TelemetryServer

__all__ = [
    "classify_sibling",
    "classify_background",
    "SpanRelation",
    "ApiProfile",
    "ApiProfiler",
]

#: Fraction of the shorter span's duration that must overlap for two siblings to be
#: considered parallel (robust to sub-millisecond scheduling jitter).
_PARALLEL_OVERLAP_FRACTION = 0.25


def classify_sibling(earlier: Span, later: Span) -> ExecutionMode:
    """Classify two sibling spans as parallel or sequential from their timestamps."""
    overlap = min(earlier.end_ms, later.end_ms) - max(earlier.start_ms, later.start_ms)
    shorter = max(min(earlier.duration_ms, later.duration_ms), 1e-9)
    if overlap > _PARALLEL_OVERLAP_FRACTION * shorter:
        return ExecutionMode.PARALLEL
    return ExecutionMode.SEQUENTIAL


def classify_background(child: Span, parent: Span, tolerance_ms: float = 0.05) -> bool:
    """A child whose end time exceeds its parent's end time runs in the background."""
    return child.end_ms > parent.end_ms + tolerance_ms


@dataclass(frozen=True)
class SpanRelation:
    """Workflow relationship of one child span within its parent."""

    component: str
    operation: str
    mode: ExecutionMode


@dataclass
class ApiProfile:
    """Everything Atlas knows about one user-facing API after application learning."""

    api: str
    request_count: int
    components: List[str]
    stateful_components: List[str]
    latencies_ms: List[float]
    invocations_per_request: Dict[Tuple[str, str], float]
    workflow_modes: Dict[Tuple[str, str, str], ExecutionMode]
    sample_traces: List[Trace] = field(default_factory=list)

    @property
    def mean_latency_ms(self) -> float:
        return float(statistics.fmean(self.latencies_ms)) if self.latencies_ms else 0.0

    @property
    def p95_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(self.latencies_ms, 95))

    def latency_histogram(self, bins: int = 20) -> Tuple[List[float], List[float]]:
        """(bin_edges, counts) of the observed latency distribution."""
        if not self.latencies_ms:
            return [], []
        counts, edges = np.histogram(self.latencies_ms, bins=bins)
        return list(edges), list(counts.astype(float))

    def uses_component(self, component: str) -> bool:
        return component in self.components

    def background_components(self) -> Set[str]:
        """Components only ever invoked with a background workflow in this API."""
        modes_by_component: Dict[str, Set[ExecutionMode]] = {}
        for (_parent, component, _op), mode in self.workflow_modes.items():
            modes_by_component.setdefault(component, set()).add(mode)
        return {
            comp
            for comp, modes in modes_by_component.items()
            if modes == {ExecutionMode.BACKGROUND}
        }


class ApiProfiler:
    """Builds :class:`ApiProfile` objects from the telemetry server."""

    def __init__(
        self,
        telemetry: TelemetryServer,
        stateful_components: Optional[Sequence[str]] = None,
        traces_per_api: int = 100,
    ) -> None:
        if traces_per_api <= 0:
            raise ValueError("traces_per_api must be positive")
        self.telemetry = telemetry
        self.stateful_components = set(stateful_components or [])
        self.traces_per_api = traces_per_api

    # -- profiling ---------------------------------------------------------------------
    def profile(self, api: str) -> ApiProfile:
        """Profile one API from its recorded traces."""
        traces = self.telemetry.get_traces(api=api)
        if not traces:
            raise ValueError(f"no traces recorded for API {api!r}")
        components: List[str] = []
        latencies: List[float] = []
        edge_counts: Dict[Tuple[str, str], int] = {}
        workflow: Dict[Tuple[str, str, str], ExecutionMode] = {}
        for trace in traces:
            latencies.append(trace.latency_ms)
            for comp in trace.components():
                if comp not in components:
                    components.append(comp)
            for edge in trace.invocation_edges():
                edge_counts[edge] = edge_counts.get(edge, 0) + 1
            self._classify_trace(trace, workflow)
        n = len(traces)
        invocations = {edge: count / n for edge, count in edge_counts.items()}
        stateful = [c for c in components if c in self.stateful_components]
        samples = traces[-self.traces_per_api:]
        return ApiProfile(
            api=api,
            request_count=n,
            components=components,
            stateful_components=stateful,
            latencies_ms=latencies,
            invocations_per_request=invocations,
            workflow_modes=workflow,
            sample_traces=samples,
        )

    def profile_all(self) -> Dict[str, ApiProfile]:
        """Profile every API observed by the telemetry server."""
        return {api: self.profile(api) for api in self.telemetry.apis()}

    # -- workflow classification ----------------------------------------------------------
    def _classify_trace(
        self, trace: Trace, workflow: Dict[Tuple[str, str, str], ExecutionMode]
    ) -> None:
        """Record the workflow mode of every invocation edge of one trace.

        Background takes precedence over the sibling classification; among siblings, a
        span is parallel if it significantly overlaps any sibling.  The last observation
        wins across traces (they are consistent for a deterministic application).
        """
        for span in trace.spans:
            children = trace.children(span.span_id)
            for i, child in enumerate(children):
                key = (span.component, child.component, child.operation)
                if classify_background(child, span):
                    workflow[key] = ExecutionMode.BACKGROUND
                    continue
                mode = ExecutionMode.SEQUENTIAL
                for j, sibling in enumerate(children):
                    if i == j:
                        continue
                    if classify_sibling(sibling, child) is ExecutionMode.PARALLEL:
                        mode = ExecutionMode.PARALLEL
                        break
                workflow[key] = mode
