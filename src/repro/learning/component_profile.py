"""Component profiling: per-component resource characteristics from telemetry.

The component profile is what the greedy baselines (offload busiest / smallest) rank on
and what the resource estimator and the cost model consume: observed CPU, memory and
traffic statistics plus the stateful flag and persistent data size provided as
deployment metadata by the application owner.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..apps.model import Application
from ..telemetry.server import TelemetryServer

__all__ = ["ComponentProfile", "ComponentProfiler"]


@dataclass(frozen=True)
class ComponentProfile:
    """Observed resource behaviour of one component."""

    component: str
    stateful: bool
    storage_gb: float
    mean_cpu_millicores: float
    peak_cpu_millicores: float
    mean_memory_mb: float
    peak_memory_mb: float
    total_ingress_bytes: float
    total_egress_bytes: float
    mean_request_rate: float
    apis: List[str]

    @property
    def busyness(self) -> float:
        """Scalar ranking key used by the greedy baselines (CPU-bound workloads)."""
        return self.mean_cpu_millicores

    @property
    def total_traffic_bytes(self) -> float:
        return self.total_ingress_bytes + self.total_egress_bytes


class ComponentProfiler:
    """Builds :class:`ComponentProfile` objects from telemetry + deployment metadata."""

    def __init__(self, telemetry: TelemetryServer, application: Application) -> None:
        self.telemetry = telemetry
        self.application = application

    def profile(self, component: str) -> ComponentProfile:
        comp = self.application.component(component)
        windows = self.telemetry.common_windows()
        cpu_series = self.telemetry.metrics.series(component, "cpu_millicores", windows)
        mem_series = self.telemetry.metrics.series(component, "memory_mb", windows)
        req_series = self.telemetry.metrics.series(component, "requests", windows)
        window_s = self.telemetry.window_ms / 1_000.0
        mean = lambda xs: float(statistics.fmean(xs)) if xs else 0.0  # noqa: E731
        peak = lambda xs: float(max(xs)) if xs else 0.0  # noqa: E731
        return ComponentProfile(
            component=component,
            stateful=comp.stateful,
            storage_gb=comp.resources.storage_gb,
            mean_cpu_millicores=mean(cpu_series),
            peak_cpu_millicores=peak(cpu_series),
            mean_memory_mb=mean(mem_series),
            peak_memory_mb=peak(mem_series),
            total_ingress_bytes=self.telemetry.component_total(component, "ingress_bytes"),
            total_egress_bytes=self.telemetry.component_total(component, "egress_bytes"),
            mean_request_rate=mean(req_series) / window_s,
            apis=self.application.apis_using_component(component),
        )

    def profile_all(self) -> Dict[str, ComponentProfile]:
        return {name: self.profile(name) for name in self.application.component_names}

    # -- rankings used by baselines -----------------------------------------------------
    def ranked_by_busyness(self, descending: bool = True) -> List[ComponentProfile]:
        profiles = list(self.profile_all().values())
        return sorted(profiles, key=lambda p: p.busyness, reverse=descending)

    def ranked_by_traffic(self, descending: bool = True) -> List[ComponentProfile]:
        profiles = list(self.profile_all().values())
        return sorted(profiles, key=lambda p: p.total_traffic_bytes, reverse=descending)
