"""Resource estimation (the paper's DeepRest [34] dependency).

Atlas needs, for the period of interest, the *expected* per-component resource usage
``Ũ^r_c[t]`` given the expected API traffic — to check the on-prem capacity constraint
and to price the cloud side of a plan.  The paper delegates this to DeepRest, an
API-aware deep resource estimator.  DeepRest itself is closed; we substitute a linear
API-attribution model with the same interface: it learns, from the same telemetry, how
much of each resource one request of each API costs a component, and extrapolates to any
future API traffic (including traffic scaled well beyond what was observed, which is the
hybrid-burst use case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

from ..apps.model import Application
from ..telemetry.server import TelemetryServer

__all__ = ["ResourceEstimate", "ResourceEstimator"]

#: Resources the estimator models.  Storage is taken from deployment metadata because a
#: database's on-disk size is not proportional to the instantaneous request rate.
MODELED_RESOURCES = ("cpu_millicores", "memory_mb")


@dataclass
class ResourceEstimate:
    """Expected per-component usage series for a period of interest.

    ``usage[resource][component]`` is a list over time steps; all series share
    ``step_ms``.
    """

    step_ms: float
    usage: Dict[str, Dict[str, List[float]]]
    api_rates: Dict[str, List[float]] = field(default_factory=dict)
    #: Lazily-built per-resource (component -> row, series matrix) view used to
    #: aggregate subsets without re-walking python lists on every plan evaluation.
    _matrices: Dict[str, Tuple[Dict[str, int], "np.ndarray"]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def steps(self) -> int:
        for per_component in self.usage.values():
            for series in per_component.values():
                return len(series)
        return 0

    def component_series(self, resource: str, component: str) -> List[float]:
        return list(self.usage.get(resource, {}).get(component, []))

    def _matrix(self, resource: str) -> Tuple[Dict[str, int], "np.ndarray"]:
        cached = self._matrices.get(resource)
        if cached is None:
            per_component = self.usage.get(resource, {})
            rows = {component: i for i, component in enumerate(per_component)}
            matrix = (
                np.asarray(list(per_component.values()), dtype=np.float64)
                if per_component
                else np.zeros((0, self.steps), dtype=np.float64)
            )
            cached = (rows, matrix)
            self._matrices[resource] = cached
        return cached

    def aggregate_series(
        self, resource: str, components: Sequence[str]
    ) -> List[float]:
        """Sum of one resource over a component subset, per time step."""
        rows, matrix = self._matrix(resource)
        totals = np.zeros(matrix.shape[1] if matrix.size else self.steps, dtype=np.float64)
        selected = set(components)
        # Accumulate row by row (in storage order) so the per-step summation order is
        # identical to the original python loop — bit-for-bit stable results.
        for component, row in rows.items():
            if component in selected:
                totals += matrix[row]
        return totals.tolist()

    def peak(self, resource: str, components: Sequence[str]) -> float:
        series = self.aggregate_series(resource, components)
        return max(series) if series else 0.0

    def aggregate_matrix(
        self, resource: str, members: "np.ndarray", columns: Sequence[str]
    ) -> "np.ndarray":
        """Per-plan aggregate series for a whole batch of component subsets.

        ``members`` is a ``(plans, len(columns))`` boolean matrix selecting, per plan,
        the components (named by ``columns``) to sum; returns ``(plans, steps)``.
        Rows are accumulated one component at a time in the same storage order as
        :meth:`aggregate_series`, so every output row is bitwise equal to the scalar
        aggregation of that plan's subset.
        """
        rows, matrix = self._matrix(resource)
        members = np.asarray(members, dtype=bool)
        steps = matrix.shape[1] if matrix.size else self.steps
        totals = np.zeros((members.shape[0], steps), dtype=np.float64)
        column_of = {name: i for i, name in enumerate(columns)}
        for component, row in rows.items():
            column = column_of.get(component)
            if column is None:
                continue
            selected = members[:, column]
            if selected.any():
                totals[selected] += matrix[row]
        return totals

    def peak_matrix(
        self, resource: str, members: "np.ndarray", columns: Sequence[str]
    ) -> "np.ndarray":
        """Per-plan peak of one resource over per-plan component subsets."""
        totals = self.aggregate_matrix(resource, members, columns)
        if totals.shape[1] == 0:
            return np.zeros(totals.shape[0], dtype=np.float64)
        return totals.max(axis=1)


class ResourceEstimator:
    """API-aware linear resource estimator (DeepRest substitute).

    For every component and resource it fits ``usage[t] ≈ idle + Σ_A coef_A * rate_A[t]``
    with non-negative coefficients, where ``rate_A[t]`` is the number of requests of API
    ``A`` observed in window ``t``.
    """

    def __init__(self, application: Application, telemetry: TelemetryServer) -> None:
        self.application = application
        self.telemetry = telemetry
        self._apis: List[str] = []
        # (resource, component) -> (idle, coefficients aligned with self._apis)
        self._models: Dict[Tuple[str, str], Tuple[float, np.ndarray]] = {}
        self._fitted = False

    # -- fitting --------------------------------------------------------------------------
    def fit(self) -> "ResourceEstimator":
        """Fit attribution models from the telemetry collected during application learning."""
        rates = self.telemetry.api_request_rates()
        if not rates:
            raise ValueError("telemetry contains no API traffic to fit on")
        self._apis = sorted(rates)
        n_windows = min(len(series) for series in rates.values())
        if n_windows < 2:
            raise ValueError("need at least two telemetry windows to fit the estimator")
        design = np.column_stack(
            [np.asarray(rates[api][:n_windows], dtype=float) for api in self._apis]
        )
        # Affine term models idle usage.
        design_affine = np.column_stack([np.ones(n_windows), design])
        windows = self.telemetry.common_windows()[:n_windows]
        for component in self.application.component_names:
            for resource in MODELED_RESOURCES:
                series = np.asarray(
                    self.telemetry.metrics.series(component, resource, windows), dtype=float
                )
                if series.size == 0 or not series.any():
                    self._models[(resource, component)] = (0.0, np.zeros(len(self._apis)))
                    continue
                coef, _residual = nnls(design_affine, series)
                self._models[(resource, component)] = (float(coef[0]), coef[1:])
        self._fitted = True
        return self

    @property
    def apis(self) -> List[str]:
        return list(self._apis)

    def attribution(self, resource: str, component: str) -> Dict[str, float]:
        """Per-API usage attribution coefficients for one component/resource."""
        self._require_fitted()
        _idle, coef = self._models[(resource, component)]
        return {api: float(c) for api, c in zip(self._apis, coef)}

    # -- prediction ------------------------------------------------------------------------
    def predict(
        self,
        api_rates: Mapping[str, Sequence[float]],
        step_ms: Optional[float] = None,
    ) -> ResourceEstimate:
        """Expected usage for the given per-window API request counts."""
        self._require_fitted()
        step_ms = step_ms or self.telemetry.window_ms
        if not api_rates:
            raise ValueError("api_rates must not be empty")
        steps = max(len(series) for series in api_rates.values())
        rate_matrix = np.zeros((steps, len(self._apis)))
        for col, api in enumerate(self._apis):
            series = list(api_rates.get(api, []))
            for row in range(min(steps, len(series))):
                rate_matrix[row, col] = series[row]
        usage: Dict[str, Dict[str, List[float]]] = {r: {} for r in MODELED_RESOURCES}
        for (resource, component), (idle, coef) in self._models.items():
            predicted = idle + rate_matrix @ coef
            usage[resource][component] = [float(max(v, 0.0)) for v in predicted]
        # Storage comes from deployment metadata (GB on disk, not rate-dependent).
        usage["storage_gb"] = {
            comp.name: [comp.resources.storage_gb] * steps
            for comp in self.application.components
        }
        return ResourceEstimate(
            step_ms=step_ms,
            usage=usage,
            api_rates={api: list(series) for api, series in api_rates.items()},
        )

    def predict_scaled(self, scale: float, steps: Optional[int] = None) -> ResourceEstimate:
        """Expected usage if the observed traffic were multiplied by ``scale``.

        This is the paper's evaluation setting: "serve API traffic with 5x more users
        than ever".
        """
        if scale < 0:
            raise ValueError("scale must be non-negative")
        observed = self.telemetry.api_request_rates()
        scaled = {
            api: [v * scale for v in (series if steps is None else series[:steps])]
            for api, series in observed.items()
        }
        return self.predict(scaled)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("ResourceEstimator.fit() must be called before prediction")
