"""Per-API network footprint learning (Section 4.1.1, Eq. 1).

The service mesh only reports *aggregate* bytes between a component pair per time
window; the traces tell how many times each API invoked that pair in the same window.
Atlas recovers the average request/response size of each API's invocation of the pair by
solving, per pair and per direction, the least-squares problem

    argmin_{d_A >= 0}  sum_t ( U[t] - sum_A I_A[t] * d_A )^2

The learned footprint is used (i) to size the injected delay in the latency estimator
(Eq. 2), (ii) to attribute egress traffic to plans in the cost model, and (iii) as the
expected-traffic model of the data-breach detector (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

from ..telemetry.server import TelemetryServer

__all__ = ["EdgeFootprint", "NetworkFootprint", "FootprintLearner"]

Pair = Tuple[str, str]


@dataclass(frozen=True)
class EdgeFootprint:
    """Learned request/response size of one API's invocation of one component pair."""

    api: str
    source: str
    destination: str
    request_bytes: float
    response_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.request_bytes + self.response_bytes


class NetworkFootprint:
    """The learned footprints of all APIs: ``footprint[api][(src, dst)] -> EdgeFootprint``."""

    def __init__(self, edges: Sequence[EdgeFootprint]) -> None:
        self._by_api: Dict[str, Dict[Pair, EdgeFootprint]] = {}
        for edge in edges:
            self._by_api.setdefault(edge.api, {})[(edge.source, edge.destination)] = edge

    @property
    def apis(self) -> List[str]:
        return sorted(self._by_api)

    def edges_of(self, api: str) -> Dict[Pair, EdgeFootprint]:
        return dict(self._by_api.get(api, {}))

    def edge(self, api: str, source: str, destination: str) -> Optional[EdgeFootprint]:
        return self._by_api.get(api, {}).get((source, destination))

    def request_bytes(self, api: str, source: str, destination: str) -> float:
        edge = self.edge(api, source, destination)
        return edge.request_bytes if edge else 0.0

    def response_bytes(self, api: str, source: str, destination: str) -> float:
        edge = self.edge(api, source, destination)
        return edge.response_bytes if edge else 0.0

    def round_trip_bytes(self, api: str, source: str, destination: str) -> float:
        """``d_req + d_resp`` — the payload term of Eq. 2."""
        edge = self.edge(api, source, destination)
        return edge.total_bytes if edge else 0.0

    def pairs(self) -> List[Pair]:
        pairs = set()
        for edges in self._by_api.values():
            pairs.update(edges)
        return sorted(pairs)

    # -- expected traffic reconstruction (Section 6) ----------------------------------------
    def expected_pair_traffic(
        self, api_request_counts: Mapping[str, float]
    ) -> Dict[Pair, float]:
        """Expected total bytes per pair given how many requests of each API were served."""
        traffic: Dict[Pair, float] = {}
        for api, count in api_request_counts.items():
            for pair, edge in self._by_api.get(api, {}).items():
                traffic[pair] = traffic.get(pair, 0.0) + count * edge.total_bytes
        return traffic

    def expected_cross_location_traffic(
        self, plan: Mapping[str, int], api_request_counts: Mapping[str, float]
    ) -> Dict[Tuple[int, int], float]:
        """Expected bytes crossing each (ordered) location pair under one placement.

        Keys are ``(caller location, callee location)`` with caller != callee; values
        are total request+response bytes of all edges mapped onto that inter-location
        link.  With two locations there is a single off-diagonal pair per direction;
        with N locations this is the link-load matrix multi-region cost and capacity
        planning reason about.
        """
        loads: Dict[Tuple[int, int], float] = {}
        for api, count in api_request_counts.items():
            if count <= 0:
                continue
            for (src, dst), edge in self._by_api.get(api, {}).items():
                if src not in plan or dst not in plan:
                    continue
                src_loc, dst_loc = plan[src], plan[dst]
                if src_loc == dst_loc:
                    continue
                key = (src_loc, dst_loc)
                loads[key] = loads.get(key, 0.0) + count * edge.total_bytes
        return loads

    def edge_arrays(
        self,
        api_request_counts: Mapping[str, float],
        component_index: Mapping[str, int],
    ) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
        """Flattened per-(API, edge) arrays for batched traffic aggregation.

        Returns ``(src_cols, dst_cols, total_bytes, request_bytes, response_bytes)``
        where the byte arrays are already scaled by the API's request count.  Entries
        appear in the exact iteration order of the scalar accounting (APIs in
        ``api_request_counts`` order, edges in learned order; APIs with non-positive
        counts and edges touching unknown components are skipped), which is what lets
        the batched cost/traffic pipelines accumulate bitwise-identically to the
        per-plan loops.
        """
        src_cols: List[int] = []
        dst_cols: List[int] = []
        total_bytes: List[float] = []
        request_bytes: List[float] = []
        response_bytes: List[float] = []
        for api, count in api_request_counts.items():
            if count <= 0:
                continue
            for (src, dst), edge in self._by_api.get(api, {}).items():
                src_col = component_index.get(src)
                dst_col = component_index.get(dst)
                if src_col is None or dst_col is None:
                    continue
                src_cols.append(src_col)
                dst_cols.append(dst_col)
                total_bytes.append(count * edge.total_bytes)
                request_bytes.append(count * edge.request_bytes)
                response_bytes.append(count * edge.response_bytes)
        return (
            np.asarray(src_cols, dtype=np.intp),
            np.asarray(dst_cols, dtype=np.intp),
            np.asarray(total_bytes, dtype=np.float64),
            np.asarray(request_bytes, dtype=np.float64),
            np.asarray(response_bytes, dtype=np.float64),
        )

    def cross_location_bytes_batch(
        self,
        plan_matrix: "np.ndarray",
        components: Sequence[str],
        api_request_counts: Mapping[str, float],
    ) -> "np.ndarray":
        """Per-plan total bytes crossing any inter-location link (batched).

        The plan matrix is ``(plans, len(components))`` integer location ids; entry
        ``p`` equals ``sum(expected_cross_location_traffic(plan_p, counts).values())``
        for the corresponding per-plan mapping, accumulated in the same entry order.
        """
        matrix = np.asarray(plan_matrix)
        component_index = {name: i for i, name in enumerate(components)}
        src_cols, dst_cols, total_bytes, _req, _resp = self.edge_arrays(
            api_request_counts, component_index
        )
        totals = np.zeros(matrix.shape[0], dtype=np.float64)
        for entry in range(len(src_cols)):
            crossing = matrix[:, src_cols[entry]] != matrix[:, dst_cols[entry]]
            if crossing.any():
                totals[crossing] += total_bytes[entry]
        return totals

    # -- evaluation helpers -------------------------------------------------------------------
    def accuracy_against(
        self, reference: Mapping[str, Mapping[Pair, Tuple[float, float]]]
    ) -> Dict[str, float]:
        """Percentage accuracy per API against ground-truth (request, response) sizes.

        Accuracy of one value is ``1 - |est - real| / real`` (clamped at 0); the per-API
        figure is the mean over all edges and both directions, matching Figure 20.
        """
        accuracies: Dict[str, float] = {}
        for api, edges in reference.items():
            scores: List[float] = []
            for pair, (real_req, real_resp) in edges.items():
                est_req = self.request_bytes(api, *pair)
                est_resp = self.response_bytes(api, *pair)
                for est, real in ((est_req, real_req), (est_resp, real_resp)):
                    if real <= 0:
                        continue
                    scores.append(max(0.0, 1.0 - abs(est - real) / real))
            if scores:
                accuracies[api] = 100.0 * float(np.mean(scores))
        return accuracies


class FootprintLearner:
    """Learns :class:`NetworkFootprint` from mesh counters + trace invocation counts."""

    def __init__(self, telemetry: TelemetryServer, min_windows: int = 3) -> None:
        if min_windows < 1:
            raise ValueError("min_windows must be at least 1")
        self.telemetry = telemetry
        self.min_windows = min_windows

    def learn(self, apis: Optional[Sequence[str]] = None) -> NetworkFootprint:
        """Solve Eq. 1 for every observed component pair and both directions."""
        apis = list(apis) if apis is not None else self.telemetry.apis()
        windows = self.telemetry.common_windows()
        if len(windows) < self.min_windows:
            raise ValueError(
                f"need at least {self.min_windows} telemetry windows, have {len(windows)}"
            )
        # Invocation counts per API: (src, dst) -> {window -> count}
        invocations: Dict[str, Dict[Pair, Dict[int, int]]] = {
            api: self.telemetry.invocation_counts(api) for api in apis
        }
        edges: List[EdgeFootprint] = []
        for pair in self.telemetry.observed_pairs():
            involved = [api for api in apis if pair in invocations[api]]
            if not involved:
                continue
            design = np.zeros((len(windows), len(involved)))
            for col, api in enumerate(involved):
                counts = invocations[api][pair]
                for row, window in enumerate(windows):
                    design[row, col] = counts.get(window, 0)
            req_target = np.array(
                [self.telemetry.mesh.request_bytes(pair[0], pair[1], w) for w in windows]
            )
            resp_target = np.array(
                [self.telemetry.mesh.response_bytes(pair[0], pair[1], w) for w in windows]
            )
            req_sizes = self._solve(design, req_target)
            resp_sizes = self._solve(design, resp_target)
            for api, req_size, resp_size in zip(involved, req_sizes, resp_sizes):
                edges.append(
                    EdgeFootprint(
                        api=api,
                        source=pair[0],
                        destination=pair[1],
                        request_bytes=float(req_size),
                        response_bytes=float(resp_size),
                    )
                )
        return NetworkFootprint(edges)

    @staticmethod
    def _solve(design: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Non-negative least squares with a fallback for degenerate systems."""
        if not design.any():
            return np.zeros(design.shape[1])
        try:
            solution, _residual = nnls(design, target)
        except Exception:  # pragma: no cover - nnls rarely fails; keep the pipeline alive
            solution, *_ = np.linalg.lstsq(design, target, rcond=None)
            solution = np.clip(solution, 0.0, None)
        return solution
