"""Application learning: API profiles, component profiles, footprints, resource estimation."""

from .api_profile import (
    ApiProfile,
    ApiProfiler,
    SpanRelation,
    classify_background,
    classify_sibling,
)
from .component_profile import ComponentProfile, ComponentProfiler
from .estimator import ResourceEstimate, ResourceEstimator
from .footprint import EdgeFootprint, FootprintLearner, NetworkFootprint

__all__ = [
    "ApiProfile",
    "ApiProfiler",
    "SpanRelation",
    "classify_sibling",
    "classify_background",
    "ComponentProfile",
    "ComponentProfiler",
    "EdgeFootprint",
    "NetworkFootprint",
    "FootprintLearner",
    "ResourceEstimate",
    "ResourceEstimator",
]
