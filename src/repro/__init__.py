"""Reproduction of "Atlas: Hybrid Cloud Migration Advisor for Interactive Microservices"
(EuroSys 2024).

The package is organized by subsystem:

* :mod:`repro.apps` -- application topology models (social network, hotel reservation);
* :mod:`repro.cluster` -- hybrid-cloud substrate (datacenters, network, placements);
* :mod:`repro.telemetry` -- observability substrate (traces, metrics, mesh counters);
* :mod:`repro.workload` -- workload generation (diurnal profiles, social graph);
* :mod:`repro.simulator` -- ground-truth request execution simulator;
* :mod:`repro.learning` -- application learning (profiles, footprints, estimation);
* :mod:`repro.quality` -- migration quality models (performance, availability, cost);
* :mod:`repro.optimizer` -- plan search (NSGA-II, DRL crossover, Atlas GA, baselines);
* :mod:`repro.recommend` -- the Atlas advisor facade and plan hierarchy;
* :mod:`repro.monitoring` -- post-migration drift detection and breach detection;
* :mod:`repro.serving` -- durable fleet serving (on-disk artifact store, advisor daemon);
* :mod:`repro.analysis` -- experiment pipelines reproducing the paper's figures.

Quick start::

    from repro import Atlas, build_social_network
    from repro.quality import MigrationPreferences
    from repro.workload import default_scenario, WorkloadGenerator
    from repro.simulator import simulate_workload

    app = build_social_network()
    scenario = default_scenario(app)
    requests = WorkloadGenerator(app, scenario).generate(scenario.profile.duration_ms)
    telemetry = simulate_workload(app, requests).telemetry

    atlas = Atlas(app, MigrationPreferences.pin_on_prem(["UserMongoDB"]))
    atlas.learn(telemetry)
    recommendation = atlas.recommend(expected_scale=5.0)
    print(recommendation.performance_optimized().plan.offloaded())
"""

from .apps import build_hotel_reservation, build_social_network
from .cluster import MigrationPlan, default_hybrid_cluster, default_network_model
from .quality import (
    CVaR,
    MigrationPreferences,
    PlacementProblem,
    ScenarioSet,
    ScenarioSpec,
    WeightedMean,
    WorstCase,
)
from .recommend import Atlas, AtlasConfig, Recommendation
from .serving import AdvisorDaemon, ArtifactStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Atlas",
    "AtlasConfig",
    "AdvisorDaemon",
    "ArtifactStore",
    "Recommendation",
    "MigrationPlan",
    "MigrationPreferences",
    "PlacementProblem",
    "ScenarioSpec",
    "ScenarioSet",
    "WorstCase",
    "WeightedMean",
    "CVaR",
    "build_social_network",
    "build_hotel_reservation",
    "default_hybrid_cluster",
    "default_network_model",
]
