"""Egress-aware recommendation: a K=4 placement problem through the plugin API.

Run with ``python examples/custom_objective.py``.  The script

1. learns the social network from simulated telemetry (as in the quickstart),
2. declares a :class:`~repro.quality.problem.PlacementProblem` — the paper's exact
   QPerf / QAvai / QCost stack *plus* the shipped
   :class:`~repro.quality.problem.EgressTrafficObjective` (cross-location GB from the
   learned network footprints) as a fourth Pareto axis,
3. runs ``Atlas.recommend(problem=...)`` — the declarative front door — and prints
   the 4-D Pareto front, knee point first (distance-to-ideal ordering),
4. defines a tiny *custom* objective inline (components moved off-prem) and re-runs
   the search with K=5, showing that the GA, NSGA-II machinery and the result
   surface all follow the problem's dimensionality with zero optimizer changes.
"""

from repro import Atlas, MigrationPreferences
from repro.analysis import format_table
from repro.apps import build_social_network
from repro.optimizer import GAConfig
from repro.quality import EgressTrafficObjective, Objective, PlacementProblem
from repro.recommend import AtlasConfig
from repro.simulator import simulate_workload
from repro.workload import WorkloadGenerator, default_scenario


class OffloadCountObjective(Objective):
    """Custom plugin: the number of components placed off-prem (minimized).

    One vectorized pass over the shared P×C location-matrix context is all a new
    objective needs; the scalar oracle falls back to a one-row matrix automatically.
    """

    name = "offloaded"

    def score_matrix(self, ctx):
        return (ctx.matrix != 0).sum(axis=1).astype(float)


def main() -> None:
    app = build_social_network()
    scenario = default_scenario(app, base_rps=12, peak_rps=22, duration_ms=90_000)
    requests = WorkloadGenerator(app, scenario, seed=7).generate(
        scenario.profile.duration_ms
    )
    learning = simulate_workload(app, requests, seed=7)

    atlas = Atlas(
        app,
        config=AtlasConfig(
            traces_per_api=10,
            ga=GAConfig(
                population_size=60,
                offspring_per_generation=30,
                evaluation_budget=2_000,
                train_iterations=120,
                train_batch_size=2,
                seed=1,
            ),
        ),
    )
    atlas.learn(learning.telemetry)

    burst_scale = 5.0
    peak_cpu = atlas.knowledge.estimator.predict_scaled(burst_scale).peak(
        "cpu_millicores", app.component_names
    )
    preferences = MigrationPreferences.pin_on_prem(
        ["UserMongoDB", "PostStorageMongoDB", "MediaMongoDB"],
        onprem_limits={"cpu_millicores": 0.8 * peak_cpu},
    )

    # The declarative front door: the paper's stack + egress GB as a 4th axis.
    problem = PlacementProblem.default(
        preferences=preferences,
        extra_objectives=(EgressTrafficObjective(),),
    )
    recommendation = atlas.recommend(expected_scale=burst_scale, problem=problem)

    print(f"Objectives: {recommendation.problem.objective_names}")
    rows = [
        {
            "rank": i,  # knee point (balanced compromise) first
            "perf_impact": q.value("qperf"),
            "disrupted_apis": q.value("qavai"),
            "cost_usd": q.value("qcost"),
            "egress_gb": q.value("egress_gb"),
            "offloaded": len(q.plan.offloaded()),
        }
        for i, q in enumerate(recommendation.plans)
    ]
    print()
    print(format_table(rows, title="4-D Pareto front (knee-ordered): paper triple + egress"))

    knee = recommendation.knee_point()
    frugal = recommendation.best_for("egress_gb")
    print()
    print(f"Knee point offloads        : {sorted(knee.plan.offloaded())}")
    print(
        f"Egress-optimal plan        : {sorted(frugal.plan.offloaded())} "
        f"({frugal.value('egress_gb'):.2f} GB cross-location)"
    )

    # A custom objective widens the same search to K=5 — no optimizer changes.
    recommendation5 = atlas.recommend(
        expected_scale=burst_scale,
        problem=problem.with_objectives(OffloadCountObjective()),
    )
    print()
    print(f"K=5 objectives: {recommendation5.problem.objective_names}")
    print(f"K=5 front size: {len(recommendation5.plans)}")
    best = recommendation5.best_for("offloaded")
    print(
        f"Fewest-moves plan offloads : {sorted(best.plan.offloaded())} "
        f"(cost ${best.value('qcost'):.2f}, egress {best.value('egress_gb'):.2f} GB)"
    )


if __name__ == "__main__":
    main()
