"""Worst-case certification of a recommended plan on a 3-site topology.

The advisor recommends a plan for on-prem + two cloud regions, then plays its own
adversary: a bounded search over workload knobs (rate bursts, payload growth) and
infrastructure faults (regional outages, link degradation, price shocks, capacity
cuts) looks for the scenario that maximizes the recommended plan's regret against
its fault-free baseline.  The search is seeded by the named stress families of
``ScenarioFactory`` — flash crowd, one outage per remote site, egress price shock,
payload inflation, API-mix inversion — so the certified worst case is never weaker
than any of them.

The printed ``RobustnessCertificate`` answers the question an owner asks before
executing a migration: *which bounded future hurts this plan the most, how much,
and does the plan stay feasible there?*

Run with ``python examples/stress_certificate.py``.
"""

from repro.analysis import build_testbed, format_table
from repro.quality import ScenarioFactory


def main() -> None:
    testbed = build_testbed(
        n_locations=3,
        duration_ms=90_000.0,
        base_rps=12.0,
        peak_rps=22.0,
        evaluation_budget=2_000,
        population_size=60,
        train_iterations=120,
        traces_per_api=10,
    )

    # Recommend and certify in one call: the adversary runs against the knee plan.
    recommendation = testbed.atlas.recommend(
        expected_scale=testbed.expected_scale,
        preferences=testbed.preferences,
        certify=32,
    )
    knee = recommendation.knee_point()
    certificate = recommendation.certificate

    print(f"Knee plan: {sorted(knee.plan.offloaded())}")
    print()
    rows = [
        {"stress family": name, "scalarized regret": round(regret, 4)}
        for name, regret in sorted(certificate.family_regrets.items())
    ]
    rows.append(
        {
            "stress family": f"{certificate.worst_spec.name} (certified worst case)",
            "scalarized regret": round(certificate.worst_regret, 4),
        }
    )
    print(format_table(rows, title="Stress families vs the certified worst case"))
    print()
    print(certificate.summary())

    # The factory's seasonal decomposition: forecast-weighted rate bands of the
    # observed workload, the natural input for WeightedMean / CVaR aggregation.
    factory = ScenarioFactory.from_evaluator(recommendation.evaluator)
    seasonal = factory.seasonal(bands=3)
    print()
    print(
        format_table(
            [
                {
                    "band": spec.name,
                    "rate_scale": round(spec.rate_scale, 3),
                    "occupancy": round(spec.weight, 3),
                }
                for spec in seasonal
            ],
            title="Seasonal decomposition of the observed rate series",
        )
    )


if __name__ == "__main__":
    main()
