"""Using Atlas's network footprints to detect a data breach (paper Section 6, Figure 22).

The learned per-API footprints predict how many bytes each component pair should move
for the API traffic actually served.  An attacker copying data out of the post store
shows up as traffic the footprints cannot justify.

Run with ``python examples/breach_detection.py``.
"""

from repro.analysis import build_testbed, figure22_breach_detection, format_table


def main() -> None:
    testbed = build_testbed(
        duration_ms=60_000.0,
        base_rps=12.0,
        peak_rps=20.0,
        evaluation_budget=400,
        population_size=20,
        train_iterations=20,
        traces_per_api=8,
    )
    result = figure22_breach_detection(testbed, days=3, breach_day=2)
    rows = [
        {
            "day": day,
            "expected_bytes": expected,
            "observed_bytes": observed,
            "flagged": day in result["flagged_days"],
        }
        for day, (expected, observed) in enumerate(
            zip(result["daily_expected_bytes"], result["daily_observed_bytes"])
        )
    ]
    print(format_table(rows, title="PostStorage traffic: expected vs observed per day"))
    print()
    print(f"Injected breach on day {result['breach_day']}; flagged days: {result['flagged_days']}")
    for anomaly in result["anomalies"][:5]:
        print(
            f"  window {anomaly.window}: {anomaly.source} -> {anomaly.destination} "
            f"observed {anomaly.observed_bytes:.0f}B vs expected {anomaly.expected_bytes:.0f}B"
        )


if __name__ == "__main__":
    main()
