"""Seasonal burst scenario: scenario-robust Atlas vs a busiest-first bursting policy.

This mirrors the paper's motivating example (Figure 2/3): a Thanksgiving-style burst
drives CPU demand past the on-prem capacity, and the owner has to offload a subset of
components.  The burst is expressed through the *scenario axis*: Atlas recommends one
plan that must stay feasible for both the observed workload **and** the 5x burst
scenario (worst-case aggregation), instead of optimizing for the burst alone.  The
recommendation reports each plan's per-scenario objectives and its regret against the
per-scenario optimum; the simulator then measures (as ground truth) how the chosen
subset behaves under the burst vs the classic "offload the busiest components" policy.

Run with ``python examples/seasonal_burst_advisor.py``.
"""

from repro.analysis import build_testbed, format_table, run_methods


def main() -> None:
    testbed = build_testbed(
        duration_ms=90_000.0,
        base_rps=12.0,
        peak_rps=22.0,
        evaluation_budget=2_000,
        population_size=60,
        train_iterations=120,
        traces_per_api=10,
    )
    app = testbed.application
    print(f"On-prem CPU limit during the burst: {testbed.onprem_cpu_limit:.0f} millicores")

    # The burst rides the scenario axis: recommend against the observed workload plus
    # a 5x burst scenario, worst-case aggregated (the default).
    scenario_set = testbed.scenario_set()
    recommendation = testbed.atlas.recommend(
        expected_scale=1.0,
        preferences=testbed.preferences,
        scenarios=scenario_set,
    )
    atlas_quality = recommendation.performance_optimized()
    atlas_plan = atlas_quality.plan

    print()
    print(
        format_table(
            recommendation.scenario_report(),
            title="Recommended plans: per-scenario objectives and regret",
        )
    )

    methods = run_methods(testbed, methods=("greedy-largest",), search_budget=2_000)
    greedy_plan = methods["greedy-largest"].plans[0].plan

    reference = testbed.no_stress_latencies()
    atlas_measured = testbed.measure_plan(atlas_plan).mean_latencies()
    greedy_measured = testbed.measure_plan(greedy_plan).mean_latencies()

    rows = []
    for api in sorted(reference):
        rows.append(
            {
                "api": api,
                "no_stress_ms": reference[api],
                "greedy_ms": greedy_measured.get(api, float("nan")),
                "atlas_ms": atlas_measured.get(api, float("nan")),
                "greedy_slowdown": greedy_measured.get(api, 0.0) / reference[api],
                "atlas_slowdown": atlas_measured.get(api, 0.0) / reference[api],
            }
        )
    print()
    print(format_table(rows, title="Measured API latency under the 5x burst"))
    print()
    print(f"Atlas offloads      : {sorted(atlas_plan.offloaded())}")
    print(f"Greedy-busiest picks: {sorted(greedy_plan.offloaded())}")
    burst_name = scenario_set.names[-1]
    regret = recommendation.scenario_regret(atlas_quality)[burst_name]
    print(
        f"Burst-scenario regret of the robust pick (perf/avail/cost): "
        f"{regret[0]:.3f} / {regret[1]:.3f} / {regret[2]:.2f}"
    )


if __name__ == "__main__":
    main()
