"""Seasonal burst scenario: compare Atlas against a busiest-first cloud-bursting policy.

This mirrors the paper's motivating example (Figure 2/3): a Thanksgiving-style burst
drives CPU demand past the on-prem capacity, and the owner has to offload a subset of
components.  We measure (on the simulator) how the application behaves when the subset
is chosen by Atlas vs by the classic "offload the busiest components" policy.

Run with ``python examples/seasonal_burst_advisor.py``.
"""

from repro.analysis import build_testbed, format_table, run_methods


def main() -> None:
    testbed = build_testbed(
        duration_ms=90_000.0,
        base_rps=12.0,
        peak_rps=22.0,
        evaluation_budget=2_000,
        population_size=60,
        train_iterations=120,
        traces_per_api=10,
    )
    app = testbed.application
    print(f"On-prem CPU limit during the burst: {testbed.onprem_cpu_limit:.0f} millicores")

    methods = run_methods(testbed, methods=("atlas", "greedy-largest"), search_budget=2_000)
    atlas_plan = methods["atlas"].performance_optimized().plan
    greedy_plan = methods["greedy-largest"].plans[0].plan

    reference = testbed.no_stress_latencies()
    atlas_measured = testbed.measure_plan(atlas_plan).mean_latencies()
    greedy_measured = testbed.measure_plan(greedy_plan).mean_latencies()

    rows = []
    for api in sorted(reference):
        rows.append(
            {
                "api": api,
                "no_stress_ms": reference[api],
                "greedy_ms": greedy_measured.get(api, float("nan")),
                "atlas_ms": atlas_measured.get(api, float("nan")),
                "greedy_slowdown": greedy_measured.get(api, 0.0) / reference[api],
                "atlas_slowdown": atlas_measured.get(api, 0.0) / reference[api],
            }
        )
    print()
    print(format_table(rows, title="Measured API latency under the 5x burst"))
    print()
    print(f"Atlas offloads      : {sorted(atlas_plan.offloaded())}")
    print(f"Greedy-busiest picks: {sorted(greedy_plan.offloaded())}")


if __name__ == "__main__":
    main()
