"""Hotel reservation system: explore cost/performance trade-offs and critical APIs.

Demonstrates Atlas on the second evaluation application (Figure 10): it prints the
Pareto front of recommended plans and then shows how marking ``/reservation`` as a
business-critical API changes the performance-optimized recommendation.

Run with ``python examples/hotel_tradeoffs.py``.
"""

from repro.analysis import build_testbed, format_table


def main() -> None:
    testbed = build_testbed(
        application="hotel-reservation",
        duration_ms=90_000.0,
        base_rps=12.0,
        peak_rps=22.0,
        evaluation_budget=1_500,
        population_size=40,
        train_iterations=80,
        traces_per_api=10,
    )
    atlas = testbed.atlas

    recommendation = atlas.recommend(expected_scale=testbed.expected_scale)
    rows = [
        {
            "plan": i,
            "perf_impact": q.perf,
            "disrupted_apis": q.avail,
            "cost_usd": q.cost,
            "offloaded": len(q.plan.offloaded()),
        }
        for i, q in enumerate(recommendation.plans)
    ]
    print(format_table(rows, title="Hotel reservation: recommended plans (Pareto front)"))
    print()
    print(recommendation.hierarchy().to_text())

    # Mark /reservation as critical and compare the preview of the performance plan.
    critical = atlas.preferences.with_critical_apis(["/reservation"])
    personalized = atlas.recommend(expected_scale=testbed.expected_scale, preferences=critical)
    default_preview = recommendation.latency_preview(
        recommendation.performance_optimized().plan
    )
    critical_preview = personalized.latency_preview(
        personalized.performance_optimized().plan
    )
    rows = [
        {
            "api": api,
            "default_ms": default_preview[api].estimated_mean_ms,
            "reservation_critical_ms": critical_preview[api].estimated_mean_ms,
        }
        for api in sorted(default_preview)
    ]
    print()
    print(
        format_table(
            rows,
            title="Latency preview: default vs '/reservation is critical' recommendation",
        )
    )


if __name__ == "__main__":
    main()
