"""Quickstart: learn the social network from telemetry and ask Atlas for migration plans.

Run with ``python examples/quickstart.py``.  The script

1. builds the DeathStarBench-style social network and a compressed one-day workload,
2. simulates it on the on-prem cluster to collect telemetry (traces, metrics, mesh),
3. lets Atlas learn API profiles, network footprints and a resource model,
4. asks for migration plans for a 5x traffic burst, and
5. prints the recommended Pareto-optimal plans, the dendrogram view and the latency
   preview of the performance-optimized plan.
"""

from repro import Atlas, MigrationPreferences
from repro.apps import build_social_network
from repro.analysis import format_table
from repro.optimizer import GAConfig
from repro.recommend import AtlasConfig
from repro.simulator import simulate_workload
from repro.workload import WorkloadGenerator, default_scenario


def main() -> None:
    app = build_social_network()
    print(f"Application: {app.summary()}")

    # 1-2. Generate one compressed day of traffic and collect telemetry on-prem.
    scenario = default_scenario(app, base_rps=12, peak_rps=22, duration_ms=90_000)
    requests = WorkloadGenerator(app, scenario, seed=7).generate(scenario.profile.duration_ms)
    learning = simulate_workload(app, requests, seed=7)
    print(f"Collected telemetry: {learning.telemetry.summary()}")

    # 3. Application learning.
    atlas = Atlas(
        app,
        config=AtlasConfig(
            traces_per_api=10,
            ga=GAConfig(
                population_size=60,
                offspring_per_generation=30,
                evaluation_budget=2_000,
                train_iterations=120,
                train_batch_size=2,
                seed=1,
            ),
        ),
    )
    atlas.learn(learning.telemetry)

    # The owner pins the user-data stores on-prem and caps the on-prem CPU that the
    # application may keep using during the burst.
    burst_scale = 5.0
    peak_cpu = atlas.knowledge.estimator.predict_scaled(burst_scale).peak(
        "cpu_millicores", app.component_names
    )
    atlas.preferences = MigrationPreferences.pin_on_prem(
        ["UserMongoDB", "PostStorageMongoDB", "MediaMongoDB"],
        onprem_limits={"cpu_millicores": 0.8 * peak_cpu},
    )

    # 4. Recommendation for the burst period.
    recommendation = atlas.recommend(expected_scale=burst_scale)
    rows = [
        {
            "plan": i,
            "perf_impact": q.perf,
            "disrupted_apis": q.avail,
            "cost_usd": q.cost,
            "offloaded": len(q.plan.offloaded()),
        }
        for i, q in enumerate(recommendation.plans)
    ]
    print()
    print(format_table(rows, title="Recommended Pareto-optimal migration plans"))

    print()
    print("Plan hierarchy (Figure 8 style):")
    print(recommendation.hierarchy().to_text())

    # 5. Latency preview of the performance-optimized plan.
    best = recommendation.performance_optimized()
    preview = recommendation.latency_preview(best.plan)
    print()
    print(
        format_table(
            [
                {
                    "api": api,
                    "before_ms": est.baseline_mean_ms,
                    "after_ms (preview)": est.estimated_mean_ms,
                    "impact": est.impact_factor,
                }
                for api, est in sorted(preview.items())
            ],
            title="Latency preview of the performance-optimized plan",
        )
    )
    print()
    print(f"Components to offload: {sorted(best.plan.offloaded())}")


if __name__ == "__main__":
    main()
