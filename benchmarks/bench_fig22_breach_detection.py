"""Figure 22 — using network footprints to detect a data breach."""

from _shared import run_once, social_testbed

from repro.analysis import figure22_breach_detection, format_series


def test_fig22_breach_detection(benchmark):
    testbed = social_testbed()
    result = run_once(benchmark, lambda: figure22_breach_detection(testbed))
    print()
    print(
        format_series(
            {
                "expected_bytes_per_day": result["daily_expected_bytes"],
                "observed_bytes_per_day": result["daily_observed_bytes"],
            },
            title="Figure 22: expected vs observed PostStorage traffic per day",
        )
    )
    print(f"breach day: {result['breach_day']}, flagged days: {result['flagged_days']}")
    assert result["anomalies"], "the exfiltration must be flagged"
    assert result["breach_day"] in result["flagged_days"]
    # Days without the breach should not be flagged.
    assert all(day == result["breach_day"] for day in result["flagged_days"])
