"""Adversarial worst-case certification — smoke + regression bars.

Certifies one concrete migration plan of the social-network testbed with the
:class:`~repro.quality.adversary.ScenarioAdversary` and checks the properties CI
cares about:

* **budget discipline** — the adversary spends at most its declared evaluation
  budget (the stress-family seeds are always scored, so the floor is the family
  count);
* **family dominance** — the certified worst case's scalarized regret is at least
  that of every named stress family (the families seed the search, so the
  certificate can never be weaker than the enumerated portfolio);
* **fault-free identity** — compiling and scoring dozens of faulted scenarios
  leaves fault-free evaluation byte-identical (sha256 over objectives /
  feasibility / violations, computed before and after certification on the same
  evaluator).

Run metrics (wall-clock, budget spent, worst regret, per-family regrets) are
appended to ``BENCH_scenario_stress.json`` with the git SHA, so certification
cost/strength regressions are diffable across commits.
"""

import hashlib
import json
import time

from _shared import persist_run_metrics, run_once, social_testbed

from repro.analysis import format_table
from repro.cluster import MigrationPlan
from repro.quality import ScenarioAdversary, ScenarioSet, ScenarioSpec

#: Scenario-evaluation budget of the certification smoke (small but enough for the
#: family seeds plus a couple of descent passes).
BUDGET = 24

#: Fault-free control set fingerprinted before and after certification.
CONTROL = ScenarioSet(
    (
        ScenarioSpec(name="observed"),
        ScenarioSpec(name="burst-x4", rate_scale=4.0),
        ScenarioSpec(name="chatty", payload_factors={"/composePost": 2.0}),
    )
)


def _fingerprint(qualities) -> str:
    payload = [
        (tuple(q.plan.to_vector()), repr(q.objectives()), q.feasible, q.violations)
        for q in qualities
    ]
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


def _certified_plan(testbed) -> MigrationPlan:
    """A deterministic mixed plan (respecting the pins) to certify."""
    components = testbed.application.component_names
    pins = testbed.preferences.pinned_placement
    vector = [index % 2 for index in range(len(components))]
    for component, location in pins.items():
        vector[components.index(component)] = location
    return MigrationPlan.from_vector(components, vector)


def test_adversarial_certificate(benchmark):
    testbed = social_testbed()
    evaluator = testbed.atlas.build_evaluator(
        expected_scale=1.0, preferences=testbed.preferences
    )
    plan = _certified_plan(testbed)
    control_vectors = [[0] * len(testbed.application.component_names), plan.to_vector()]

    def measure():
        before = _fingerprint(
            evaluator.evaluate_vectors(control_vectors, scenarios=CONTROL)
        )
        start = time.perf_counter()
        adversary = ScenarioAdversary(evaluator, budget=BUDGET, seed=11)
        certificate = adversary.certify(plan)
        elapsed = time.perf_counter() - start
        after = _fingerprint(
            evaluator.evaluate_vectors(control_vectors, scenarios=CONTROL)
        )
        return {
            "certificate": certificate,
            "seconds": elapsed,
            "fingerprint_before": before,
            "fingerprint_after": after,
        }

    result = run_once(benchmark, measure)
    certificate = result["certificate"]

    rows = [
        {"scenario": name, "scalarized_regret": round(regret, 4)}
        for name, regret in sorted(certificate.family_regrets.items())
    ]
    rows.append(
        {
            "scenario": f"{certificate.worst_spec.name} (worst case)",
            "scalarized_regret": round(certificate.worst_regret, 4),
        }
    )
    print()
    print(format_table(rows, title="Adversarial certification (social network)"))
    print(certificate.summary())
    print(f"certification wall-clock: {result['seconds']:.2f}s")

    persist_run_metrics(
        "adversarial_certificate",
        {
            "seconds": round(result["seconds"], 3),
            "budget": BUDGET,
            "budget_spent": certificate.budget_spent,
            "worst_scenario": certificate.worst_spec.name,
            "worst_regret": round(certificate.worst_regret, 6),
            "feasible_under_fault": certificate.feasible_under_fault,
            "family_regrets": {
                name: round(regret, 6)
                for name, regret in certificate.family_regrets.items()
            },
        },
    )

    # Budget discipline: never beyond the declared budget (family seeds floor it).
    assert certificate.budget_spent <= max(BUDGET, len(certificate.family_regrets))
    # Family dominance: the certificate is at least as strong as every family.
    assert certificate.family_regrets
    assert all(
        certificate.worst_regret >= regret
        for regret in certificate.family_regrets.values()
    )
    # Fault-free identity: certification must not perturb fault-free evaluation.
    assert result["fingerprint_before"] == result["fingerprint_after"]
