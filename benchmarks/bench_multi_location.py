"""Multi-location placement search — the built-in 3-datacenter testbed.

The paper's evaluation fixes a two-datacenter hybrid cloud; this benchmark runs the
same recommendation pipeline on the built-in three-location topology (on-prem +
cloud-east + a cheaper-but-farther cloud-west) for both applications.  It reports the
Pareto fronts with their per-site placement splits and asserts the N-location
acceptance bar: the GA and the baselines search all three sites, and the compiled
replay engine stays bitwise-identical to the recursive oracle on 3-location plans.
"""

import numpy as np

from _shared import run_once

from repro.analysis import format_table, get_testbed, run_methods
from repro.cluster import MigrationPlan

#: Search budget for the 3-location runs (the space is 3^n instead of 2^n, but the
#: benchmark bar is exploration + correctness, not exhaustiveness).
SEARCH_BUDGET = 1_200

_TESTBED_KWARGS = dict(
    duration_ms=60_000.0,
    base_rps=10.0,
    peak_rps=18.0,
    evaluation_budget=SEARCH_BUDGET,
    population_size=40,
    train_iterations=60,
    traces_per_api=10,
    n_locations=3,
)


def _three_dc_testbed(application: str):
    return get_testbed(application=application, **_TESTBED_KWARGS)


def _placement_split(plan: MigrationPlan, locations):
    return "/".join(str(len(plan.components_at(loc))) for loc in locations)


def _random_three_location_plans(testbed, count: int, seed: int = 321):
    rng = np.random.default_rng(seed)
    components = testbed.application.component_names
    pins = testbed.preferences.pinned_placement
    plans = []
    for _ in range(count):
        vector = rng.integers(0, len(testbed.locations), size=len(components))
        plan = MigrationPlan.from_vector(components, [int(v) for v in vector])
        plans.append(plan.with_pinned(pins) if pins else plan)
    return plans


def _run_application(application: str):
    testbed = _three_dc_testbed(application)
    methods = run_methods(
        testbed,
        methods=("atlas", "affinity-ga", "random-search"),
        search_budget=SEARCH_BUDGET,
    )
    # Engine equivalence on this topology: batched compiled replay vs recursive oracle.
    plans = _random_three_location_plans(testbed, 120)
    compiled = testbed.atlas.build_evaluator(
        expected_scale=testbed.expected_scale,
        preferences=testbed.preferences,
        performance_engine="compiled",
    )
    reference = testbed.atlas.build_evaluator(
        expected_scale=testbed.expected_scale,
        preferences=testbed.preferences,
        performance_engine="reference",
    )
    compiled_q = compiled.evaluate_batch(plans)
    reference_q = [reference.evaluate(plan) for plan in plans]
    mismatches = sum(
        1 for a, b in zip(compiled_q, reference_q) if a.objectives() != b.objectives()
    )
    return testbed, methods, mismatches


def _report(testbed, methods):
    rows = []
    for name, result in methods.items():
        for quality in result.plans:
            rows.append(
                {
                    "method": name,
                    "qperf": round(quality.perf, 3),
                    "qavai": round(quality.avail, 2),
                    "qcost": round(quality.cost, 4),
                    "onprem/east/west": _placement_split(
                        quality.plan, testbed.locations
                    ),
                }
            )
    return rows


def _assert_bar(testbed, methods, mismatches):
    assert mismatches == 0, "compiled engine must match the oracle on 3-location plans"
    atlas = methods["atlas"]
    assert atlas.plans, "Atlas must find feasible plans on the 3-location testbed"
    # The search must actually explore every site, not silently collapse to two.
    visited = set()
    for quality in atlas.recommendation.result.all_evaluated:
        visited.update(quality.plan.locations_used())
    assert visited == set(testbed.locations), f"search only visited {sorted(visited)}"


def test_multi_location_social(benchmark):
    testbed, methods, mismatches = run_once(
        benchmark, lambda: _run_application("social-network")
    )
    print()
    print(
        format_table(
            _report(testbed, methods),
            title="3-location placement search — social network "
            "(components on-prem/east/west per plan)",
        )
    )
    _assert_bar(testbed, methods, mismatches)


def test_multi_location_hotel(benchmark):
    testbed, methods, mismatches = run_once(
        benchmark, lambda: _run_application("hotel-reservation")
    )
    print()
    print(
        format_table(
            _report(testbed, methods),
            title="3-location placement search — hotel reservation "
            "(components on-prem/east/west per plan)",
        )
    )
    _assert_bar(testbed, methods, mismatches)
