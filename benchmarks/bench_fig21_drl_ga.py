"""Figure 21 — effectiveness of the DRL-based GA vs plain NSGA-II, and the reward curve."""

from _shared import SEARCH_BUDGET, run_once, social_testbed

from repro.analysis import figure21_drl_vs_nsga2, format_series
from repro.optimizer import hypervolume_2d


def test_fig21_drl_vs_nsga2(benchmark):
    testbed = social_testbed()
    result = run_once(
        benchmark, lambda: figure21_drl_vs_nsga2(testbed, evaluation_budget=SEARCH_BUDGET)
    )
    print()
    print(
        format_series(
            {
                "drl_front_perf": [p for p, _c in result["drl_front"]],
                "drl_front_cost": [c for _p, c in result["drl_front"]],
                "nsga2_front_perf": [p for p, _c in result["nsga2_front"]],
                "nsga2_front_cost": [c for _p, c in result["nsga2_front"]],
                "reward_curve": result["reward_curve"],
            },
            title="Figure 21: DRL-GA vs NSGA-II fronts and reward progression",
        )
    )
    assert result["drl_front"], "the DRL-based GA must produce a feasible front"

    # (a) Front quality: compare dominated hypervolume against a common reference point.
    reference = (
        1.05 * max(p for p, _c in result["drl_front"] + result["nsga2_front"]),
        1.05 * max(c for _p, c in result["drl_front"] + result["nsga2_front"]),
    )
    drl_hv = hypervolume_2d(result["drl_front"], reference)
    nsga_hv = hypervolume_2d(result["nsga2_front"], reference)
    print(f"hypervolume: drl={drl_hv:.4f} nsga2={nsga_hv:.4f}")
    # Front-quality note: the paper reports the DRL front dominating the NSGA-II front.
    # With the shared memetic refinements and the much smaller training/search budget
    # used here, the two variants trade places between runs, so the hypervolume is
    # reported (and recorded in EXPERIMENTS.md) rather than asserted.  What must hold is
    # that the DRL variant produces a usable front at all.
    assert drl_hv > 0.0

    # (b) Reward progression: the late-training reward exceeds the early one and the
    # agent ends up producing mostly feasible (positive-reward) children.
    curve = result["reward_curve"]
    assert len(curve) > 20
    early = sum(curve[:10]) / 10
    late = sum(curve[-10:]) / 10
    assert late > early
    assert late > 0
