"""Scenario-axis throughput — S×P robust evaluation vs S independent evaluators.

Robust recommendation scores every plan over S workload scenarios.  The naive way is
S independent single-scenario evaluators — each recompiling its own trace sets,
replaying every delay signature from scratch and re-deriving every constraint mask.
The scenario axis amortizes all of that: one evaluator compiles the traces once,
scenarios that do not scale payloads share the per-API Δ tables and replay caches
outright, payload-scaled scenarios share the compiled trace sets and the raw-Δ-row
replay memo, and the plan-level dedup runs once for the whole tensor.

This benchmark scores the same random plan sample on the social-network testbed both
ways at S=4 (observed, 5x burst, mix shift, payload growth) and checks:

* every per-scenario objective matches the corresponding independent evaluator
  bitwise (the robust tensor is the S independent evaluations, just cheaper), and
* the S×P path is at least 2x faster than the S independent evaluators
  (CI regression bar).
"""

import gc
import time

import numpy as np

from _shared import (
    BENCH_EVAL_THROUGHPUT_PATH,
    persist_run_metrics,
    run_once,
    social_testbed,
)

from repro.analysis import format_table
from repro.quality import ScenarioSet, ScenarioSpec

#: Random candidate plans scored by both paths (distinct plans, like a GA sample).
N_PLANS = 1_200
#: The S=4 scenario axis: the paper's burst plus the two drift families.
SCENARIOS = ScenarioSet(
    (
        ScenarioSpec(name="observed"),
        ScenarioSpec(name="burst-x5", rate_scale=5.0),
        ScenarioSpec(
            name="mix-shift",
            api_rate_factors={"/composePost": 2.0, "/homeTimeline": 0.75},
        ),
        ScenarioSpec(name="chatty-posts", payload_factors={"/composePost": 2.5}),
    )
)


def _random_vectors(testbed, count: int, seed: int = 321):
    rng = np.random.default_rng(seed)
    components = testbed.application.component_names
    pins = testbed.preferences.pinned_placement
    pinned_columns = {components.index(c): loc for c, loc in pins.items()}
    vectors = []
    for _ in range(count):
        offload_prob = rng.uniform(0.1, 0.9)
        vector = (rng.random(len(components)) < offload_prob).astype(int).tolist()
        for column, location in pinned_columns.items():
            vector[column] = location
        vectors.append(vector)
    return vectors


def test_scenario_throughput(benchmark):
    testbed = social_testbed()
    vectors = _random_vectors(testbed, N_PLANS)

    def build():
        return testbed.atlas.build_evaluator(
            expected_scale=1.0, preferences=testbed.preferences
        )

    def run_independent():
        qualities = {}
        start = time.perf_counter()
        for spec in SCENARIOS:
            evaluator = build()
            qualities[spec.name] = evaluator.evaluate_vectors(
                vectors, scenarios=ScenarioSet((spec,))
            )
        return time.perf_counter() - start, qualities

    def run_robust():
        start = time.perf_counter()
        evaluator = build()
        qualities = evaluator.evaluate_vectors(vectors, scenarios=SCENARIOS)
        return time.perf_counter() - start, qualities

    def measure():
        # Cyclic-GC pauses would land arbitrarily in either timed section (both
        # paths allocate plan/quality objects in bursts); park the collector so the
        # comparison measures the evaluation pipelines, not the collector.  The two
        # paths run from scratch in three *interleaved* trials each — frequency
        # scaling or a noisy neighbour hits both paths alike instead of whichever
        # happens to run later — and each is scored by its best time.
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            independent_trials = []
            robust_trials = []
            for _ in range(3):
                # S independent single-scenario evaluators: each pays its own model
                # construction, trace compilation and full replay/cost passes.
                independent_trials.append(run_independent())
                # One S×P robust evaluation: shared dedup + per-scenario compile
                # amortization.
                robust_trials.append(run_robust())
            independent_s, independent_qualities = min(
                independent_trials, key=lambda pair: pair[0]
            )
            robust_s, robust = min(robust_trials, key=lambda pair: pair[0])
        finally:
            if gc_was_enabled:
                gc.enable()
        return {
            "independent_s": independent_s,
            "robust_s": robust_s,
            "robust": robust,
            "independent": independent_qualities,
        }

    result = run_once(benchmark, measure)
    independent_rate = N_PLANS * len(SCENARIOS) / result["independent_s"]
    robust_rate = N_PLANS * len(SCENARIOS) / result["robust_s"]
    speedup = robust_rate / independent_rate
    rows = [
        {
            "path": f"{len(SCENARIOS)} independent single-scenario evaluators",
            "plan_scenarios": N_PLANS * len(SCENARIOS),
            "seconds": round(result["independent_s"], 3),
            "per_s": round(independent_rate, 1),
        },
        {
            "path": "S x P robust evaluate_vectors (scenario axis)",
            "plan_scenarios": N_PLANS * len(SCENARIOS),
            "seconds": round(result["robust_s"], 3),
            "per_s": round(robust_rate, 1),
        },
    ]
    print()
    print(
        format_table(
            rows, title=f"Scenario-axis throughput at S={len(SCENARIOS)} (social network)"
        )
    )
    print(f"speedup vs independent evaluators: {speedup:.1f}x")
    persist_run_metrics(
        "scenario_throughput",
        {
            "engine": "compiled",
            "workers": 1,
            "scenarios": len(SCENARIOS),
            "plans": N_PLANS,
            "independent_s": round(result["independent_s"], 4),
            "robust_s": round(result["robust_s"], 4),
            "robust_plan_scenarios_per_s": round(robust_rate, 1),
            "speedup": round(speedup, 3),
        },
        path=BENCH_EVAL_THROUGHPUT_PATH,
    )
    # The robust tensor must equal the independent evaluations bitwise, scenario by
    # scenario — objectives, feasibility and violation strings.
    for spec in SCENARIOS:
        independent = result["independent"][spec.name]
        for robust_quality, single in zip(result["robust"], independent):
            entry = next(
                s for s in robust_quality.scenarios if s.scenario == spec.name
            )
            single_entry = single.scenarios[0]
            assert repr(entry.objectives()) == repr(single_entry.objectives())
            assert entry.feasible == single_entry.feasible
            assert entry.violations == single_entry.violations
    assert speedup >= 2.0
