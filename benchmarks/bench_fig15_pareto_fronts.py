"""Figure 15 — cost-vs-performance Pareto fronts on both applications."""

from _shared import (
    hotel_methods,
    hotel_testbed,
    run_once,
    social_methods,
    social_testbed,
)

from repro.analysis import figure15_pareto_front, format_series
from repro.optimizer import dominates


def _atlas_covers(fronts):
    """Every competitor point is dominated by or matched by some Atlas point."""
    atlas = fronts.get("atlas", [])
    for name, points in fronts.items():
        if name == "atlas":
            continue
        for point in points:
            if not any(dominates(a, point) or tuple(a) == tuple(point) for a in atlas):
                return False
    return True


def test_fig15a_social_network(benchmark):
    testbed = social_testbed()
    methods = social_methods()
    fronts = run_once(benchmark, lambda: figure15_pareto_front(testbed, methods))
    print()
    print(
        format_series(
            {f"{name} (perf)": [p for p, _c in pts] for name, pts in fronts.items()},
            title="Figure 15a: social network Pareto fronts (performance axis)",
        )
    )
    print(
        format_series(
            {f"{name} (cost)": [c for _p, c in pts] for name, pts in fronts.items()}
        )
    )
    assert fronts["atlas"], "Atlas must recommend at least one feasible plan"
    # Atlas offers the widest selection of trade-offs.
    assert len(fronts["atlas"]) >= max(len(pts) for name, pts in fronts.items() if name != "atlas")


def test_fig15b_hotel_reservation(benchmark):
    testbed = hotel_testbed()
    methods = hotel_methods()
    fronts = run_once(benchmark, lambda: figure15_pareto_front(testbed, methods))
    print()
    print(
        format_series(
            {f"{name} (perf)": [p for p, _c in pts] for name, pts in fronts.items()},
            title="Figure 15b: hotel reservation Pareto fronts (performance axis)",
        )
    )
    assert fronts["atlas"]
    best_atlas_perf = min(p for p, _c in fronts["atlas"])
    for name, points in fronts.items():
        if name == "atlas" or not points:
            continue
        assert best_atlas_perf <= min(p for p, _c in points) + 0.25
