"""Figure 19 — the learned network footprint of /register vs real payload sizes."""

from _shared import run_once, social_testbed

from repro.analysis import figure19_footprint_register, format_table


def test_fig19_footprint_register(benchmark):
    testbed = social_testbed()
    rows = run_once(benchmark, lambda: figure19_footprint_register(testbed))
    print()
    print(format_table(rows, title="Figure 19: /register learned vs real footprint (bytes)"))
    assert rows
    # The UserService -> UserMongoDB edge (the one highlighted in the paper) must be
    # recovered within ~20% of its real request size.
    edge = next(row for row in rows if row["edge"] == "UserService->UserMongoDB")
    assert abs(edge["estimated_request_bytes"] - edge["real_request_bytes"]) < 0.2 * edge[
        "real_request_bytes"
    ]
