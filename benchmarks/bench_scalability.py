"""Section 5.6 / 6 — scalability figures: training, crossover inference, recommendation time."""

from _shared import run_once, social_testbed

from repro.analysis import format_mapping, scalability_report


def test_scalability_report(benchmark):
    testbed = social_testbed()
    report = run_once(benchmark, lambda: scalability_report(testbed, crossover_samples=100))
    print()
    print(format_mapping(report, title="Scalability (Section 5.6): timing summary"))
    # Crossover inference must stay in the millisecond range (paper: 0.459 ms) and the
    # end-to-end recommendation should complete within minutes on a laptop-class machine.
    assert report["crossover_inference_ms"] < 50.0
    assert report["recommendation_s"] < 300.0
    assert report["pareto_plans"] >= 1
