"""Figure 2 — motivation: the 5x burst overloads the all-on-prem deployment.

Regenerates the latency spikes / failure behaviour of Figure 2: per-API latency at the
normal load vs. under the burst with every component on-prem.
"""

from _shared import run_once, social_testbed

from repro.analysis import figure2_burst_motivation, format_table


def test_fig02_burst_motivation(benchmark):
    testbed = social_testbed()
    rows = run_once(benchmark, lambda: figure2_burst_motivation(testbed))
    print()
    print(format_table(rows, title="Figure 2: all-on-prem under the 5x burst"))
    # The burst must visibly degrade at least some APIs (the motivation for migrating).
    assert max(row["slowdown"] for row in rows) > 1.5
    assert all(row["latency_1x_ms"] > 0 for row in rows)
