"""Figure 2 — motivation: the 5x burst overloads the all-on-prem deployment.

Regenerates the latency spikes / failure behaviour of Figure 2, now through the
scenario axis: the burst is a second :class:`~repro.quality.ScenarioSpec` next to the
observed workload, and one robust ``evaluate_vectors`` call scores the all-on-prem
placement over both — the burst scenario's violated on-prem capacity constraint is the
formal "why migrate" statement, while the simulator rows remain the measured ground
truth.
"""

from _shared import run_once, social_testbed

from repro.analysis import figure2_burst_motivation, format_table


def test_fig02_burst_motivation(benchmark):
    testbed = social_testbed()
    result = run_once(benchmark, lambda: figure2_burst_motivation(testbed))
    rows = result["rows"]
    scenario_rows = result["scenario_rows"]
    print()
    print(format_table(rows, title="Figure 2: all-on-prem under the 5x burst"))
    print()
    print(
        format_table(
            scenario_rows,
            title="All-on-prem plan scored over the (observed, burst) scenario axis",
        )
    )
    # The burst must visibly degrade at least some APIs (the motivation for migrating).
    assert max(row["slowdown"] for row in rows) > 1.5
    assert all(row["latency_1x_ms"] > 0 for row in rows)
    # Scenario axis: staying on-prem is fine for the observed workload but violates
    # the capacity constraint under the burst scenario — the advisor sees the burst
    # regret without a hand-rolled second evaluation pass.
    by_name = {row["scenario"]: row for row in scenario_rows}
    assert by_name["observed"]["feasible"]
    assert not by_name[f"burst-x{testbed.expected_scale:g}"]["feasible"]
    assert not result["onprem_feasible_under_burst"]
