"""Durable fleet serving: warm process restarts over the on-disk artifact store.

The warm-path benchmark showed a memo hit beats a cold compile + search by
orders of magnitude — but the memo died with the process.  This benchmark
measures the durable tier on the 3-site social-network testbed:

* **cold recommend** — a store-backed :class:`~repro.recommend.advisor.AdvisorService`
  compiles, searches, and journals the result + every compiled artifact to disk.
* **warm restart** — a *simulated fresh process*: a new service, a new
  :class:`~repro.quality.artifacts.ArtifactCache`, and a freshly learned Atlas
  (same telemetry, different objects) over the same store directory.  The
  recommend must revive from the durable journal without searching.
  Bar: at least ``WARM_RESTART_SPEEDUP_BAR``x faster than cold, fronts identical.
* **first preview after restart** — forcing the revived evaluator's first
  latency preview streams the compiled trace sets from the store instead of
  recompiling them (``store_hits > 0``).

Appends to the ``BENCH_serving.json`` ledger (headline:
``warm_restart_speedup``) rendered and gated by ``benchmarks/report.py``.
The companion ``serving_daemon_smoke.py`` certifies the daemon's
kill-and-restart contract with real processes.
"""

import shutil
import tempfile
import time

from _shared import (
    BENCH_SERVING_PATH,
    fused_testbed,
    persist_run_metrics,
    run_once,
)
from bench_warm_path import _front_payload

from repro.analysis import format_table
from repro.recommend import AdvisorService, Atlas
from repro.serving import ArtifactStore

#: Required speedup of a journal-revived recommend in a fresh process over the
#: cold compile + search that populated the store.
WARM_RESTART_SPEEDUP_BAR = 5.0


def test_durable_serving(benchmark):
    testbed = fused_testbed()
    atlas = testbed.atlas
    kwargs = dict(expected_scale=testbed.expected_scale)

    def measure():
        root = tempfile.mkdtemp(prefix="atlas-store-bench-")
        try:
            cold_service = AdvisorService(store=ArtifactStore(root))
            start = time.perf_counter()
            cold = cold_service.recommend(atlas, **kwargs)
            cold_s = time.perf_counter() - start

            # A simulated process restart: nothing in memory survives — a fresh
            # service, fresh artifact cache, and a fresh Atlas learned from the
            # same telemetry.  Only the store directory is shared.
            restarted = Atlas(
                atlas.application,
                atlas.preferences,
                network=atlas.network,
                config=atlas.config,
                current_plan=atlas.current_plan,
                cluster=atlas.cluster,
            )
            restarted.learn(testbed.telemetry)
            warm_service = AdvisorService(store=ArtifactStore(root))
            start = time.perf_counter()
            warm = warm_service.recommend(restarted, **kwargs)
            warm_s = time.perf_counter() - start

            # The revived recommendation is live: its first preview must stream
            # the compiled trace sets from the store, not recompile them.
            knee = warm.knee_point().plan
            start = time.perf_counter()
            warm.latency_preview(knee)
            preview_s = time.perf_counter() - start

            return {
                "cold_s": cold_s,
                "warm_s": warm_s,
                "preview_s": preview_s,
                "cold_front": _front_payload(cold),
                "warm_front": _front_payload(warm),
                "journal": warm_service.stats()["journal"],
                "store_hits": warm_service.cache.stats()["store_hits"],
                "objects": len(ArtifactStore(root)),
            }
        finally:
            shutil.rmtree(root, ignore_errors=True)

    result = run_once(benchmark, measure)
    restart_speedup = result["cold_s"] / result["warm_s"]
    rows = [
        {
            "path": "cold recommend (compile + search + journal)",
            "seconds": round(result["cold_s"], 4),
            "speedup": "1.00x",
        },
        {
            "path": "warm restart recommend (journal revive)",
            "seconds": round(result["warm_s"], 4),
            "speedup": f"{restart_speedup:.0f}x",
        },
        {
            "path": "first preview after restart (store-fed compile)",
            "seconds": round(result["preview_s"], 4),
            "speedup": "-",
        },
    ]
    print()
    print(format_table(rows, title="Durable serving (3-site social network, on-disk store)"))
    print(
        f"store objects: {result['objects']}, journal: {result['journal']}, "
        f"store hits after preview: {result['store_hits']}"
    )
    persist_run_metrics(
        "serving",
        {
            "engine": "fused",
            "store_objects": result["objects"],
            "cold_recommend_s": round(result["cold_s"], 4),
            "warm_restart_recommend_s": round(result["warm_s"], 6),
            "restart_first_preview_s": round(result["preview_s"], 6),
            "warm_restart_speedup": round(restart_speedup, 1),
            "restart_store_hits": result["store_hits"],
        },
        path=BENCH_SERVING_PATH,
    )
    # The revived answer is the cold answer — served without a search.
    assert result["warm_front"] == result["cold_front"]
    assert result["journal"] == {"hits": 1, "misses": 0}
    assert result["store_hits"] > 0, "restart preview recompiled instead of loading"
    assert restart_speedup >= WARM_RESTART_SPEEDUP_BAR, (
        f"warm restart speedup {restart_speedup:.1f}x is below the "
        f"{WARM_RESTART_SPEEDUP_BAR}x bar"
    )
