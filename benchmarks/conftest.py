"""Make the shared benchmark helpers importable when pytest runs from the repo root."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        type=int,
        default=0,
        help="Island count for the parallel-search benchmark (0 = skip it).",
    )


@pytest.fixture
def workers(request):
    return int(request.config.getoption("--workers"))
