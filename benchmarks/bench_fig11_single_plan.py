"""Figure 11 — Atlas vs the single-plan approaches (per-API latency and daily cost)."""

import math

from _shared import run_once, social_methods, social_testbed

from repro.analysis import figure11_single_plan, format_table


def test_fig11_single_plan(benchmark):
    testbed = social_testbed()
    methods = social_methods()
    result = run_once(benchmark, lambda: figure11_single_plan(testbed, methods))
    print()
    print(format_table(result["latency_rows"], title="Figure 11a: measured per-API latency (ms)"))
    print(format_table(result["cost_rows"], title="Figure 11b: cloud cost per day (USD)"))

    # Shape check: averaged over APIs, Atlas's plan is at least as fast as every
    # single-plan baseline (the paper reports it is consistently the lowest).
    def mean_latency(method):
        values = [
            row[f"{method}_ms"]
            for row in result["latency_rows"]
            if not math.isnan(row.get(f"{method}_ms", float("nan")))
        ]
        return sum(values) / len(values)

    atlas_mean = mean_latency("atlas")
    for method in ("greedy-largest", "greedy-smallest", "remap", "intma"):
        assert atlas_mean <= mean_latency(method) * 1.05
