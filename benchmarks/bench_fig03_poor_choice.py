"""Figure 3 — a poor choice of components to offload vs Atlas's recommendation."""

from _shared import run_once, social_methods, social_testbed

from repro.analysis import figure3_poor_choice, format_table


def test_fig03_poor_choice(benchmark):
    testbed = social_testbed()
    methods = social_methods()
    rows = run_once(benchmark, lambda: figure3_poor_choice(testbed, methods))
    print()
    print(format_table(rows, title="Figure 3: poor choice vs Atlas (measured slowdown)"))
    worst_poor = max(row["poor_choice_slowdown"] for row in rows)
    worst_atlas = max(row["atlas_slowdown"] for row in rows)
    # The poor (greedy busiest-first) choice degrades the worst-hit API far more.
    assert worst_poor > worst_atlas
