"""Figure 17 — post-migration monitoring: drift detection and re-optimization."""

from _shared import run_once, social_methods, social_testbed

from repro.analysis import figure17_drift_detection, format_mapping


def test_fig17_drift_detection(benchmark):
    testbed = social_testbed()
    atlas = social_methods()["atlas"]
    result = run_once(
        benchmark,
        lambda: figure17_drift_detection(testbed, atlas.recommendation),
    )
    report_before = result["report_before"]
    report_after = result["report_after"]
    print()
    refreshed = result["refreshed_scenario"]
    print(
        format_mapping(
            {
                "api": result["api"],
                "post_migration_mean_ms": result["post_migration_mean_ms"],
                "before_change_mean_ms": result["before_change_mean_ms"],
                "after_change_mean_ms": result["after_change_mean_ms"],
                "reoptimized_mean_ms": result["reoptimized_mean_ms"],
                "info_loss_before_change": report_before.information_loss_factor,
                "info_loss_after_change": report_after.information_loss_factor,
                "drift_detected_after_change": report_after.drift_detected,
                "drifted_apis": ", ".join(result["drifted_apis"]) or "-",
                "refreshed_scenario": refreshed.name if refreshed else "-",
                "scenario_robust_reoptimization": result[
                    "scenario_robust_reoptimization"
                ],
            },
            title="Figure 17: /composePost drift detection and re-optimization",
        )
    )
    # The behaviour change makes /composePost slower and the statistical discrepancy
    # grows substantially relative to the pre-change check.
    assert result["after_change_mean_ms"] > result["before_change_mean_ms"]
    assert report_after.information_loss_factor > report_before.information_loss_factor
    # Drift → scenario bridge: when the check flags the API, the detector emits a
    # refreshed WorkloadScenario and the re-optimization runs scenario-robustly.
    if report_after.drift_detected:
        assert result["api"] in result["drifted_apis"]
        assert refreshed is not None and refreshed.changes
        assert result["scenario_robust_reoptimization"]
        # The executed plan was re-scored through the invalidated caches over the
        # (observed, drift) scenario axis before the full re-learning round.
        rescored = result["rescored_executed"]
        assert rescored is not None and len(rescored.scenarios) == 2
