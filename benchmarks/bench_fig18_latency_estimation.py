"""Figure 18 — accuracy of the delay-injection latency preview."""

from _shared import run_once, social_methods, social_testbed

from repro.analysis import figure18_latency_estimation, format_table


def test_fig18_latency_estimation(benchmark):
    testbed = social_testbed()
    methods = social_methods()
    rows = run_once(benchmark, lambda: figure18_latency_estimation(testbed, methods))
    print()
    print(format_table(rows, title="Figure 18: estimated vs measured API latency (ms)"))
    errors = [row["error_ms"] for row in rows]
    relative = [
        row["error_ms"] / row["measured_ms"] for row in rows if row["measured_ms"] > 0
    ]
    mean_error = sum(errors) / len(errors)
    print(f"mean absolute error: {mean_error:.2f} ms")
    # The paper reports an error range of ~4ms on its testbed; on the simulator we accept
    # a looser bound but the preview must clearly track the measurement.
    assert mean_error < 15.0
    assert sum(relative) / len(relative) < 0.35
