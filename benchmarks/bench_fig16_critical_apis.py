"""Figure 16 — personalized recommendations with owner-specified critical APIs."""

from _shared import SEARCH_BUDGET, run_once, social_testbed

from repro.analysis import figure16_personalization, format_table
from repro.apps import SOCIAL_NETWORK_CRITICAL_APIS


def test_fig16_critical_apis(benchmark):
    testbed = social_testbed()
    scenarios = SOCIAL_NETWORK_CRITICAL_APIS
    rows = run_once(
        benchmark,
        lambda: figure16_personalization(testbed, scenarios, search_budget=SEARCH_BUDGET),
    )
    print()
    print(format_table(rows, title="Figure 16: estimated API latency per critical-API scenario"))

    # Critical APIs should not be slower than in the scenario where they are not critical.
    follow_row = next(row for row in rows if row["api"] == "/follow")
    assert follow_row["scenario_follow_critical"] is True
    assert follow_row["scenario_follow_ms"] <= follow_row["scenario_timeline_ms"] * 1.25

    timeline_row = next(row for row in rows if row["api"] == "/homeTimeline")
    assert timeline_row["scenario_timeline_critical"] is True
    assert timeline_row["scenario_timeline_ms"] <= timeline_row["scenario_follow_ms"] * 1.25
