"""Plan-evaluation throughput — the plan-matrix pipeline vs the per-plan paths.

The DRL-guided GA visits up to 10,000 plans per recommendation, so evaluated-plans-
per-second *is* Atlas's wall-clock cost.  This benchmark scores the same random plan
sample on the social-network testbed three ways:

* **per-plan recursive** — ``performance_engine="reference"``, ``evaluate`` plan by
  plan: the fully scalar PR 0 path (recursive ``DelayInjector`` per trace).
* **per-plan scoring tail** — the compiled engine with QPerf pre-primed, then
  ``evaluate`` plan by plan: what ``evaluate_batch`` amounted to after PR 1, when the
  batched pipeline stopped at QPerf priming and cost/availability/constraints still
  ran as per-plan Python.
* **plan-matrix end-to-end** — one ``evaluate_batch`` call: dedup → matrix → one
  compiled replay per API *plus* batched cost/availability/constraint passes.

All three must agree exactly.  Regression bars: the end-to-end batched path must be
at least 5x faster than the recursive path and at least 3x faster than the per-plan
scoring tail alone (which excludes the tail's own priming cost, so the bar is
conservative).
"""

import time

import numpy as np

from _shared import run_once, social_testbed

from repro.analysis import format_table
from repro.cluster import MigrationPlan

#: Random candidate plans scored by all paths (distinct plans, like a GA sample).
N_PLANS = 1_500
#: Subset scored by the (much slower) per-plan recursive oracle.
N_PLANS_REFERENCE = 400


def _random_plans(testbed, count: int, seed: int = 123):
    rng = np.random.default_rng(seed)
    components = testbed.application.component_names
    pins = testbed.preferences.pinned_placement
    plans = []
    for _ in range(count):
        offload_prob = rng.uniform(0.1, 0.9)
        vector = (rng.random(len(components)) < offload_prob).astype(int)
        plan = MigrationPlan.from_vector(components, [int(v) for v in vector])
        plans.append(plan.with_pinned(pins) if pins else plan)
    return plans


def test_eval_throughput(benchmark):
    testbed = social_testbed()
    plans = _random_plans(testbed, N_PLANS)

    def build(engine="compiled"):
        return testbed.atlas.build_evaluator(
            expected_scale=testbed.expected_scale,
            preferences=testbed.preferences,
            performance_engine=engine,
        )

    def measure():
        reference = build("reference")
        start = time.perf_counter()
        reference_qualities = [
            reference.evaluate(plan) for plan in plans[:N_PLANS_REFERENCE]
        ]
        reference_s = time.perf_counter() - start

        # Per-plan scoring tail: QPerf fully primed first (the PR 1 state), so the
        # timed loop is exactly the per-plan Python the plan-matrix pipeline removes.
        tail = build()
        tail.performance.prime(plans)
        start = time.perf_counter()
        tail_qualities = [tail.evaluate(plan) for plan in plans]
        tail_s = time.perf_counter() - start

        batched = build()
        start = time.perf_counter()
        batched_qualities = batched.evaluate_batch(plans)
        batched_s = time.perf_counter() - start
        return {
            "reference_s": reference_s,
            "tail_s": tail_s,
            "batched_s": batched_s,
            "reference_objectives": [q.objectives() for q in reference_qualities],
            "tail_objectives": [q.objectives() for q in tail_qualities],
            "batched_objectives": [q.objectives() for q in batched_qualities],
            "tail_violations": [q.violations for q in tail_qualities],
            "batched_violations": [q.violations for q in batched_qualities],
        }

    result = run_once(benchmark, measure)
    reference_rate = N_PLANS_REFERENCE / result["reference_s"]
    tail_rate = N_PLANS / result["tail_s"]
    batched_rate = N_PLANS / result["batched_s"]
    reference_speedup = batched_rate / reference_rate
    tail_speedup = batched_rate / tail_rate
    rows = [
        {
            "path": "per-plan recursive (DelayInjector)",
            "plans": N_PLANS_REFERENCE,
            "seconds": round(result["reference_s"], 3),
            "plans_per_s": round(reference_rate, 1),
        },
        {
            "path": "per-plan scoring tail (primed)",
            "plans": N_PLANS,
            "seconds": round(result["tail_s"], 3),
            "plans_per_s": round(tail_rate, 1),
        },
        {
            "path": "plan-matrix end-to-end (evaluate_batch)",
            "plans": N_PLANS,
            "seconds": round(result["batched_s"], 3),
            "plans_per_s": round(batched_rate, 1),
        },
    ]
    print()
    print(format_table(rows, title="Plan-evaluation throughput (social-network testbed)"))
    print(f"speedup vs recursive: {reference_speedup:.1f}x, vs scoring tail: {tail_speedup:.1f}x")
    # All paths must produce identical objective vectors (and violations) per plan.
    assert result["batched_objectives"][:N_PLANS_REFERENCE] == result["reference_objectives"]
    assert result["batched_objectives"] == result["tail_objectives"]
    assert result["batched_violations"] == result["tail_violations"]
    assert reference_speedup >= 5.0
    assert tail_speedup >= 3.0
