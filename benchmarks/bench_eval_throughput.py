"""Plan-evaluation throughput — the plan-matrix pipeline vs the per-plan paths.

The DRL-guided GA visits up to 10,000 plans per recommendation, so evaluated-plans-
per-second *is* Atlas's wall-clock cost.  This benchmark scores the same random plan
sample on the social-network testbed three ways:

* **per-plan recursive** — ``performance_engine="reference"``, ``evaluate`` plan by
  plan: the fully scalar PR 0 path (recursive ``DelayInjector`` per trace).
* **per-plan scoring tail** — the compiled engine with QPerf pre-primed, then
  ``evaluate`` plan by plan: what ``evaluate_batch`` amounted to after PR 1, when the
  batched pipeline stopped at QPerf priming and cost/availability/constraints still
  ran as per-plan Python.
* **plan-matrix end-to-end** — one ``evaluate_batch`` call: dedup → matrix → one
  compiled replay per API *plus* batched cost/availability/constraint passes.

All three must agree exactly.  Regression bars: the end-to-end batched path must be
at least 5x faster than the recursive path and at least 3x faster than the per-plan
scoring tail alone (which excludes the tail's own priming cost, so the bar is
conservative).

**K-objective mode (problem engine).**  The evaluator executes a pluggable
:class:`~repro.quality.problem.PlacementProblem` instead of a hardcoded triple, so
this benchmark additionally guards the dispatch cost of that indirection:

* the *raw-kernel reference* re-implements the pre-problem (PR 4) ``_score_matrix``
  inline — direct ``qperf_batch``/``qavai_batch``/``qcost_batch`` calls, hand-rolled
  constraint masks, ``PlanQuality`` assembly — and the problem-driven
  ``evaluate_batch`` for the default K=3 stack must stay within **5%** of it
  (best-of-``N_REPEATS`` on fresh evaluators, identical results asserted);
* a K=4 problem (default triple + ``EgressTrafficObjective``) runs the same sample
  end-to-end to report the marginal cost of one extra objective column (its first
  three columns must equal the K=3 run bitwise).
"""

import gc
import hashlib
import json
import os
import time

import numpy as np
import pytest

from _shared import (
    BENCH_EVAL_THROUGHPUT_PATH,
    fused_testbed,
    persist_run_metrics,
    run_once,
    social_testbed,
)

from repro.analysis import format_table
from repro.cluster import MigrationPlan
from repro.cluster.topology import ON_PREM
from repro.optimizer import AtlasGA, GAConfig
from repro.quality import (
    HAS_NUMBA,
    EgressTrafficObjective,
    PlacementProblem,
    PlanQuality,
    ScenarioSet,
    ScenarioSpec,
)

#: Random candidate plans scored by all paths (distinct plans, like a GA sample).
N_PLANS = 1_500
#: Subset scored by the (much slower) per-plan recursive oracle.
N_PLANS_REFERENCE = 400
#: Timing repeats (fresh evaluator each) for the K=3 overhead bar; best-of wins.
N_REPEATS = 7
#: Distinct plans per overhead-bar timing sample: larger than N_PLANS so each
#: sample is long enough (~100ms+) for a 5% bar to sit above scheduler noise.
N_PLANS_OVERHEAD = 4_000
#: Maximum tolerated slowdown of the problem engine vs the raw-kernel reference.
K3_OVERHEAD_BAR = 1.05


def _raw_kernel_batch(evaluator, plans):
    """The pre-problem (PR 4) ``evaluate_batch``, inlined: the overhead baseline.

    Dedup → direct objective kernels → hand-rolled constraint masks →
    ``PlanQuality`` assembly with lazy violation strings, no plugin dispatch.
    Results must equal the problem-driven engine exactly.
    """
    keys = [evaluator._key(plan) for plan in plans]
    cache = {}
    missing = {}
    for key, plan in zip(keys, plans):
        if key not in cache and key not in missing:
            missing[key] = plan
    plans_list = list(missing.values())
    matrix = np.asarray([plan.to_vector() for plan in plans_list])
    components = plans_list[0].components
    preferences = evaluator.preferences
    weights = evaluator._weights
    perf = evaluator.performance.qperf_batch(matrix, components, weights)
    avail = evaluator.availability.qavai_batch(matrix, components, weights)
    cost = evaluator.cost.qcost_batch(matrix, components)
    column_of = {c: i for i, c in enumerate(components)}
    infeasible = np.zeros(matrix.shape[0], dtype=bool)
    pin_violated = []
    for component, location in preferences.pinned_placement.items():
        mask = matrix[:, column_of[component]] != location
        pin_violated.append((component, location, mask))
        infeasible |= mask
    on_prem = matrix == ON_PREM
    peaks = {}
    for resource in ("cpu_millicores", "memory_mb", "storage_gb"):
        limit = preferences.onprem_limit(resource)
        if limit is None:
            continue
        peak = evaluator.estimate.peak_matrix(resource, on_prem, components)
        peaks[resource] = (limit, peak)
        infeasible |= peak > limit
    if preferences.budget_usd != float("inf"):
        infeasible |= cost > preferences.budget_usd
    qualities = []
    for row, plan in enumerate(plans_list):
        feasible = not infeasible[row]
        violations = []
        if not feasible:
            for component, location, mask in pin_violated:
                if mask[row]:
                    violations.append(
                        f"component {component} must stay at location {location}"
                    )
            for resource, (limit, peak) in peaks.items():
                if peak[row] > limit:
                    violations.append(
                        f"on-prem {resource} peak {peak[row]:.0f} exceeds limit {limit:.0f}"
                    )
            if preferences.budget_usd != float("inf") and cost[row] > preferences.budget_usd:
                violations.append(
                    f"cost {cost[row]:.2f} USD exceeds budget "
                    f"{preferences.budget_usd:.2f} USD"
                )
        qualities.append(
            PlanQuality(
                plan=plan,
                perf=float(perf[row]),
                avail=float(avail[row]),
                cost=float(cost[row]),
                feasible=feasible,
                violations=tuple(violations),
            )
        )
    for key, quality in zip(missing, qualities):
        cache[key] = quality
    return [cache[key] for key in keys]


def _random_plans(testbed, count: int, seed: int = 123):
    rng = np.random.default_rng(seed)
    components = testbed.application.component_names
    pins = testbed.preferences.pinned_placement
    plans = []
    for _ in range(count):
        offload_prob = rng.uniform(0.1, 0.9)
        vector = (rng.random(len(components)) < offload_prob).astype(int)
        plan = MigrationPlan.from_vector(components, [int(v) for v in vector])
        plans.append(plan.with_pinned(pins) if pins else plan)
    return plans


def test_eval_throughput(benchmark):
    testbed = social_testbed()
    plans = _random_plans(testbed, N_PLANS)

    def build(engine="compiled"):
        return testbed.atlas.build_evaluator(
            expected_scale=testbed.expected_scale,
            preferences=testbed.preferences,
            performance_engine=engine,
        )

    def measure():
        reference = build("reference")
        start = time.perf_counter()
        reference_qualities = [
            reference.evaluate(plan) for plan in plans[:N_PLANS_REFERENCE]
        ]
        reference_s = time.perf_counter() - start

        # Per-plan scoring tail: QPerf fully primed first (the PR 1 state), so the
        # timed loop is exactly the per-plan Python the plan-matrix pipeline removes.
        tail = build()
        tail.performance.prime(plans)
        start = time.perf_counter()
        tail_qualities = [tail.evaluate(plan) for plan in plans]
        tail_s = time.perf_counter() - start

        batched = build()
        start = time.perf_counter()
        batched_qualities = batched.evaluate_batch(plans)
        batched_s = time.perf_counter() - start

        # K=3 overhead bar: problem-driven evaluate_batch vs the inlined PR 4
        # pipeline, best-of-N on fresh evaluators so neither path sees warm caches.
        # A larger distinct-plan sample keeps each timing well above scheduler
        # noise, and the A/B order alternates per repeat to cancel ramp effects.
        overhead_plans = _random_plans(testbed, N_PLANS_OVERHEAD, seed=321)
        problem_s = float("inf")
        kernel_s = float("inf")
        kernel_qualities = None
        problem_qualities = None
        def time_problem():
            nonlocal problem_s, problem_qualities
            engine = build()
            gc.collect()
            start = time.perf_counter()
            problem_qualities = engine.evaluate_batch(overhead_plans)
            problem_s = min(problem_s, time.perf_counter() - start)

        def time_kernel():
            nonlocal kernel_s, kernel_qualities
            raw = build()
            gc.collect()
            start = time.perf_counter()
            kernel_qualities = _raw_kernel_batch(raw, overhead_plans)
            kernel_s = min(kernel_s, time.perf_counter() - start)

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for repeat in range(N_REPEATS):
                if repeat % 2 == 0:
                    time_problem()
                    time_kernel()
                else:
                    time_kernel()
                    time_problem()
        finally:
            if gc_was_enabled:
                gc.enable()

        # K=4 mode: the default triple plus the shipped egress objective.
        k4 = testbed.atlas.build_evaluator(
            expected_scale=testbed.expected_scale,
            problem=PlacementProblem.default(
                preferences=testbed.preferences,
                extra_objectives=(EgressTrafficObjective(),),
            ),
        )
        start = time.perf_counter()
        k4_qualities = k4.evaluate_batch(plans)
        k4_s = time.perf_counter() - start
        return {
            "reference_s": reference_s,
            "tail_s": tail_s,
            "batched_s": batched_s,
            "problem_s": problem_s,
            "kernel_s": kernel_s,
            "k4_s": k4_s,
            "reference_objectives": [q.objectives() for q in reference_qualities],
            "tail_objectives": [q.objectives() for q in tail_qualities],
            "batched_objectives": [q.objectives() for q in batched_qualities],
            "kernel_objectives": [q.objectives() for q in kernel_qualities],
            "problem_objectives": [q.objectives() for q in problem_qualities],
            "kernel_violations": [q.violations for q in kernel_qualities],
            "problem_violations": [q.violations for q in problem_qualities],
            "k4_objectives": [q.objectives() for q in k4_qualities],
            "tail_violations": [q.violations for q in tail_qualities],
            "batched_violations": [q.violations for q in batched_qualities],
        }

    result = run_once(benchmark, measure)
    reference_rate = N_PLANS_REFERENCE / result["reference_s"]
    tail_rate = N_PLANS / result["tail_s"]
    batched_rate = N_PLANS / result["batched_s"]
    reference_speedup = batched_rate / reference_rate
    tail_speedup = batched_rate / tail_rate
    rows = [
        {
            "path": "per-plan recursive (DelayInjector)",
            "plans": N_PLANS_REFERENCE,
            "seconds": round(result["reference_s"], 3),
            "plans_per_s": round(reference_rate, 1),
        },
        {
            "path": "per-plan scoring tail (primed)",
            "plans": N_PLANS,
            "seconds": round(result["tail_s"], 3),
            "plans_per_s": round(tail_rate, 1),
        },
        {
            "path": "plan-matrix end-to-end (evaluate_batch)",
            "plans": N_PLANS,
            "seconds": round(result["batched_s"], 3),
            "plans_per_s": round(batched_rate, 1),
        },
        {
            "path": "raw-kernel reference (PR 4 inline, best-of)",
            "plans": N_PLANS_OVERHEAD,
            "seconds": round(result["kernel_s"], 3),
            "plans_per_s": round(N_PLANS_OVERHEAD / result["kernel_s"], 1),
        },
        {
            "path": "problem engine K=3 (best-of)",
            "plans": N_PLANS_OVERHEAD,
            "seconds": round(result["problem_s"], 3),
            "plans_per_s": round(N_PLANS_OVERHEAD / result["problem_s"], 1),
        },
        {
            "path": "problem engine K=4 (+egress objective)",
            "plans": N_PLANS,
            "seconds": round(result["k4_s"], 3),
            "plans_per_s": round(N_PLANS / result["k4_s"], 1),
        },
    ]
    print()
    print(format_table(rows, title="Plan-evaluation throughput (social-network testbed)"))
    overhead = result["problem_s"] / result["kernel_s"]
    print(
        f"speedup vs recursive: {reference_speedup:.1f}x, vs scoring tail: "
        f"{tail_speedup:.1f}x; problem-engine overhead vs raw kernels: "
        f"{(overhead - 1.0) * 100.0:+.1f}%"
    )
    persist_run_metrics(
        "eval_throughput",
        {
            "engine": "compiled",
            "workers": 1,
            "plans": N_PLANS,
            "batched_s": round(result["batched_s"], 4),
            "batched_plans_per_s": round(batched_rate, 1),
            "reference_plans_per_s": round(reference_rate, 1),
            "tail_plans_per_s": round(tail_rate, 1),
            "speedup_vs_reference": round(reference_speedup, 2),
            "speedup_vs_tail": round(tail_speedup, 2),
            "problem_overhead": round(overhead, 4),
        },
        path=BENCH_EVAL_THROUGHPUT_PATH,
    )
    # All paths must produce identical objective vectors (and violations) per plan.
    assert result["batched_objectives"][:N_PLANS_REFERENCE] == result["reference_objectives"]
    assert result["batched_objectives"] == result["tail_objectives"]
    assert result["batched_violations"] == result["tail_violations"]
    # The problem engine is the raw-kernel pipeline plus dispatch: same results...
    assert result["problem_objectives"] == result["kernel_objectives"]
    assert result["problem_violations"] == result["kernel_violations"]
    # ...and the K=4 run's first three columns are the K=3 objectives bitwise.
    assert [tuple(o)[:3] for o in result["k4_objectives"]] == [
        tuple(o) for o in result["batched_objectives"]
    ]
    assert all(len(tuple(o)) == 4 for o in result["k4_objectives"])
    assert reference_speedup >= 5.0
    assert tail_speedup >= 3.0
    # Dispatch-overhead bar: the default K=3 stack must stay within 5% of PR 4.
    assert overhead <= K3_OVERHEAD_BAR, (
        f"problem-engine overhead {overhead:.3f}x exceeds the {K3_OVERHEAD_BAR}x bar"
    )


#: Search workload of the parallel (island) benchmark: uniform crossover keeps the
#: comparison about the search loop itself (no DRL training in either arm), and a
#: bounded generation count bounds the fixed migration-epoch schedule.
PARALLEL_SEARCH_GA = GAConfig(
    population_size=48,
    offspring_per_generation=24,
    evaluation_budget=2_500,
    max_generations=120,
    crossover="uniform",
    migration_period=10,
    migration_elites=2,
    seed=17,
)
#: Required end-to-end speedup of islands=W over the serial search at W>=4
#: (enforced only on machines that actually have >= W cores, e.g. 4-vCPU CI).
PARALLEL_SPEEDUP_BAR = 2.5


def _front_fingerprint(result):
    """sha256 of the merged front's plan vectors + objective vectors."""
    payload = [
        [quality.plan.to_vector(), [repr(v) for v in quality.objectives()]]
        for quality in result.pareto
    ]
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


def test_parallel_search_speedup(benchmark, workers):
    """Island-model search vs the serial loop, same total budget (see --workers)."""
    if workers < 2:
        pytest.skip("pass --workers W (W >= 2) to run the parallel-search benchmark")
    testbed = social_testbed()
    components = testbed.application.component_names

    def run(islands):
        # A fresh evaluator per run: neither arm may reuse the other's replay
        # caches, and the serial arm compiles (while the parallel arm compiles +
        # exports to shared memory) inside its own timed region.
        evaluator = testbed.atlas.build_evaluator(
            expected_scale=testbed.expected_scale, preferences=testbed.preferences
        )
        start = time.perf_counter()
        result = AtlasGA(
            evaluator, components, config=PARALLEL_SEARCH_GA, islands=islands
        ).run()
        return result, time.perf_counter() - start

    def measure():
        serial_result, serial_s = run(islands=1)
        parallel_result, parallel_s = run(islands=workers)
        repeat_result, _ = run(islands=workers)
        return {
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "serial_evaluations": serial_result.evaluations,
            "parallel_evaluations": parallel_result.evaluations,
            "serial_front": len(serial_result.pareto),
            "parallel_front": len(parallel_result.pareto),
            "fingerprint": _front_fingerprint(parallel_result),
            "fingerprint_repeat": _front_fingerprint(repeat_result),
        }

    result = run_once(benchmark, measure)
    speedup = result["serial_s"] / result["parallel_s"]
    rows = [
        {
            "path": "serial search (islands=1)",
            "evaluations": result["serial_evaluations"],
            "front": result["serial_front"],
            "seconds": round(result["serial_s"], 3),
        },
        {
            "path": f"island search (islands={workers})",
            "evaluations": result["parallel_evaluations"],
            "front": result["parallel_front"],
            "seconds": round(result["parallel_s"], 3),
        },
    ]
    print()
    print(format_table(rows, title="Parallel island search (social-network testbed)"))
    print(
        f"end-to-end speedup at {workers} islands: {speedup:.2f}x "
        f"(host cores: {os.cpu_count()})"
    )
    persist_run_metrics(
        "parallel_search",
        {
            "engine": "compiled",
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "serial_s": round(result["serial_s"], 4),
            "parallel_s": round(result["parallel_s"], 4),
            "speedup": round(speedup, 3),
            "serial_evaluations": result["serial_evaluations"],
            "parallel_evaluations": result["parallel_evaluations"],
            "front_fingerprint": result["fingerprint"],
        },
        path=BENCH_EVAL_THROUGHPUT_PATH,
    )
    # Fixed-seed determinism across full parallel runs (fresh evaluators each).
    assert result["fingerprint"] == result["fingerprint_repeat"]
    assert result["parallel_front"] > 0
    # The speedup bar only binds where the hardware can express it (4-vCPU CI).
    if workers >= 4 and (os.cpu_count() or 1) >= workers:
        assert speedup >= PARALLEL_SPEEDUP_BAR, (
            f"island search speedup {speedup:.2f}x at {workers} workers is below "
            f"the {PARALLEL_SPEEDUP_BAR}x bar"
        )


#: Plans scored by the fused-engine bar (distinct plans over the 3-site topology).
N_PLANS_FUSED = 1_024
#: GA-generation granularity of the fused bar: the island-model search evaluates
#: ~16-plan batches per island generation (population 60 across 4 islands), so the
#: QPerf pass is timed in chunks of this size — the regime where per-API kernel
#: dispatch dominates and the fused tier earns its keep.
FUSED_CHUNK = 16
#: Interleaved timing trials per engine; each engine is scored by its best trial.
FUSED_TRIALS = 5
#: Required speedup of the fused tier's fast path (engine="fused32") over
#: engine="compiled" on the S×P QPerf evaluation pass at S=4 on the 3-site
#: testbed (CI-enforced).
FUSED_SPEEDUP_BAR = 1.5
#: The S=4 scenario axis of the fused bar: two payload-scaled scenarios create two
#: extra distinct performance views, so the fused pass has real cross-view work.
FUSED_SCENARIOS = ScenarioSet(
    (
        ScenarioSpec(name="observed"),
        ScenarioSpec(name="burst-x5", rate_scale=5.0),
        ScenarioSpec(name="chatty-posts", payload_factors={"/composePost": 2.5}),
        ScenarioSpec(name="media-heavy", payload_factors={"/uploadMedia": 3.0}),
    )
)
#: Plans entering the O(n^2)-per-front Pareto-rank agreement check.
N_PLANS_RANKED = 300


def _random_location_vectors(testbed, count: int, seed: int = 987):
    """Random plan vectors over every location of the testbed topology (pins kept)."""
    rng = np.random.default_rng(seed)
    components = testbed.application.component_names
    locations = testbed.locations
    pins = testbed.preferences.pinned_placement
    pinned_columns = {components.index(c): loc for c, loc in pins.items()}
    vectors = []
    for _ in range(count):
        vector = rng.choice(locations, size=len(components)).tolist()
        for column, location in pinned_columns.items():
            vector[column] = location
        vectors.append([int(v) for v in vector])
    return vectors


def _pareto_ranks(points):
    """Non-domination rank per point by front peeling (rank 0 = first front).

    Deliberately rank-only — no crowding distances — so the float32 agreement law
    checks exactly the ordering structure the survival selection consumes.
    """

    def dominates(a, b):
        return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))

    remaining = set(range(len(points)))
    ranks = [0] * len(points)
    rank = 0
    while remaining:
        front = [
            i
            for i in remaining
            if not any(dominates(points[j], points[i]) for j in remaining if j != i)
        ]
        for i in front:
            ranks[i] = rank
        remaining -= set(front)
        rank += 1
    return ranks


def _build_fused_arm(testbed, engine):
    """One engine's evaluator plus its compiled S=4 scenario contexts."""
    evaluator = testbed.atlas.build_evaluator(
        expected_scale=testbed.expected_scale,
        preferences=testbed.preferences,
        performance_engine=engine,
    )
    contexts = [evaluator._scenario_context(spec) for spec in FUSED_SCENARIOS]
    return evaluator, contexts


def _qperf_pass(evaluator, contexts, chunk, components):
    """One S×P QPerf evaluation of a plan chunk — the pass the engines differ on.

    Mirrors ``QPerfObjective._impacts`` exactly: the fused engines collapse every
    scenario view into one cross-API ``impact_matrices_multi`` launch, the compiled
    engine seeds the base model's impact matrix and lets payload-scaled views copy
    their unchanged rows from it (the ``base_impacts`` path).  QCost/QAvai and the
    robust aggregation are engine-independent and excluded, as is the plan-dedup
    front door — this times exactly the work the engine seam owns.
    """
    performance = evaluator.performance
    if performance.is_fused:
        views = [context.performance for context in contexts]
        impacts = performance.impact_matrices_multi(views, chunk, components)
        return [
            context.performance.qperf_from_impacts(
                impacts[id(context.performance)], context.weights
            )
            for context in contexts
        ]
    cache = {id(performance): performance.impact_matrix(chunk, components)}
    scores = []
    for context in contexts:
        view = context.performance
        impacts = cache.get(id(view))
        if impacts is None:
            impacts = view.impact_matrix(
                chunk, components, base_impacts=cache[id(performance)]
            )
            cache[id(view)] = impacts
        scores.append(view.qperf_from_impacts(impacts, context.weights))
    return scores


def test_fused_engine_throughput(benchmark):
    """Fused cross-API engine tier vs the per-API compiled engine at S=4, 3 sites.

    Correctness runs through the full robust pipeline (``evaluate_vectors`` over
    the S=4 scenario set): ``fused`` must be bitwise identical to ``compiled`` —
    objectives, feasibility, violation strings — and ``fused32`` within rtol=1e-5
    with identical feasibility masks and Pareto ranks.  The speed bar times the
    S×P QPerf evaluation pass itself at GA-generation granularity (``FUSED_CHUNK``
    plans per call, the per-island batch size of the parallel search): the fused
    tier's fast path (``fused32``) must clear ``FUSED_SPEEDUP_BAR`` over the
    compiled engine.  ``fused-jit`` joins both checks when numba is importable
    (the optional-deps CI job).
    """
    testbed = fused_testbed()
    components = testbed.application.component_names
    vectors = _random_location_vectors(testbed, N_PLANS_FUSED)
    matrix = np.asarray(vectors, dtype=np.int64)
    chunks = [
        matrix[index : index + FUSED_CHUNK]
        for index in range(0, N_PLANS_FUSED, FUSED_CHUNK)
    ]
    engines = ["compiled", "fused", "fused32"] + (["fused-jit"] if HAS_NUMBA else [])

    def run_pipeline(engine):
        evaluator, _ = _build_fused_arm(testbed, engine)
        return evaluator.evaluate_vectors(vectors, scenarios=FUSED_SCENARIOS)

    def time_qperf_pass(engine):
        # A fresh evaluator per trial: every trial replays every chunk from cold
        # caches.  The first chunk runs untimed as warm-up — it pays the lazy
        # trace compilation / program fusion / JIT compilation, which are one-time
        # costs amortized over a whole search, not per-generation work.
        evaluator, contexts = _build_fused_arm(testbed, engine)
        _qperf_pass(evaluator, contexts, chunks[0], components)
        start = time.perf_counter()
        for chunk in chunks:
            _qperf_pass(evaluator, contexts, chunk, components)
        return time.perf_counter() - start

    def measure():
        qualities = {engine: run_pipeline(engine) for engine in engines}
        # Interleaved best-of-FUSED_TRIALS with the collector parked — frequency
        # scaling or a noisy neighbour hits every engine alike instead of
        # whichever happens to run later.
        times = {engine: float("inf") for engine in engines}
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for _ in range(FUSED_TRIALS):
                for engine in engines:
                    times[engine] = min(times[engine], time_qperf_pass(engine))
        finally:
            if gc_was_enabled:
                gc.enable()
        return {
            "times": times,
            "objectives": {
                engine: [tuple(q.objectives()) for q in qualities[engine]]
                for engine in engines
            },
            "feasible": {
                engine: [q.feasible for q in qualities[engine]] for engine in engines
            },
            "violations": {
                engine: [q.violations for q in qualities[engine]] for engine in engines
            },
        }

    result = run_once(benchmark, measure)
    times = result["times"]
    plan_scenarios = N_PLANS_FUSED * len(FUSED_SCENARIOS)
    rate = {engine: plan_scenarios / times[engine] for engine in engines}
    speedup = {engine: times["compiled"] / times[engine] for engine in engines}
    rows = [
        {
            "engine": engine,
            "plan_scenarios": plan_scenarios,
            "chunk": FUSED_CHUNK,
            "seconds": round(times[engine], 4),
            "per_s": round(rate[engine], 1),
            "speedup": f"{speedup[engine]:.2f}x",
        }
        for engine in engines
    ]
    print()
    print(
        format_table(
            rows,
            title=(
                f"Fused replay engines: S x P QPerf pass at S={len(FUSED_SCENARIOS)}, "
                f"chunks of {FUSED_CHUNK} (3-site social network)"
            ),
        )
    )
    persist_run_metrics(
        "fused_eval_throughput",
        {
            "engine": "fused32",
            # The QPerf pass is timed in GA-generation chunks; early ledger runs
            # timed whole-batch passes — the mode tag keeps their trends separate
            # (see report.py: bench[mode] grouping).
            "mode": "chunked",
            "workers": 1,
            "scenarios": len(FUSED_SCENARIOS),
            "plans": N_PLANS_FUSED,
            "chunk": FUSED_CHUNK,
            **{f"{engine}_s": round(times[engine], 4) for engine in engines},
            **{f"{engine}_per_s": round(rate[engine], 1) for engine in engines},
            **{f"{engine}_speedup": round(speedup[engine], 3) for engine in engines},
        },
        path=BENCH_EVAL_THROUGHPUT_PATH,
    )
    # Contract 1: fused float64 is bitwise identical to the compiled engine on the
    # whole robust pipeline (objectives, feasibility, violation strings).
    assert [repr(o) for o in result["objectives"]["fused"]] == [
        repr(o) for o in result["objectives"]["compiled"]
    ]
    assert result["feasible"]["fused"] == result["feasible"]["compiled"]
    assert result["violations"]["fused"] == result["violations"]["compiled"]
    if HAS_NUMBA:
        assert [repr(o) for o in result["objectives"]["fused-jit"]] == [
            repr(o) for o in result["objectives"]["compiled"]
        ]
    # Contract 2: fused32 objective values within rtol=1e-5 of the float64 oracle,
    # identical feasibility masks and identical Pareto ranks (rank-only peeling on
    # the feasible subsample — the structure survival selection consumes).
    oracle = np.asarray(result["objectives"]["compiled"], dtype=np.float64)
    fast = np.asarray(result["objectives"]["fused32"], dtype=np.float64)
    assert np.allclose(fast, oracle, rtol=1e-5)
    assert result["feasible"]["fused32"] == result["feasible"]["compiled"]
    ranked = [
        index
        for index in range(N_PLANS_RANKED)
        if result["feasible"]["compiled"][index]
    ]
    assert _pareto_ranks([tuple(oracle[i]) for i in ranked]) == _pareto_ranks(
        [tuple(fast[i]) for i in ranked]
    )
    # Contract 3: the speed bar, on the tier's fast path.
    assert speedup["fused32"] >= FUSED_SPEEDUP_BAR, (
        f"fused32 QPerf-pass speedup {speedup['fused32']:.2f}x is below the "
        f"{FUSED_SPEEDUP_BAR}x bar"
    )
